//! `pagpass` — command-line interface to the PagPassGPT reproduction.
//!
//! ```text
//! pagpass synth    --site rockyou --n 20000 --seed 1 --out leak.txt
//! pagpass train    --kind pagpassgpt --corpus leak.txt --epochs 4 --out model.bin
//! pagpass generate --kind pagpassgpt --model model.bin --n 1000 [--pattern L6N2]
//! pagpass dcgen    --model model.bin --corpus leak.txt --n 10000 --threshold 256
//! pagpass eval     --guesses guesses.txt --test test.txt
//! pagpass strength --kind pagpassgpt --model model.bin 'hunter2!'
//! ```
//!
//! All subcommands read/write plain newline-separated password files.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::process::ExitCode;

use pagpass::core::{DcGen, DcGenConfig, ModelKind, PasswordModel, TrainConfig};
use pagpass::datasets::{clean, Site};
use pagpass::eval::{hit_rate, repeat_rate};
use pagpass::nn::GptConfig;
use pagpass::patterns::{Pattern, PatternDistribution};
use pagpass::tokenizer::VOCAB_SIZE;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  pagpass synth    --site <rockyou|linkedin|phpbb|myspace|yahoo> --n N [--seed S] [--clean] --out FILE
  pagpass train    --kind <passgpt|pagpassgpt> --corpus FILE [--epochs N] [--seed S] --out FILE
  pagpass generate --kind <passgpt|pagpassgpt> --model FILE --n N [--pattern P] [--temp T] [--seed S] [--out FILE]
  pagpass dcgen    --model FILE --corpus FILE --n N [--threshold T] [--seed S] [--out FILE]
  pagpass eval     --guesses FILE --test FILE
  pagpass strength --kind <passgpt|pagpassgpt> --model FILE PASSWORD...";

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let parsed = Parsed::parse(rest)?;
    match command.as_str() {
        "synth" => cmd_synth(&parsed),
        "train" => cmd_train(&parsed),
        "generate" => cmd_generate(&parsed),
        "dcgen" => cmd_dcgen(&parsed),
        "eval" => cmd_eval(&parsed),
        "strength" => cmd_strength(&parsed),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Parsed `--flag value` pairs plus positional arguments.
#[derive(Debug, Default, PartialEq)]
struct Parsed {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Parsed {
    fn parse(args: &[String]) -> Result<Parsed, String> {
        let mut parsed = Parsed::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if name == "clean" {
                    parsed.flags.insert(name.to_owned(), "true".to_owned());
                    continue;
                }
                let value = iter.next().ok_or_else(|| format!("--{name} needs a value"))?;
                parsed.flags.insert(name.to_owned(), value.clone());
            } else {
                parsed.positional.push(arg.clone());
            }
        }
        Ok(parsed)
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flags.get(name).map(String::as_str).ok_or_else(|| format!("missing --{name}"))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            Some(v) => v.parse().map_err(|_| format!("--{name} got a non-numeric value {v:?}")),
            None => Ok(default),
        }
    }
}

fn parse_site(name: &str) -> Result<Site, String> {
    match name.to_lowercase().as_str() {
        "rockyou" => Ok(Site::RockYou),
        "linkedin" => Ok(Site::LinkedIn),
        "phpbb" => Ok(Site::PhpBb),
        "myspace" => Ok(Site::MySpace),
        "yahoo" => Ok(Site::Yahoo),
        other => Err(format!("unknown site {other:?}")),
    }
}

fn parse_kind(name: &str) -> Result<ModelKind, String> {
    match name.to_lowercase().as_str() {
        "passgpt" => Ok(ModelKind::PassGpt),
        "pagpassgpt" => Ok(ModelKind::PagPassGpt),
        other => Err(format!("unknown model kind {other:?}")),
    }
}

fn read_lines(path: &str) -> Result<Vec<String>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    std::io::BufReader::new(file)
        .lines()
        .collect::<Result<Vec<String>, _>>()
        .map_err(|e| format!("read {path}: {e}"))
}

fn write_lines(path: Option<&str>, lines: &[String]) -> Result<(), String> {
    match path {
        Some(path) => {
            let mut file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            for line in lines {
                writeln!(file, "{line}").map_err(|e| format!("write {path}: {e}"))?;
            }
            eprintln!("wrote {} lines to {path}", lines.len());
            Ok(())
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for line in lines {
                writeln!(out, "{line}").map_err(|e| e.to_string())?;
            }
            Ok(())
        }
    }
}

fn cmd_synth(p: &Parsed) -> Result<(), String> {
    let site = parse_site(p.required("site")?)?;
    let n: usize = p.num("n", 10_000)?;
    let seed: u64 = p.num("seed", 42)?;
    let mut leak = site.profile().generate(n, seed);
    if p.flags.contains_key("clean") {
        let report = clean(leak);
        eprintln!(
            "cleaned: {} unique -> {} retained ({:.1}%)",
            report.unique_total,
            report.retained.len(),
            100.0 * report.retention_rate()
        );
        leak = report.retained;
    }
    write_lines(p.flags.get("out").map(String::as_str), &leak)
}

fn cmd_train(p: &Parsed) -> Result<(), String> {
    let kind = parse_kind(p.required("kind")?)?;
    let corpus = read_lines(p.required("corpus")?)?;
    let out = p.required("out")?.to_owned();
    let epochs: usize = p.num("epochs", 4)?;
    let seed: u64 = p.num("seed", 1)?;
    let mut model = PasswordModel::new(kind, GptConfig::small(VOCAB_SIZE), seed);
    let config = TrainConfig { epochs, seed, log_every: 100, ..TrainConfig::default() };
    let report = model.train(&corpus, &[], &config);
    eprintln!(
        "trained {kind} on {} passwords: loss {:?} -> {:?}",
        corpus.len(),
        report.epoch_losses.first(),
        report.epoch_losses.last()
    );
    model.save(&out).map_err(|e| e.to_string())?;
    eprintln!("saved model to {out}");
    Ok(())
}

fn cmd_generate(p: &Parsed) -> Result<(), String> {
    let kind = parse_kind(p.required("kind")?)?;
    let model = PasswordModel::load(kind, p.required("model")?).map_err(|e| e.to_string())?;
    let n: usize = p.num("n", 1_000)?;
    let temp: f32 = p.num("temp", 1.0)?;
    let seed: u64 = p.num("seed", 7)?;
    let guesses = match p.flags.get("pattern") {
        Some(pat) => {
            let pattern: Pattern = pat.parse().map_err(|e| format!("bad pattern {pat:?}: {e}"))?;
            model.generate_guided(&pattern, n, temp, seed)
        }
        None => model.generate_free(n, temp, seed),
    };
    write_lines(p.flags.get("out").map(String::as_str), &guesses)
}

fn cmd_dcgen(p: &Parsed) -> Result<(), String> {
    let model =
        PasswordModel::load(ModelKind::PagPassGpt, p.required("model")?).map_err(|e| e.to_string())?;
    let corpus = read_lines(p.required("corpus")?)?;
    let n: u64 = p.num("n", 10_000)?;
    let threshold: u64 = p.num("threshold", 256)?;
    let seed: u64 = p.num("seed", 7)?;
    let patterns = PatternDistribution::from_passwords(corpus.iter().map(String::as_str));
    let report = DcGen::new(
        &model,
        DcGenConfig { threshold, seed, ..DcGenConfig::new(n) },
    )
    .run(&patterns)
    .map_err(|e| e.to_string())?;
    eprintln!(
        "D&C-GEN: {} passwords from {} leaves / {} expansions; repeat rate {:.2}%",
        report.passwords.len(),
        report.leaf_tasks,
        report.expansions,
        100.0 * repeat_rate(&report.passwords)
    );
    write_lines(p.flags.get("out").map(String::as_str), &report.passwords)
}

fn cmd_eval(p: &Parsed) -> Result<(), String> {
    let guesses = read_lines(p.required("guesses")?)?;
    let test = read_lines(p.required("test")?)?;
    let hits = hit_rate(&guesses, &test);
    println!(
        "guesses: {} ({} unique, repeat rate {:.2}%)",
        hits.total_guesses,
        hits.unique_guesses,
        100.0 * repeat_rate(&guesses)
    );
    println!("test set: {} passwords", hits.test_size);
    println!("hits: {} (hit rate {:.2}%)", hits.hits, 100.0 * hits.rate());
    Ok(())
}

fn cmd_strength(p: &Parsed) -> Result<(), String> {
    let kind = parse_kind(p.required("kind")?)?;
    let model = PasswordModel::load(kind, p.required("model")?).map_err(|e| e.to_string())?;
    if p.positional.is_empty() {
        return Err("strength needs at least one password argument".into());
    }
    for pw in &p.positional {
        match model.log_probability(pw) {
            Ok(lp) => {
                let pattern = Pattern::of_password(pw)
                    .map_or_else(|_| "?".to_owned(), |pt| pt.to_string());
                println!("{pw}\tln Pr = {lp:.2}\tpattern {pattern}");
            }
            Err(e) => println!("{pw}\tunscorable ({e})"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let p = Parsed::parse(&s(&["--site", "rockyou", "pw1", "--n", "50", "pw2"])).unwrap();
        assert_eq!(p.required("site").unwrap(), "rockyou");
        assert_eq!(p.num::<usize>("n", 0).unwrap(), 50);
        assert_eq!(p.positional, s(&["pw1", "pw2"]));
    }

    #[test]
    fn boolean_clean_flag_takes_no_value() {
        let p = Parsed::parse(&s(&["--clean", "--n", "5"])).unwrap();
        assert!(p.flags.contains_key("clean"));
        assert_eq!(p.num::<usize>("n", 0).unwrap(), 5);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Parsed::parse(&s(&["--site"])).is_err());
        let p = Parsed::parse(&s(&[])).unwrap();
        assert!(p.required("site").is_err());
        assert!(p.num::<usize>("n", 3).unwrap() == 3);
    }

    #[test]
    fn bad_numbers_are_errors() {
        let p = Parsed::parse(&s(&["--n", "lots"])).unwrap();
        assert!(p.num::<usize>("n", 0).is_err());
    }

    #[test]
    fn site_and_kind_parsing() {
        assert_eq!(parse_site("RockYou").unwrap(), Site::RockYou);
        assert_eq!(parse_site("linkedin").unwrap(), Site::LinkedIn);
        assert!(parse_site("github").is_err());
        assert_eq!(parse_kind("PagPassGPT").unwrap(), ModelKind::PagPassGpt);
        assert!(parse_kind("bert").is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&[])).is_err());
    }

    #[test]
    fn synth_subcommand_writes_a_cleaned_corpus() {
        let dir = std::env::temp_dir().join("pagpass_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("leak.txt");
        let out_str = out.to_str().unwrap().to_owned();
        run(&s(&["synth", "--site", "rockyou", "--n", "500", "--seed", "3", "--clean", "--out", &out_str]))
            .unwrap();
        let lines = read_lines(&out_str).unwrap();
        assert!(!lines.is_empty());
        assert!(lines.iter().all(|pw| (4..=12).contains(&pw.chars().count())));
        // Deterministic: same seed reproduces the file.
        run(&s(&["synth", "--site", "rockyou", "--n", "500", "--seed", "3", "--clean", "--out", &out_str]))
            .unwrap();
        assert_eq!(read_lines(&out_str).unwrap(), lines);
        std::fs::remove_file(out).ok();
    }

    #[test]
    fn eval_subcommand_reads_password_files() {
        let dir = std::env::temp_dir().join("pagpass_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let guesses = dir.join("guesses.txt");
        let test = dir.join("test.txt");
        std::fs::write(&guesses, "abc123\nabc123\nzzz\n").unwrap();
        std::fs::write(&test, "abc123\nqwerty\n").unwrap();
        run(&s(&[
            "eval",
            "--guesses",
            guesses.to_str().unwrap(),
            "--test",
            test.to_str().unwrap(),
        ]))
        .unwrap();
        // Missing files surface as errors, not panics.
        assert!(run(&s(&["eval", "--guesses", "/nonexistent", "--test", "/nonexistent"])).is_err());
        std::fs::remove_file(guesses).ok();
        std::fs::remove_file(test).ok();
    }
}
