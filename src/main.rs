//! `pagpass` — command-line interface to the PagPassGPT reproduction.
//!
//! ```text
//! pagpass synth    --site rockyou --n 20000 --seed 1 --out leak.txt
//! pagpass train    --kind pagpassgpt --corpus leak.txt --epochs 4 --out model.bin
//! pagpass generate --kind pagpassgpt --model model.bin --n 1000 [--pattern L6N2]
//! pagpass dcgen    --model model.bin --corpus leak.txt --n 10000 --threshold 256
//! pagpass eval     --guesses guesses.txt --test test.txt
//! pagpass strength --kind pagpassgpt --model model.bin 'hunter2!'
//! pagpass serve    --kind pagpassgpt --model model.bin --addr 127.0.0.1:7687
//! pagpass analyze  --deny-all
//! ```
//!
//! All subcommands read/write plain newline-separated password files.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pagpass::core::{
    run_with_listeners, CancelToken, CheckpointPolicy, DcGen, DcGenConfig, DcGenJournal,
    DcGenOptions, InferenceSession, KernelChoice, ModelKind, PasswordModel, PasswordSink,
    SchedulerKind, ServeConfig, TrainConfig, TrainOptions,
};
use pagpass::datasets::{clean, Site};
use pagpass::eval::{hit_rate, repeat_rate};
use pagpass::nn::{atomic_write, pool, set_kernel_mode, GptConfig};
use pagpass::patterns::{Pattern, PatternDistribution};
use pagpass::telemetry::{Field, LogFormat, Reporter, Telemetry};
use pagpass::tokenizer::VOCAB_SIZE;

/// Exit code for a run that completed but abandoned subtasks after
/// exhausting their retry budget (distinct from usage errors, code 2).
const EXIT_TASKS_FAILED: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  pagpass synth    --site <rockyou|linkedin|phpbb|myspace|yahoo> --n N [--seed S] [--clean] --out FILE
  pagpass train    --kind <passgpt|pagpassgpt> --corpus FILE [--epochs N] [--seed S] --out FILE
                   [--checkpoint FILE] [--checkpoint-every N] [--resume]
  pagpass generate --kind <passgpt|pagpassgpt> --model FILE --n N [--pattern P] [--temp T] [--seed S] [--out FILE]
  pagpass dcgen    --model FILE --corpus FILE --n N [--threshold T] [--seed S] [--out FILE]
                   [--workers N] [--retries N] [--deadline-secs N] [--checkpoint FILE] [--resume]
                   [--no-prefix-reuse] [--scheduler <dcgen|sopg|sample>] [--frontier-cap N]
                   [--kernel <pinned|quantized>]
  pagpass eval     --guesses FILE --test FILE
  pagpass strength --kind <passgpt|pagpassgpt> --model FILE [--in FILE] [--precise]
                   [--kernel <pinned|quantized>] [PASSWORD...]
  pagpass serve    --kind <passgpt|pagpassgpt> --model FILE [--addr HOST:PORT] [--max-batch N]
                   [--batch-window-ms N] [--queue-cap N] [--sessions N] [--retries N]
                   [--deadline-ms N] [--http-port N] [--trace-sample N]
                   [--kernel <pinned|quantized>]
  pagpass analyze  [--root DIR] [--allowlist FILE] [--deny-all] [--update-allowlist]
                   [--lock-order FILE] [--update-lock-order]

Telemetry (any subcommand):
  --log-format <text|json>   structured stderr records (default text)
  --log-every SECS           periodic progress reports (0 = off)
  --metrics-out FILE         write a final metrics snapshot as JSON
  --quiet                    suppress all stderr records

Compute (any subcommand):
  --threads N                GEMM worker threads (default: PAGPASS_THREADS,
                             else all available cores); output is identical
                             at any thread count

Decode kernel (dcgen, strength, serve):
  --kernel <pinned|quantized>  pinned (default) is the bit-exact blocked
                             f32 decode; quantized packs weights to int8
                             once at startup and decodes faster within a
                             committed accuracy budget. Both are
                             deterministic at any thread count. A journal
                             resumes under the kernel that wrote it.

Interrupted `train`/`dcgen` runs with --checkpoint drain cleanly on Ctrl-C
and continue with --resume. dcgen exits with code 3 when tasks were
abandoned after exhausting retries.

serve speaks newline-delimited JSON over TCP; SIGINT/SIGTERM drains
in-flight requests before exiting. A full admission queue answers
reject-with-retry-after instead of buffering unboundedly.
--http-port adds an HTTP observability plane on the same host
(GET /metrics, /healthz, /statusz; POST /score); --trace-sample N exports
every Nth request's span tree to the JSONL log (0 = never).";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let parsed = Parsed::parse(rest)?;
    // Size the GEMM pool before any model work touches it. 0 means "auto"
    // (PAGPASS_THREADS, else available cores). Thread count never changes
    // results — kernels are bit-exact at any parallelism — only speed.
    let threads: usize = parsed.num("threads", 0)?;
    if threads > 0 {
        let got = pool::configure(threads);
        if got != threads {
            eprintln!(
                "warning: GEMM pool already sized to {got} threads; --threads {threads} ignored"
            );
        }
    }
    let tel = TelemetrySetup::from_flags(&parsed)?;
    let code = match command.as_str() {
        "synth" => cmd_synth(&parsed, &tel),
        "train" => cmd_train(&parsed, &tel),
        "generate" => cmd_generate(&parsed, &tel),
        "dcgen" => cmd_dcgen(&parsed, &tel),
        "eval" => cmd_eval(&parsed),
        "strength" => cmd_strength(&parsed),
        "serve" => cmd_serve(&parsed, &tel),
        "analyze" => cmd_analyze(&parsed),
        other => Err(format!("unknown subcommand {other:?}")),
    }?;
    tel.finish()?;
    Ok(code)
}

/// Telemetry wiring shared by every subcommand: one [`Telemetry`] built
/// from the global flags, an optional periodic [`Reporter`], and an
/// optional final snapshot file.
struct TelemetrySetup {
    tel: Arc<Telemetry>,
    reporter: Option<Reporter>,
    metrics_out: Option<PathBuf>,
}

impl TelemetrySetup {
    fn from_flags(p: &Parsed) -> Result<TelemetrySetup, String> {
        let format: LogFormat = match p.flags.get("log-format") {
            Some(v) => v.parse()?,
            None => LogFormat::Text,
        };
        let quiet = p.flags.contains_key("quiet");
        let every: u64 = p.num("log-every", 0)?;
        let tel = Arc::new(Telemetry::new(format, quiet));
        let reporter =
            (every > 0).then(|| Reporter::start(Arc::clone(&tel), Duration::from_secs(every)));
        Ok(TelemetrySetup {
            tel,
            reporter,
            metrics_out: p.flags.get("metrics-out").map(PathBuf::from),
        })
    }

    fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Emits a `summary` record (the structured replacement for the old
    /// end-of-run `eprintln!` lines).
    fn summary(&self, name: &str, fields: &[(&str, Field)]) {
        self.tel.event("summary", name, fields);
    }

    /// Stops the reporter (flushing a final report) and writes the metrics
    /// snapshot, if requested.
    fn finish(self) -> Result<(), String> {
        drop(self.reporter);
        if let Some(path) = &self.metrics_out {
            let json = self.tel.snapshot().to_json();
            atomic_write(path, json.as_bytes())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        Ok(())
    }
}

/// Parsed `--flag value` pairs plus positional arguments.
#[derive(Debug, Default, PartialEq)]
struct Parsed {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Parsed {
    fn parse(args: &[String]) -> Result<Parsed, String> {
        let mut parsed = Parsed::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if name == "clean"
                    || name == "resume"
                    || name == "quiet"
                    || name == "deny-all"
                    || name == "update-allowlist"
                    || name == "update-lock-order"
                    || name == "no-prefix-reuse"
                    || name == "precise"
                {
                    parsed.flags.insert(name.to_owned(), "true".to_owned());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                parsed.flags.insert(name.to_owned(), value.clone());
            } else {
                parsed.positional.push(arg.clone());
            }
        }
        Ok(parsed)
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{name}"))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} got a non-numeric value {v:?}")),
            None => Ok(default),
        }
    }
}

fn parse_site(name: &str) -> Result<Site, String> {
    match name.to_lowercase().as_str() {
        "rockyou" => Ok(Site::RockYou),
        "linkedin" => Ok(Site::LinkedIn),
        "phpbb" => Ok(Site::PhpBb),
        "myspace" => Ok(Site::MySpace),
        "yahoo" => Ok(Site::Yahoo),
        other => Err(format!("unknown site {other:?}")),
    }
}

/// Parses `--kernel` (default `pinned`) without installing it. Callers
/// install the effective choice via [`set_kernel_mode`] once it is known —
/// a `dcgen --resume` defers to the kernel recorded in the journal.
fn parse_kernel(p: &Parsed) -> Result<KernelChoice, String> {
    match p.flags.get("kernel") {
        Some(v) => v.parse::<KernelChoice>().map_err(|e| e.to_string()),
        None => Ok(KernelChoice::default()),
    }
}

fn parse_kind(name: &str) -> Result<ModelKind, String> {
    match name.to_lowercase().as_str() {
        "passgpt" => Ok(ModelKind::PassGpt),
        "pagpassgpt" => Ok(ModelKind::PagPassGpt),
        other => Err(format!("unknown model kind {other:?}")),
    }
}

fn read_lines(path: &str) -> Result<Vec<String>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    std::io::BufReader::new(file)
        .lines()
        .collect::<Result<Vec<String>, _>>()
        .map_err(|e| format!("read {path}: {e}"))
}

/// Writes `lines` to `path` atomically (temp file + rename), or to stdout.
/// A crash mid-write leaves any previous file contents intact.
fn write_lines(path: Option<&str>, lines: &[String], tel: &TelemetrySetup) -> Result<(), String> {
    match path {
        Some(path) => {
            let mut buf = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
            for line in lines {
                buf.push_str(line);
                buf.push('\n');
            }
            atomic_write(Path::new(path), buf.as_bytes())
                .map_err(|e| format!("write {path}: {e}"))?;
            tel.summary(
                "cli.wrote",
                &[
                    ("lines", Field::U64(lines.len() as u64)),
                    ("path", Field::Str(path.to_owned())),
                ],
            );
            Ok(())
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for line in lines {
                writeln!(out, "{line}").map_err(|e| e.to_string())?;
            }
            Ok(())
        }
    }
}

/// Atomically rewrites `path` keeping only its first `keep` lines. Used on
/// `dcgen --resume` to roll the output file back to the journal snapshot;
/// passwords past the snapshot are regenerated deterministically.
fn truncate_lines(path: &str, keep: u64) -> Result<(), String> {
    if !Path::new(path).exists() {
        return Ok(());
    }
    let lines = read_lines(path)?;
    let keep = usize::try_from(keep).unwrap_or(usize::MAX).min(lines.len());
    let mut buf = String::new();
    for line in &lines[..keep] {
        buf.push_str(line);
        buf.push('\n');
    }
    atomic_write(Path::new(path), buf.as_bytes()).map_err(|e| format!("truncate {path}: {e}"))
}

/// Streams generated passwords to a file as leaves complete, so an
/// interrupted run keeps everything emitted so far.
struct LineSink {
    out: std::sync::Mutex<std::io::BufWriter<std::fs::File>>,
}

impl LineSink {
    fn open(path: &str, append: bool) -> Result<LineSink, String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .append(append)
            .truncate(!append)
            .open(path)
            .map_err(|e| format!("open {path}: {e}"))?;
        Ok(LineSink {
            out: std::sync::Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

impl PasswordSink for LineSink {
    fn emit(&self, batch: &[String]) -> std::io::Result<()> {
        // LINT-ALLOW: guard-blocking the whole point of the lock is to
        // keep a batch's lines contiguous in the output file; the write
        // and flush must happen under it.
        let mut out = self.out.lock().expect("sink lock poisoned");
        for line in batch {
            writeln!(out, "{line}")?;
        }
        // Flush per leaf: the journal records these passwords as emitted,
        // so they must actually be on disk before the next snapshot.
        out.flush()
    }
}

/// Installs a Ctrl-C handler that trips `cancel` so long runs drain
/// cleanly (finishing in-flight work and writing a final journal or
/// checkpoint). A second Ctrl-C falls back to the default handler and
/// kills the process.
#[cfg(unix)]
fn install_sigint(cancel: &CancelToken, tel: &Arc<Telemetry>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;
    extern "C" fn on_sigint(_sig: i32) {
        // ORD: SeqCst — stores from an async signal context must not be
        // reordered against anything the watcher thread observes.
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
    let cancel = cancel.clone();
    let tel = Arc::clone(tel);
    std::thread::spawn(move || loop {
        // ORD: SeqCst load side of the signal-handler flag above.
        if SIGNALLED.load(Ordering::SeqCst) {
            tel.event(
                "warn",
                "cli.interrupted",
                &[(
                    "action",
                    Field::Str("draining; Ctrl-C again to kill".into()),
                )],
            );
            cancel.cancel();
            unsafe {
                signal(SIGINT, SIG_DFL);
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

#[cfg(not(unix))]
fn install_sigint(_cancel: &CancelToken, _tel: &Arc<Telemetry>) {}

/// Installs SIGINT *and* SIGTERM handlers that trip `cancel`, for the
/// server: both a Ctrl-C and a supervisor's terminate must drain in-flight
/// requests instead of dropping them. A second signal falls back to the
/// default handler and kills the process.
#[cfg(unix)]
fn install_shutdown_signals(cancel: &CancelToken, tel: &Arc<Telemetry>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;
    extern "C" fn on_signal(_sig: i32) {
        // ORD: SeqCst — stores from an async signal context must not be
        // reordered against anything the watcher thread observes.
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
    let cancel = cancel.clone();
    let tel = Arc::clone(tel);
    std::thread::spawn(move || loop {
        // ORD: SeqCst load side of the signal-handler flag above.
        if SIGNALLED.load(Ordering::SeqCst) {
            tel.event(
                "warn",
                "cli.interrupted",
                &[(
                    "action",
                    Field::Str("draining; signal again to kill".into()),
                )],
            );
            cancel.cancel();
            unsafe {
                signal(SIGINT, SIG_DFL);
                signal(SIGTERM, SIG_DFL);
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

#[cfg(not(unix))]
fn install_shutdown_signals(_cancel: &CancelToken, _tel: &Arc<Telemetry>) {}

fn cmd_synth(p: &Parsed, tel: &TelemetrySetup) -> Result<ExitCode, String> {
    let site = parse_site(p.required("site")?)?;
    let n: usize = p.num("n", 10_000)?;
    let seed: u64 = p.num("seed", 42)?;
    let mut leak = site.profile().generate(n, seed);
    if p.flags.contains_key("clean") {
        let report = clean(leak);
        tel.summary(
            "synth.cleaned",
            &[
                ("unique", Field::U64(report.unique_total as u64)),
                ("retained", Field::U64(report.retained.len() as u64)),
                ("retention_pct", Field::F64(100.0 * report.retention_rate())),
            ],
        );
        leak = report.retained;
    }
    write_lines(p.flags.get("out").map(String::as_str), &leak, tel)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_train(p: &Parsed, tel: &TelemetrySetup) -> Result<ExitCode, String> {
    let kind = parse_kind(p.required("kind")?)?;
    let corpus = read_lines(p.required("corpus")?)?;
    let out = p.required("out")?.to_owned();
    let epochs: usize = p.num("epochs", 4)?;
    let seed: u64 = p.num("seed", 1)?;
    let ckpt_path = p.flags.get("checkpoint").map(PathBuf::from);
    let every: u64 = p.num("checkpoint-every", 100)?;
    let resume = p.flags.contains_key("resume");
    if resume && ckpt_path.is_none() {
        return Err("--resume needs --checkpoint FILE".into());
    }
    let cancel = CancelToken::new();
    install_sigint(&cancel, &tel.tel);
    let mut model = PasswordModel::new(kind, GptConfig::small(VOCAB_SIZE), seed);
    let config = TrainConfig {
        epochs,
        seed,
        log_every: 100,
        ..TrainConfig::default()
    };
    let opts = TrainOptions {
        checkpoint: ckpt_path.as_deref().map(|path| CheckpointPolicy {
            path,
            every_steps: every,
        }),
        resume,
        cancel: Some(&cancel),
        fault: None,
        telemetry: Some(tel.telemetry()),
    };
    let report = model
        .train_with(&corpus, &[], &config, &opts)
        .map_err(|e| e.to_string())?;
    tel.summary(
        "train.summary",
        &[
            ("kind", Field::Str(kind.to_string())),
            ("corpus", Field::U64(corpus.len() as u64)),
            (
                "first_loss",
                Field::F64(
                    report
                        .epoch_losses
                        .first()
                        .map_or(f64::NAN, |l| f64::from(*l)),
                ),
            ),
            (
                "last_loss",
                Field::F64(
                    report
                        .epoch_losses
                        .last()
                        .map_or(f64::NAN, |l| f64::from(*l)),
                ),
            ),
            (
                "skipped_steps",
                Field::U64(report.skipped_steps.len() as u64),
            ),
        ],
    );
    if report.checkpoint_errors > 0 {
        tel.telemetry().event(
            "warn",
            "train.checkpoint_errors",
            &[("failed_writes", Field::U64(report.checkpoint_errors))],
        );
    }
    if report.interrupted {
        let ckpt = ckpt_path
            .as_deref()
            .map_or_else(String::new, |p| p.display().to_string());
        tel.summary(
            "train.interrupted",
            &[
                ("step", Field::U64(report.steps)),
                (
                    "resume_with",
                    Field::Str(format!("pagpass train ... --checkpoint {ckpt} --resume")),
                ),
            ],
        );
        return Ok(ExitCode::SUCCESS);
    }
    model.save(&out).map_err(|e| e.to_string())?;
    tel.summary("train.saved", &[("path", Field::Str(out))]);
    Ok(ExitCode::SUCCESS)
}

fn cmd_generate(p: &Parsed, tel: &TelemetrySetup) -> Result<ExitCode, String> {
    let kind = parse_kind(p.required("kind")?)?;
    let model = PasswordModel::load(kind, p.required("model")?).map_err(|e| e.to_string())?;
    let n: usize = p.num("n", 1_000)?;
    let temp: f32 = p.num("temp", 1.0)?;
    let seed: u64 = p.num("seed", 7)?;
    let guesses = match p.flags.get("pattern") {
        Some(pat) => {
            let pattern: Pattern = pat
                .parse()
                .map_err(|e| format!("bad pattern {pat:?}: {e}"))?;
            model.generate_guided(&pattern, n, temp, seed)
        }
        None => model.generate_free(n, temp, seed),
    };
    write_lines(p.flags.get("out").map(String::as_str), &guesses, tel)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_dcgen(p: &Parsed, tel: &TelemetrySetup) -> Result<ExitCode, String> {
    let model = PasswordModel::load(ModelKind::PagPassGpt, p.required("model")?)
        .map_err(|e| e.to_string())?;
    let n: u64 = p.num("n", 10_000)?;
    let threshold: u64 = p.num("threshold", 256)?;
    let seed: u64 = p.num("seed", 7)?;
    let defaults = DcGenConfig::new(n);
    let workers: usize = p.num("workers", defaults.workers)?;
    let retries: u32 = p.num("retries", defaults.max_task_retries)?;
    let deadline = match p.flags.get("deadline-secs") {
        Some(_) => Some(Duration::from_secs(p.num("deadline-secs", 0u64)?)),
        None => None,
    };
    let scheduler: SchedulerKind = match p.flags.get("scheduler") {
        Some(v) => v.parse()?,
        None => SchedulerKind::default(),
    };
    let frontier_cap: u64 = p.num("frontier-cap", 0)?;
    let kernel = parse_kernel(p)?;
    let journal_path = p.flags.get("checkpoint").map(PathBuf::from);
    let resume = p.flags.contains_key("resume");
    if resume && journal_path.is_none() {
        return Err("--resume needs --checkpoint FILE".into());
    }
    let out = p.flags.get("out").map(String::as_str);

    let cancel = CancelToken::new();
    install_sigint(&cancel, &tel.tel);

    // With a journal + output file the run streams passwords to disk leaf
    // by leaf, so an interruption loses nothing; on resume the output file
    // is first rolled back to the journal snapshot and appended to.
    let journal = match (&journal_path, resume) {
        (Some(path), true) => {
            let j = DcGenJournal::load(path).map_err(|e| e.to_string())?;
            // A journal resumes under the scheduler that wrote it; an
            // explicit conflicting --scheduler is a user error, not a
            // silent override.
            if p.flags.contains_key("scheduler") {
                j.check_scheduler(scheduler).map_err(|e| e.to_string())?;
            }
            // Same contract for the decode kernel: the journal's token
            // stream is kernel-specific, so it resumes under the kernel
            // that wrote it.
            if p.flags.contains_key("kernel") {
                j.check_kernel(kernel).map_err(|e| e.to_string())?;
            }
            if let Some(out_path) = out {
                truncate_lines(out_path, j.emitted)?;
            }
            Some(j)
        }
        _ => None,
    };
    let streaming = journal_path.is_some() && out.is_some();
    let sink = match out {
        Some(path) if streaming => Some(LineSink::open(path, resume)?),
        _ => None,
    };
    let opts = DcGenOptions {
        cancel: Some(&cancel),
        deadline,
        journal: journal_path.as_deref(),
        fault: None,
        sink: sink.as_ref().map(|s| s as &dyn PasswordSink),
        telemetry: Some(tel.telemetry()),
        no_prefix_reuse: p.flags.contains_key("no-prefix-reuse"),
    };

    // On resume the journal's scheduler runs, whatever the flag default was.
    let ran_scheduler = journal.as_ref().map_or(scheduler, |j| j.scheduler);
    // Likewise the journal's kernel; install it before any session packs
    // weights.
    let ran_kernel = journal.as_ref().map_or(kernel, |j| j.kernel);
    set_kernel_mode(ran_kernel.mode());
    let report = match &journal {
        Some(j) => DcGen::resume(&model, j, &opts).map_err(|e| e.to_string())?,
        None => {
            let corpus = read_lines(p.required("corpus")?)?;
            let patterns = PatternDistribution::from_passwords(corpus.iter().map(String::as_str));
            let config = DcGenConfig {
                threshold,
                seed,
                workers,
                max_task_retries: retries,
                scheduler,
                frontier_cap,
                ..DcGenConfig::new(n)
            };
            DcGen::new(&model, config)
                .run_with(&patterns, &opts)
                .map_err(|e| e.to_string())?
        }
    };

    // The within-leaf duplicate count is exact even when passwords
    // streamed straight to disk (subtasks are disjoint); prefer the full
    // in-memory recount when it is available.
    let repeat_pct = if report.passwords.is_empty() {
        if report.emitted > 0 {
            100.0 * report.leaf_duplicates as f64 / report.emitted as f64
        } else {
            0.0
        }
    } else {
        100.0 * repeat_rate(&report.passwords)
    };
    tel.summary(
        "dcgen.summary",
        &[
            ("scheduler", Field::Str(ran_scheduler.to_string())),
            ("kernel", Field::Str(ran_kernel.to_string())),
            ("emitted", Field::U64(report.emitted)),
            ("leaves", Field::U64(report.leaf_tasks as u64)),
            ("expansions", Field::U64(report.expansions as u64)),
            ("patterns_used", Field::U64(report.patterns_used as u64)),
            ("leaf_duplicates", Field::U64(report.leaf_duplicates)),
            ("prefix_cache_hits", Field::U64(report.prefix_cache_hits)),
            ("repeat_rate_pct", Field::F64(repeat_pct)),
        ],
    );
    if report.journal_errors > 0 {
        tel.telemetry().event(
            "warn",
            "dcgen.journal_errors",
            &[("failed_writes", Field::U64(report.journal_errors))],
        );
    }
    if report.interrupted {
        let ckpt = journal_path
            .as_deref()
            .map_or_else(String::new, |p| p.display().to_string());
        tel.summary(
            "dcgen.interrupted",
            &[(
                "resume_with",
                Field::Str(format!("pagpass dcgen ... --checkpoint {ckpt} --resume")),
            )],
        );
    }
    if streaming {
        tel.summary(
            "dcgen.streamed",
            &[("path", Field::Str(out.unwrap_or_default().to_owned()))],
        );
    } else {
        write_lines(out, &report.passwords, tel)?;
    }

    // Abandoned subtasks mean the emitted set silently under-covers the
    // requested budget; surface them and exit non-zero so scripted runs
    // notice.
    if report.failed_tasks.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        let mut patterns: Vec<&str> = report
            .failed_tasks
            .iter()
            .map(|t| t.pattern.as_str())
            .collect();
        patterns.sort_unstable();
        patterns.dedup();
        let lost: f64 = report.failed_tasks.iter().map(|t| t.quota).sum();
        tel.summary(
            "dcgen.failed_tasks",
            &[
                ("failed", Field::U64(report.failed_tasks.len() as u64)),
                ("retries", Field::U64(report.retries)),
                ("quota_lost", Field::F64(lost)),
                ("patterns", Field::Str(patterns.join(","))),
            ],
        );
        Ok(ExitCode::from(EXIT_TASKS_FAILED))
    }
}

/// `pagpass analyze`: run the static-analysis engine over the workspace.
///
/// Exit codes: 0 clean, 1 findings (or stale allowlist entries), 2 usage.
/// `--deny-all` (the CI entry point) also fails on warn-level lints.
/// `--lock-order FILE` checks observed lock acquisitions against the
/// committed canonical order; `--update-lock-order` regenerates it.
fn cmd_analyze(p: &Parsed) -> Result<ExitCode, String> {
    use pagpass::analysis::{analyze_repo, lockgraph, Allowlist};

    let root = PathBuf::from(p.flags.get("root").map_or(".", String::as_str));
    let allowlist_path = p
        .flags
        .get("allowlist")
        .map_or_else(|| root.join("analysis/allowlist.txt"), PathBuf::from);
    let lock_order_path = p.flags.get("lock-order").map(PathBuf::from).or_else(|| {
        p.flags
            .contains_key("update-lock-order")
            .then(|| root.join("analysis/lock_order.txt"))
    });
    let deny_all = p.flags.contains_key("deny-all");

    if p.flags.contains_key("update-allowlist") {
        // Regenerate the allowlist from current findings: run with an
        // empty allowlist and grandfather everything still firing.
        let report = analyze_repo(&root, None, &Allowlist::default())?;
        let keep: Vec<_> = report.findings.into_iter().map(|d| d.finding).collect();
        let text = Allowlist::render(&keep);
        if let Some(parent) = allowlist_path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
        atomic_write(&allowlist_path, text.as_bytes())
            .map_err(|e| format!("write {}: {e}", allowlist_path.display()))?;
        println!(
            "wrote {} entr(ies) to {}",
            keep.len(),
            allowlist_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if p.flags.contains_key("update-lock-order") {
        // Regenerate the canonical order from the observed graph. A
        // cyclic graph has no canonical order — fix the cycle first.
        let report = analyze_repo(&root, None, &Allowlist::default())?;
        if report.lock_order.is_empty() {
            return Err("lock-order graph is cyclic (or no locks were observed); \
                 run `pagpass analyze` and fix lock-order-cycle findings first"
                .into());
        }
        let path = lock_order_path.expect("defaulted above when flag is present");
        let text = lockgraph::render_order(&report.lock_order);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
        atomic_write(&path, text.as_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!(
            "wrote {} lock name(s) to {}",
            report.lock_order.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let allowlist = Allowlist::load(&allowlist_path)?;
    let report = analyze_repo(&root, lock_order_path.as_deref(), &allowlist)?;
    print!("{}", report.render(deny_all));
    if report.failed(deny_all) {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_eval(p: &Parsed) -> Result<ExitCode, String> {
    let guesses = read_lines(p.required("guesses")?)?;
    let test = read_lines(p.required("test")?)?;
    let hits = hit_rate(&guesses, &test);
    println!(
        "guesses: {} ({} unique, repeat rate {:.2}%)",
        hits.total_guesses,
        hits.unique_guesses,
        100.0 * repeat_rate(&guesses)
    );
    println!("test set: {} passwords", hits.test_size);
    println!("hits: {} (hit rate {:.2}%)", hits.hits, 100.0 * hits.rate());
    Ok(ExitCode::SUCCESS)
}

fn cmd_strength(p: &Parsed) -> Result<ExitCode, String> {
    let kind = parse_kind(p.required("kind")?)?;
    set_kernel_mode(parse_kernel(p)?.mode());
    let model = PasswordModel::load(kind, p.required("model")?).map_err(|e| e.to_string())?;
    let precise = p.flags.contains_key("precise");
    let mut passwords = p.positional.clone();
    if let Some(path) = p.flags.get("in") {
        let from_file: Vec<String> = read_lines(path)?
            .into_iter()
            .filter(|line| !line.trim().is_empty())
            .collect();
        if from_file.is_empty() && passwords.is_empty() {
            // Exit 2 with a diagnostic, matching eval's contract: silence
            // plus success on an empty input reads as "scored nothing
            // wrong" when nothing was scored at all.
            return Err(format!("input file {path} contains no passwords"));
        }
        passwords.extend(from_file);
    }
    if passwords.is_empty() {
        return Err("strength needs at least one password (positional or --in FILE)".into());
    }
    // One session for the whole batch: under `--kernel quantized` the
    // weights pack to int8 once here instead of once per password.
    let mut session = InferenceSession::new(&model);
    for pw in &passwords {
        match session.log_probability(pw) {
            Ok(lp) => {
                let pattern =
                    Pattern::of_password(pw).map_or_else(|_| "?".to_owned(), |pt| pt.to_string());
                if precise {
                    // Shortest-round-trip formatting: parsing this back
                    // recovers the bit-exact f64, for comparison against
                    // the serve protocol's ln_prob field.
                    println!("{pw}\tln Pr = {lp}\tpattern {pattern}");
                } else {
                    println!("{pw}\tln Pr = {lp:.2}\tpattern {pattern}");
                }
            }
            Err(e) => println!("{pw}\tunscorable ({e})"),
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_serve(p: &Parsed, tel: &TelemetrySetup) -> Result<ExitCode, String> {
    let kind = parse_kind(p.required("kind")?)?;
    set_kernel_mode(parse_kernel(p)?.mode());
    let model = PasswordModel::load(kind, p.required("model")?).map_err(|e| e.to_string())?;
    let addr = p.flags.get("addr").map_or("127.0.0.1:7687", String::as_str);
    let defaults = ServeConfig::default();
    let deadline_ms: u64 = p.num("deadline-ms", 0)?;
    let cfg = ServeConfig {
        max_batch: p.num("max-batch", defaults.max_batch)?,
        batch_window: Duration::from_millis(p.num("batch-window-ms", 2)?),
        queue_cap: p.num("queue-cap", defaults.queue_cap)?,
        sessions: p.num("sessions", defaults.sessions)?,
        retries: p.num("retries", defaults.retries)?,
        default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        trace_sample: p.num("trace-sample", defaults.trace_sample)?,
        ..defaults
    };
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // The observability plane binds the same host as the scoring address.
    let http_port: u16 = p.num("http-port", 0)?;
    let http_listener = if http_port > 0 {
        let http_addr = std::net::SocketAddr::new(local.ip(), http_port);
        let l =
            std::net::TcpListener::bind(http_addr).map_err(|e| format!("bind {http_addr}: {e}"))?;
        Some(l)
    } else {
        None
    };
    let cancel = CancelToken::new();
    install_shutdown_signals(&cancel, &tel.tel);
    tel.tel.event(
        "progress",
        "serve.listening",
        &[("addr", Field::Str(local.to_string()))],
    );
    if let Some(hl) = &http_listener {
        let http_local = hl.local_addr().map_err(|e| e.to_string())?;
        tel.tel.event(
            "progress",
            "serve.http_listening",
            &[("addr", Field::Str(http_local.to_string()))],
        );
    }
    let report = run_with_listeners(
        &model,
        &listener,
        http_listener.as_ref(),
        &cfg,
        &cancel,
        tel.telemetry(),
        None,
    )
    .map_err(|e| e.to_string())?;
    tel.summary(
        "cli.serve_done",
        &[
            ("admitted", Field::U64(report.admitted)),
            ("completed", Field::U64(report.completed)),
            ("reconciles", Field::Bool(report.reconciles())),
        ],
    );
    if report.reconciles() && report.lost == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let p = Parsed::parse(&s(&["--site", "rockyou", "pw1", "--n", "50", "pw2"])).unwrap();
        assert_eq!(p.required("site").unwrap(), "rockyou");
        assert_eq!(p.num::<usize>("n", 0).unwrap(), 50);
        assert_eq!(p.positional, s(&["pw1", "pw2"]));
    }

    #[test]
    fn boolean_clean_flag_takes_no_value() {
        let p = Parsed::parse(&s(&["--clean", "--n", "5"])).unwrap();
        assert!(p.flags.contains_key("clean"));
        assert_eq!(p.num::<usize>("n", 0).unwrap(), 5);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Parsed::parse(&s(&["--site"])).is_err());
        let p = Parsed::parse(&s(&[])).unwrap();
        assert!(p.required("site").is_err());
        assert!(p.num::<usize>("n", 3).unwrap() == 3);
    }

    #[test]
    fn bad_numbers_are_errors() {
        let p = Parsed::parse(&s(&["--n", "lots"])).unwrap();
        assert!(p.num::<usize>("n", 0).is_err());
    }

    #[test]
    fn site_and_kind_parsing() {
        assert_eq!(parse_site("RockYou").unwrap(), Site::RockYou);
        assert_eq!(parse_site("linkedin").unwrap(), Site::LinkedIn);
        assert!(parse_site("github").is_err());
        assert_eq!(parse_kind("PagPassGPT").unwrap(), ModelKind::PagPassGpt);
        assert!(parse_kind("bert").is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&[])).is_err());
    }

    #[test]
    fn synth_subcommand_writes_a_cleaned_corpus() {
        let dir = std::env::temp_dir().join("pagpass_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("leak.txt");
        let out_str = out.to_str().unwrap().to_owned();
        run(&s(&[
            "synth", "--site", "rockyou", "--n", "500", "--seed", "3", "--clean", "--out", &out_str,
        ]))
        .unwrap();
        let lines = read_lines(&out_str).unwrap();
        assert!(!lines.is_empty());
        assert!(lines
            .iter()
            .all(|pw| (4..=12).contains(&pw.chars().count())));
        // Deterministic: same seed reproduces the file.
        run(&s(&[
            "synth", "--site", "rockyou", "--n", "500", "--seed", "3", "--clean", "--out", &out_str,
        ]))
        .unwrap();
        assert_eq!(read_lines(&out_str).unwrap(), lines);
        std::fs::remove_file(out).ok();
    }

    #[test]
    fn dcgen_smoke_run_writes_expected_metrics() {
        use pagpass::telemetry::parse_json;

        let dir = std::env::temp_dir().join("pagpass_cli_dcgen_smoke");
        std::fs::create_dir_all(&dir).unwrap();
        let corpus_path = dir.join("corpus.txt");
        let model_path = dir.join("model.bin");
        let out_path = dir.join("guesses.txt");
        let metrics_path = dir.join("metrics.json");

        let corpus: Vec<String> = (0..60).map(|i| format!("pass{i:02}")).collect();
        std::fs::write(&corpus_path, corpus.join("\n")).unwrap();
        let mut model = PasswordModel::new(
            ModelKind::PagPassGpt,
            pagpass::nn::GptConfig::tiny(VOCAB_SIZE),
            1,
        );
        model.save(model_path.to_str().unwrap()).unwrap();

        let code = run(&s(&[
            "dcgen",
            "--model",
            model_path.to_str().unwrap(),
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--n",
            "200",
            "--threshold",
            "64",
            "--out",
            out_path.to_str().unwrap(),
            "--quiet",
            "--log-format",
            "json",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]))
        .unwrap();
        // ExitCode has no PartialEq; compare through Debug.
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::SUCCESS));
        assert_eq!(read_lines(out_path.to_str().unwrap()).unwrap().len(), 200);

        // The snapshot is one valid JSON document carrying the D&C-GEN
        // counters, gauges, and phase timings.
        let snapshot = std::fs::read_to_string(&metrics_path).unwrap();
        let v = parse_json(&snapshot).expect("metrics snapshot is valid JSON");
        let counters = v.get("counters").expect("counters section");
        for name in [
            "dcgen.passwords",
            "dcgen.tasks_completed",
            "dcgen.tasks_failed",
            "dcgen.task_retries",
            "dcgen.leaf_tasks",
            "dcgen.leaf_duplicates",
            "sched.emitted",
        ] {
            assert!(counters.get(name).is_some(), "missing counter {name}");
        }
        assert_eq!(
            counters.get("dcgen.passwords").unwrap().as_f64(),
            Some(200.0)
        );
        // Every password flows through the scheduler-neutral counter too.
        assert_eq!(counters.get("sched.emitted").unwrap().as_f64(), Some(200.0));
        let gauges = v.get("gauges").expect("gauges section");
        assert!(gauges.get("dcgen.queue_depth").is_some());
        assert!(gauges.get("dcgen.workers_busy").is_some());
        assert!(gauges.get("sched.frontier_depth").is_some());
        let hists = v.get("histograms").expect("histograms section");
        for name in ["dcgen.run.ms", "dcgen.task.ms"] {
            assert!(hists.get(name).is_some(), "missing histogram {name}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn eval_subcommand_reads_password_files() {
        let dir = std::env::temp_dir().join("pagpass_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let guesses = dir.join("guesses.txt");
        let test = dir.join("test.txt");
        std::fs::write(&guesses, "abc123\nabc123\nzzz\n").unwrap();
        std::fs::write(&test, "abc123\nqwerty\n").unwrap();
        run(&s(&[
            "eval",
            "--guesses",
            guesses.to_str().unwrap(),
            "--test",
            test.to_str().unwrap(),
        ]))
        .unwrap();
        // Missing files surface as errors, not panics.
        assert!(run(&s(&[
            "eval",
            "--guesses",
            "/nonexistent",
            "--test",
            "/nonexistent"
        ]))
        .is_err());
        std::fs::remove_file(guesses).ok();
        std::fs::remove_file(test).ok();
    }
}
