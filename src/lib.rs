//! # pagpass — a reproduction of PagPassGPT (DSN 2024)
//!
//! *PagPassGPT: Pattern Guided Password Guessing via Generative Pretrained
//! Transformer* (Su, Zhu, Li, Li, Chen, Esteves-Veríssimo), rebuilt from
//! scratch in pure Rust — including the GPT substrate, every baseline, and
//! the full evaluation harness. See the workspace `README.md` for the
//! architecture and `DESIGN.md` for the system inventory.
//!
//! This facade crate re-exports the workspace's public APIs:
//!
//! * [`core`] — PagPassGPT / PassGPT models and the D&C-GEN generator,
//! * [`nn`] — the from-scratch transformer substrate,
//! * [`patterns`] / [`tokenizer`] — the PCFG pattern algebra and the
//!   135-token vocabulary,
//! * [`datasets`] — synthetic leak corpora, cleaning, and splits,
//! * [`pcfg`] / [`markov`] / [`baselines`] — the comparison models,
//! * [`eval`] — hit rate, repeat rate, and distribution distances,
//! * [`telemetry`] — zero-dependency metrics, tracing, and live progress,
//! * [`analysis`] — the static-analysis engine behind `pagpass analyze`.
//!
//! # Examples
//!
//! Train a small PagPassGPT and guess under a pattern (see also
//! `examples/quickstart.rs`):
//!
//! ```
//! use pagpass::core::{ModelKind, PasswordModel, TrainConfig};
//! use pagpass::nn::GptConfig;
//! use pagpass::tokenizer::VOCAB_SIZE;
//!
//! let corpus: Vec<String> = (0..50).map(|i| format!("pass{i:02}")).collect();
//! let mut model = PasswordModel::new(ModelKind::PagPassGpt, GptConfig::tiny(VOCAB_SIZE), 1);
//! model.train(&corpus, &[], &TrainConfig::quick());
//! let guesses = model.generate_guided(&"L4N2".parse().unwrap(), 20, 1.0, 7);
//! assert_eq!(guesses.len(), 20);
//! ```

pub use pagpass_analysis as analysis;
pub use pagpass_baselines as baselines;
pub use pagpass_datasets as datasets;
pub use pagpass_eval as eval;
pub use pagpass_markov as markov;
pub use pagpass_nn as nn;
pub use pagpass_patterns as patterns;
pub use pagpass_pcfg as pcfg;
pub use pagpass_telemetry as telemetry;
pub use pagpass_tokenizer as tokenizer;
pub use pagpassgpt as core;
