//! D&C-GEN anatomy (paper Algorithm 1 + Fig. 7): watch the divide-and-
//! conquer scheduler split a guess budget across patterns and prefixes,
//! and see how the threshold `T` trades scheduling work against the
//! repeat rate.
//!
//! ```text
//! cargo run --release --example dcgen_demo
//! ```

use pagpass::core::{DcGen, DcGenConfig, ModelKind, PasswordModel, TrainConfig};
use pagpass::datasets::{clean, split_passwords, SiteProfile, SplitRatios};
use pagpass::eval::repeat_rate;
use pagpass::nn::GptConfig;
use pagpass::patterns::PatternDistribution;
use pagpass::tokenizer::VOCAB_SIZE;

fn main() {
    let raw = SiteProfile::rockyou().generate(12_000, 21);
    let split = split_passwords(clean(raw).retained, SplitRatios::PAPER, 21);
    let mut model = PasswordModel::new(ModelKind::PagPassGpt, GptConfig::small(VOCAB_SIZE), 6);
    println!("training PagPassGPT ...");
    model.train(
        &split.train,
        &[],
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    );

    let patterns = PatternDistribution::from_passwords(split.train.iter().map(String::as_str));
    println!(
        "pattern prior: {} distinct patterns; top-3: {:?}",
        patterns.distinct(),
        patterns
            .top(3)
            .iter()
            .map(|e| format!("{} ({:.1}%)", e.pattern, 100.0 * e.probability))
            .collect::<Vec<_>>()
    );

    let n = 4_000u64;
    println!(
        "\n{:>6} {:>8} {:>12} {:>8} {:>12}",
        "T", "leaves", "expansions", "deleted", "repeat rate"
    );
    for t in [32u64, 128, 512, 2048] {
        let report = DcGen::new(
            &model,
            DcGenConfig {
                threshold: t,
                seed: 13,
                ..DcGenConfig::new(n)
            },
        )
        .run(&patterns)
        .expect("model is PagPassGPT");
        println!(
            "{t:>6} {:>8} {:>12} {:>8} {:>11.2}%",
            report.leaf_tasks,
            report.expansions,
            report.deleted_tasks,
            100.0 * repeat_rate(&report.passwords)
        );
    }
    println!("\nbaseline: free generation of the same budget");
    let free = model.generate_free(n as usize, 1.0, 55);
    println!(
        "free generation repeat rate: {:.2}%",
        100.0 * repeat_rate(&free)
    );
}
