//! Pattern-guided guessing (paper §IV-C, Table III): the qualitative
//! difference between PassGPT's hard token filtering and PagPassGPT's
//! pattern conditioning.
//!
//! PassGPT picks each character under a class mask, so an English word in
//! flight gets truncated when the pattern demands a digit or special
//! character next ("polic#10"). PagPassGPT saw the pattern *before*
//! generating, so it plans whole words that fit.
//!
//! ```text
//! cargo run --release --example pattern_guided
//! ```

use pagpass::core::{ModelKind, PasswordModel, TrainConfig};
use pagpass::datasets::{clean, split_passwords, SiteProfile, SplitRatios};
use pagpass::nn::GptConfig;
use pagpass::patterns::Pattern;
use pagpass::tokenizer::VOCAB_SIZE;

fn main() {
    let raw = SiteProfile::rockyou().generate(20_000, 5);
    let split = split_passwords(clean(raw).retained, SplitRatios::PAPER, 5);
    let config = TrainConfig {
        epochs: 3,
        log_every: 0,
        ..TrainConfig::default()
    };

    println!("training PassGPT ...");
    let mut passgpt = PasswordModel::new(ModelKind::PassGpt, GptConfig::small(VOCAB_SIZE), 8);
    passgpt.train(&split.train, &[], &config);

    println!("training PagPassGPT ...");
    let mut pagpass = PasswordModel::new(ModelKind::PagPassGpt, GptConfig::small(VOCAB_SIZE), 8);
    pagpass.train(&split.train, &[], &config);

    for pattern_str in ["L5N2", "L5S1N2"] {
        let pattern: Pattern = pattern_str.parse().unwrap();
        let a = passgpt.generate_guided(&pattern, 10, 1.0, 33);
        let b = pagpass.generate_guided(&pattern, 10, 1.0, 33);
        println!("\npattern {pattern_str}:");
        println!("  {:<14} {:<14}", "PassGPT", "PagPassGPT");
        for (x, y) in a.iter().zip(&b) {
            println!("  {x:<14} {y:<14}");
        }
        let conform_b = b.iter().filter(|p| pattern.matches(p)).count();
        println!(
            "  (PassGPT conforms by construction; PagPassGPT conformed {conform_b}/10 by conditioning alone)"
        );
    }
}
