//! Cross-site attack (paper §IV-E, Table VI): train on one site's leak,
//! attack a different site. Password habits transfer, so a model trained
//! on the RockYou-like site still cracks phpBB-like passwords.
//!
//! ```text
//! cargo run --release --example cross_site
//! ```

use pagpass::core::{ModelKind, PasswordModel, TrainConfig};
use pagpass::datasets::{clean, split_passwords, Site, SplitRatios};
use pagpass::eval::hit_rate;
use pagpass::nn::GptConfig;
use pagpass::tokenizer::VOCAB_SIZE;

fn main() {
    let train_site = Site::RockYou;
    let raw = train_site.profile().generate(20_000, 9);
    let split = split_passwords(clean(raw).retained, SplitRatios::PAPER, 9);

    println!(
        "training PagPassGPT on {train_site} ({} passwords) ...",
        split.train.len()
    );
    let mut model = PasswordModel::new(ModelKind::PagPassGpt, GptConfig::small(VOCAB_SIZE), 4);
    let config = TrainConfig {
        epochs: 3,
        log_every: 0,
        ..TrainConfig::default()
    };
    model.train(&split.train, &split.validation, &config);

    let guesses = model.generate_free(5_000, 1.0, 77);
    for eval_site in [Site::PhpBb, Site::MySpace, Site::Yahoo] {
        let target = clean(eval_site.profile().generate(8_000, 9)).retained;
        let hits = hit_rate(&guesses, &target);
        println!(
            "{train_site} -> {eval_site:8}: {}/{} cracked ({:.2}%)",
            hits.hits,
            hits.test_size,
            100.0 * hits.rate()
        );
    }
}
