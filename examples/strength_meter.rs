//! Password strength meter — the defensive flip side of a guessing model.
//!
//! A password that a trained PagPassGPT assigns high probability (or that
//! PCFG reaches early in its enumeration) is exactly the password a
//! trawling attacker cracks first. This example scores candidate passwords
//! with three estimators from the workspace:
//!
//! * PagPassGPT log-probability (paper Eq. 1 joint),
//! * PCFG probability (Weir's Eq. 2 factorization),
//! * the pattern prior alone (how common the password's *shape* is).
//!
//! ```text
//! cargo run --release --example strength_meter
//! ```

use pagpass::core::{ModelKind, PasswordModel, TrainConfig};
use pagpass::datasets::{clean, split_passwords, SiteProfile, SplitRatios};
use pagpass::nn::GptConfig;
use pagpass::patterns::{Pattern, PatternDistribution};
use pagpass::pcfg::PcfgModel;
use pagpass::tokenizer::VOCAB_SIZE;

fn main() {
    let raw = SiteProfile::rockyou().generate(20_000, 31);
    let split = split_passwords(clean(raw).retained, SplitRatios::PAPER, 31);

    println!("training the scoring models ...");
    let mut model = PasswordModel::new(ModelKind::PagPassGpt, GptConfig::small(VOCAB_SIZE), 14);
    model.train(
        &split.train,
        &[],
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    );
    let pcfg = PcfgModel::train(split.train.iter().map(String::as_str));
    let patterns = PatternDistribution::from_passwords(split.train.iter().map(String::as_str));

    let candidates = [
        "password1",    // leaked-list classic
        "jessica99",    // name + digits
        "monkey!1",     // word + special + digit
        "xK9#mQ2$vL",   // random-looking
        "7hW!fR2z9@pQ", // long random
    ];
    // Calibrate a Monte Carlo guess-number estimator from model samples
    // (Dell'Amico & Filippone 2015): "how many guesses until cracked?".
    println!("calibrating the guess-number estimator ...");
    let samples = model.generate_free(2_000, 1.0, 123);
    let sample_lps: Vec<f64> = samples
        .iter()
        .filter_map(|pw| model.log_probability(pw).ok())
        .collect();
    let estimator = pagpass::eval::GuessNumberEstimator::from_sample_log_probs(sample_lps);

    println!(
        "\n{:<14} {:>12} {:>14} {:>14} {:>12}",
        "password", "GPT ln Pr", "PCFG Pr", "pattern Pr", "guess bits"
    );
    for pw in candidates {
        let lp = model.log_probability(pw).map_or(f64::NEG_INFINITY, |v| v);
        let pcfg_p = pcfg.probability(pw);
        let pat_p = Pattern::of_password(pw).map_or(0.0, |p| patterns.probability(&p));
        let bits = estimator.guess_bits(lp);
        println!("{pw:<14} {lp:>12.2} {pcfg_p:>14.3e} {pat_p:>14.3e} {bits:>12.1}");
    }
    println!("\nlower GPT log-probability and zero PCFG mass = harder to guess;");
    println!("guess bits = log2 of the estimated guesses a trawling attacker needs.");
}
