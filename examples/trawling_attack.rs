//! Trawling attack (paper §IV-D): train PagPassGPT on a synthetic leak,
//! then attack the held-out test split two ways — plain free generation
//! and D&C-GEN — and compare hit and repeat rates.
//!
//! ```text
//! cargo run --release --example trawling_attack
//! ```

use pagpass::core::{DcGen, DcGenConfig, ModelKind, PasswordModel, TrainConfig};
use pagpass::datasets::{clean, split_passwords, SiteProfile, SplitRatios};
use pagpass::eval::{hit_rate, repeat_rate};
use pagpass::nn::GptConfig;
use pagpass::patterns::PatternDistribution;
use pagpass::tokenizer::VOCAB_SIZE;

fn main() {
    let raw = SiteProfile::rockyou().generate(20_000, 11);
    let split = split_passwords(clean(raw).retained, SplitRatios::PAPER, 3);
    println!("train {} / test {}", split.train.len(), split.test.len());

    let mut model = PasswordModel::new(ModelKind::PagPassGpt, GptConfig::small(VOCAB_SIZE), 2);
    let config = TrainConfig {
        epochs: 3,
        log_every: 100,
        ..TrainConfig::default()
    };
    model.train(&split.train, &split.validation, &config);

    let budget = 5_000;

    // Attack 1: free generation — the model invents pattern + password.
    let free = model.generate_free(budget, 1.0, 17);
    let free_hits = hit_rate(&free, &split.test);
    println!(
        "free generation : {budget} guesses, hit rate {:.2}%, repeat rate {:.2}%",
        100.0 * free_hits.rate(),
        100.0 * repeat_rate(&free)
    );

    // Attack 2: D&C-GEN — budget split across disjoint subtasks.
    let train_patterns =
        PatternDistribution::from_passwords(split.train.iter().map(String::as_str));
    let dc = DcGen::new(
        &model,
        DcGenConfig {
            threshold: 256,
            seed: 23,
            ..DcGenConfig::new(budget as u64)
        },
    )
    .run(&train_patterns)
    .expect("model is PagPassGPT");
    let dc_hits = hit_rate(&dc.passwords, &split.test);
    println!(
        "D&C-GEN         : {} guesses from {} leaves ({} expansions), hit rate {:.2}%, repeat rate {:.2}%",
        dc.passwords.len(),
        dc.leaf_tasks,
        dc.expansions,
        100.0 * dc_hits.rate(),
        100.0 * repeat_rate(&dc.passwords)
    );
    println!("(the paper's Fig. 10: D&C-GEN's disjoint subtasks collapse the repeat rate)");
}
