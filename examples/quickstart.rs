//! Quickstart: train a small PagPassGPT on a synthetic leak and crack some
//! held-out passwords, guided by a pattern.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pagpass::core::{ModelKind, PasswordModel, TrainConfig};
use pagpass::datasets::{clean, split_passwords, SiteProfile, SplitRatios};
use pagpass::eval::hit_rate;
use pagpass::nn::GptConfig;
use pagpass::patterns::Pattern;
use pagpass::tokenizer::VOCAB_SIZE;

fn main() {
    // 1. Build a leak-like corpus and apply the paper's cleaning + split.
    let raw = SiteProfile::rockyou().generate(20_000, 42);
    let cleaned = clean(raw);
    println!(
        "corpus: {} unique entries, {} after cleaning ({:.1}% retention)",
        cleaned.unique_total,
        cleaned.retained.len(),
        100.0 * cleaned.retention_rate()
    );
    let split = split_passwords(cleaned.retained, SplitRatios::PAPER, 7);

    // 2. Train PagPassGPT (pattern-conditioned rules, paper Eq. 1).
    let mut model = PasswordModel::new(ModelKind::PagPassGpt, GptConfig::small(VOCAB_SIZE), 1);
    let config = TrainConfig {
        epochs: 3,
        log_every: 100,
        ..TrainConfig::default()
    };
    let report = model.train(&split.train, &split.validation, &config);
    println!(
        "training loss: {:.3} -> {:.3} over {} steps",
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap(),
        report.steps
    );

    // 3. Guess 2 000 passwords under the most common test pattern.
    let pattern: Pattern = "L6N2".parse().unwrap();
    let guesses = model.generate_guided(&pattern, 2_000, 1.0, 99);
    let conforming: Vec<String> = split
        .test
        .iter()
        .filter(|p| pattern.matches(p))
        .cloned()
        .collect();
    let hits = hit_rate(&guesses, &conforming);
    println!(
        "pattern {pattern}: {} guesses hit {}/{} conforming test passwords (HR_P = {:.1}%)",
        guesses.len(),
        hits.hits,
        hits.test_size,
        100.0 * hits.rate()
    );
    println!("sample guesses: {:?}", &guesses[..8.min(guesses.len())]);
}
