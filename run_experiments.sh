#!/bin/sh
# Reproduces every table and figure at the given scale (default: default).
set -x
SCALE=${1:-default}
for bin in table2 table4 fig10 fig8 fig9 table3 table5 fig11 table6 ablation_threshold; do
  cargo run --release -p pagpass-bench --bin $bin -- --scale $SCALE || exit 1
done
