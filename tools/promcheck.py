#!/usr/bin/env python3
"""Validate a Prometheus text-exposition scrape line by line.

Stdlib-only checker used by the `http-smoke` CI job against the output of
`GET /metrics`. Checks, per line:

  * every line is a `# HELP`, `# TYPE`, or sample line — nothing else;
  * metric names match the Prometheus grammar `[a-zA-Z_:][a-zA-Z0-9_:]*`;
  * sample values parse as floats (`NaN`/`+Inf`/`-Inf` included);
  * `# TYPE` precedes the samples of its family, once per family;

and, per histogram family:

  * `_bucket` samples carry an `le` label and are cumulative
    (non-decreasing as `le` increases);
  * the `+Inf` bucket equals the family's `_count`;
  * `_count` and `_sum` are both present.

Flags:

  --require NAME [NAME ...]   fail unless each named family has a sample
  --reconcile                 assert the serve invariant
                              admitted == completed + shed + failed

Exit status is 0 when every check passes, 1 otherwise, with one line per
violation on stderr.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: \d+)?$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def parse_value(raw):
    if raw == "NaN":
        return math.nan
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def parse_labels(raw):
    """Parses `k="v",k2="v2"` into a dict, or returns None on bad syntax."""
    labels = {}
    if not raw:
        return labels
    for part in raw.split(","):
        m = LABEL_RE.match(part.strip())
        if not m:
            return None
        labels[m.group(1)] = m.group(2)
    return labels


def family_of(name):
    """Strips histogram sample suffixes back to the family name."""
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("scrape", help="file holding the /metrics body ('-' for stdin)")
    ap.add_argument("--require", nargs="+", default=[], metavar="NAME",
                    help="metric families that must be present")
    ap.add_argument("--reconcile", action="store_true",
                    help="assert serve_admitted_total == completed + shed + failed")
    args = ap.parse_args()

    text = sys.stdin.read() if args.scrape == "-" else open(args.scrape).read()

    errors = []
    types = {}          # family -> declared type
    samples = {}        # full sample name -> {frozenset(labels) -> value}
    buckets = {}        # family -> [(le, value)] in scrape order
    seen_families = set()

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            errors.append(f"line {lineno}: empty line in exposition")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            name = parts[2]
            if not NAME_RE.fullmatch(name):
                errors.append(f"line {lineno}: bad metric name {name!r}")
            if parts[1] == "TYPE":
                if name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                if name in seen_families:
                    errors.append(f"line {lineno}: TYPE for {name} after its samples")
                if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    errors.append(f"line {lineno}: unknown type {parts[3]!r}")
                types[name] = parts[3]
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, raw_labels, raw_value = m.group("name", "labels", "value")
        labels = parse_labels(raw_labels or "")
        if labels is None:
            errors.append(f"line {lineno}: bad labels: {line!r}")
            continue
        try:
            value = parse_value(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: bad value {raw_value!r}")
            continue
        family = family_of(name)
        seen_families.add(family)
        samples.setdefault(name, {})[frozenset(labels.items())] = value
        if name.endswith("_bucket"):
            if "le" not in labels:
                errors.append(f"line {lineno}: _bucket sample without le label")
                continue
            buckets.setdefault(family, []).append((parse_value(labels["le"]), value))

    for family, entries in sorted(buckets.items()):
        if types.get(family) != "histogram":
            errors.append(f"{family}: _bucket samples but TYPE is not histogram")
        les = [le for le, _ in entries]
        if les != sorted(les):
            errors.append(f"{family}: buckets not ordered by le")
        values = [v for _, v in entries]
        if any(b < a for a, b in zip(values, values[1:])):
            errors.append(f"{family}: bucket counts not cumulative: {values}")
        if not entries or not math.isinf(entries[-1][0]):
            errors.append(f"{family}: missing +Inf bucket")
        count = samples.get(f"{family}_count", {}).get(frozenset())
        if count is None:
            errors.append(f"{family}: missing _count")
        elif entries and entries[-1][1] != count:
            errors.append(
                f"{family}: +Inf bucket {entries[-1][1]} != _count {count}"
            )
        if f"{family}_sum" not in samples:
            errors.append(f"{family}: missing _sum")

    for name in args.require:
        if name not in samples and name not in seen_families:
            errors.append(f"required metric {name} not found")

    if args.reconcile:
        def scalar(name):
            vals = samples.get(name, {})
            if frozenset() not in vals:
                errors.append(f"reconcile: {name} not found")
                return None
            return vals[frozenset()]

        admitted = scalar("serve_admitted_total")
        completed = scalar("serve_completed_total")
        shed = scalar("serve_shed_total")
        failed = scalar("serve_failed_total")
        if None not in (admitted, completed, shed, failed):
            if admitted != completed + shed + failed:
                errors.append(
                    "reconcile: admitted "
                    f"{admitted} != completed {completed} + shed {shed} "
                    f"+ failed {failed}"
                )

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        sys.exit(1)
    print(
        f"promcheck ok: {len(samples)} sample names, "
        f"{len(buckets)} histograms, {len(types)} typed families"
    )


if __name__ == "__main__":
    main()
