#!/bin/sh
# Build/test the workspace in a container with no crates.io access.
#
# Copies the repo into /tmp/check/repo and patches the root Cargo.toml's
# external deps to the offline stub crates committed under
# tools/offline-stubs/, then runs cargo there:
#
#   tools/offline-stubs/sync.sh check --workspace --offline
#   tools/offline-stubs/sync.sh test --offline -q -p pagpassgpt --lib --tests
#
# The stubs are hand-written, dependency-free stand-ins for the API
# surface this workspace uses. The rand stub's StdRng is a bit-exact
# ChaCha12 reimplementation (RFC-vector verified) and DEFINES the stream
# behind committed golden files such as
# crates/core/tests/golden/dcgen_seed9.txt — regenerate goldens only
# under this harness.
set -e

REPO=$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)
STUBS="$REPO/tools/offline-stubs"

mkdir -p /tmp/check/repo
cd "$REPO"
# Tracked + untracked-but-not-ignored files, so pre-commit work syncs too.
git ls-files -co --exclude-standard -z | tar --null -T - -cf - | tar -xf - -C /tmp/check/repo

STUBS="$STUBS" python3 - <<'EOF'
import os
import re

path = "/tmp/check/repo/Cargo.toml"
stubs_dir = os.environ["STUBS"]
with open(path) as f:
    text = f.read()

stubs = ["rand", "proptest", "criterion", "parking_lot", "bytes", "serde", "serde_json"]
for name in stubs:
    text = re.sub(
        r'^%s\s*=.*$' % re.escape(name),
        '%s = { path = "%s/%s" }' % (name, stubs_dir, name),
        text,
        count=1,
        flags=re.M,
    )

with open(path, "w") as f:
    f.write(text)
EOF

cd /tmp/check/repo
exec cargo --offline "$@"
