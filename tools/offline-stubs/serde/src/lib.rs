//! Offline stand-in for `serde` 1.x: a tree-based data model instead of
//! visitor-driven serializers. `Serialize` lowers a value into
//! [`Value`]; `Deserialize` lifts it back. The companion `serde_derive`
//! stub generates impls for named-field structs and unit enums, and the
//! `serde_json` stub renders/parses [`Value`] as JSON text.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The self-describing tree every value serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    Map(Vec<(Value, Value)>),
}

impl Value {
    #[must_use]
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Value::Str(s) if s == key))
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// Best-effort rendering of a value used as a map key.
    #[must_use]
    pub fn as_key_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::I64(n) => n.to_string(),
            Value::U64(n) => n.to_string(),
            Value::F64(n) => n.to_string(),
            other => format!("{other:?}"),
        }
    }
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize<'de>: Sized {
    fn from_value(v: &Value) -> Option<Self>;
}

pub mod de {
    use super::Value;

    pub trait DeserializeOwned: Sized {
        fn deserialize_owned(v: &Value) -> Option<Self>;
    }

    impl<T> DeserializeOwned for T
    where
        T: for<'de> super::Deserialize<'de>,
    {
        fn deserialize_owned(v: &Value) -> Option<T> {
            T::from_value(v)
        }
    }
}

macro_rules! int_impl {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn from_value(v: &Value) -> Option<$ty> {
                match v {
                    Value::I64(n) => <$ty>::try_from(*n).ok(),
                    Value::U64(n) => <$ty>::try_from(*n).ok(),
                    Value::F64(n) if n.fract() == 0.0 => Some(*n as $ty),
                    _ => None,
                }
            }
        }
    )+};
}

int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn from_value(v: &Value) -> Option<$ty> {
                match v {
                    Value::F64(n) => Some(*n as $ty),
                    Value::I64(n) => Some(*n as $ty),
                    Value::U64(n) => Some(*n as $ty),
                    _ => None,
                }
            }
        }
    )+};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Option<bool> {
        match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Option<String> {
        match v {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Option<char> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => s.chars().next(),
            _ => None,
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl<'de> Deserialize<'de> for std::path::PathBuf {
    fn from_value(v: &Value) -> Option<std::path::PathBuf> {
        match v {
            Value::Str(s) => Some(std::path::PathBuf::from(s)),
            _ => None,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Option<Vec<T>> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => None,
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Option<Option<T>> {
        match v {
            Value::Null => Some(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impl {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: &Value) -> Option<($($name,)+)> {
                match v {
                    Value::Arr(items) if items.len() == [$($idx),+].len() => {
                        Some(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => None,
                }
            }
        }
    };
}

tuple_impl!(A.0, B.1);
tuple_impl!(A.0, B.1, C.2);
tuple_impl!(A.0, B.1, C.2, D.3);
tuple_impl!(A.0, B.1, C.2, D.3, E.4);
tuple_impl!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_impl!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_impl!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn from_value(v: &Value) -> Option<BTreeMap<K, V>> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Some((K::from_value(k)?, V::from_value(v)?)))
                .collect(),
            _ => None,
        }
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for stable output, matching what serde_json users see
        // when diffing committed JSON artifacts.
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        entries.sort_by_key(|(k, _)| k.as_key_string());
        Value::Map(entries)
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
{
    fn from_value(v: &Value) -> Option<HashMap<K, V>> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Some((K::from_value(k)?, V::from_value(v)?)))
                .collect(),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Option<Value> {
        Some(v.clone())
    }
}
