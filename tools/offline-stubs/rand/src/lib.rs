//! Offline stand-in for `rand` 0.8.5 on the API surface this workspace
//! uses: `StdRng`, `seed_from_u64`, `gen_range` (Lemire widening
//! multiply + rejection), `gen_bool` (Bernoulli), `WeightedIndex<f64>`
//! (cumulative + `UniformFloat`), and `SliceRandom::shuffle`
//! (Fisher-Yates over u32 draws). `StdRng` is a bit-exact ChaCha12
//! block-RNG reimplementation, RFC-vector verified; it defines the
//! stream behind the repo's committed golden files.

#![allow(clippy::many_single_char_names)]

/// Error type mirroring `rand::Error` (only its existence matters here).
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// PCG32-based seed expansion, bit-exact with rand_core 0.6.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    const BUF_WORDS: usize = 64; // 4 ChaCha blocks of 16 u32 words

    /// `StdRng` for rand 0.8 = ChaCha12 behind a 4-block block-RNG
    /// buffer, reimplemented bit-exactly:
    ///
    /// - block function verified against the ChaCha20 zero-key keystream
    ///   and the RFC 8439 keyed block vector (key order, counter
    ///   placement);
    /// - `seed_from_u64` is rand_core 0.6's PCG32 expansion;
    /// - `next_u64` follows `BlockRng` semantics including the
    ///   buffer-boundary straddle case.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    #[inline(always)]
    fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    impl StdRng {
        fn generate(&mut self) {
            for blk in 0..4u64 {
                let ctr = self.counter.wrapping_add(blk);
                let mut x: [u32; 16] = [
                    0x6170_7865,
                    0x3320_646e,
                    0x7962_2d32,
                    0x6b20_6574,
                    self.key[0],
                    self.key[1],
                    self.key[2],
                    self.key[3],
                    self.key[4],
                    self.key[5],
                    self.key[6],
                    self.key[7],
                    ctr as u32,
                    (ctr >> 32) as u32,
                    0,
                    0,
                ];
                let initial = x;
                for _ in 0..6 {
                    // column round
                    quarter(&mut x, 0, 4, 8, 12);
                    quarter(&mut x, 1, 5, 9, 13);
                    quarter(&mut x, 2, 6, 10, 14);
                    quarter(&mut x, 3, 7, 11, 15);
                    // diagonal round
                    quarter(&mut x, 0, 5, 10, 15);
                    quarter(&mut x, 1, 6, 11, 12);
                    quarter(&mut x, 2, 7, 8, 13);
                    quarter(&mut x, 3, 4, 9, 14);
                }
                let base = blk as usize * 16;
                for i in 0..16 {
                    self.buf[base + i] = x[i].wrapping_add(initial[i]);
                }
            }
            self.counter = self.counter.wrapping_add(4);
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.generate();
                self.index = 0;
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        // rand_core BlockRng::next_u64 semantics, including the
        // buffer-boundary straddle case.
        fn next_u64(&mut self) -> u64 {
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
            } else if index >= BUF_WORDS {
                self.generate();
                self.index = 2;
                (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
            } else {
                let low = u64::from(self.buf[BUF_WORDS - 1]);
                self.generate();
                self.index = 1;
                (u64::from(self.buf[0]) << 32) | low
            }
        }

        // rand_core fill_via_u32_chunks: a partial trailing chunk still
        // consumes a whole buffered word.
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut read = 0usize;
            while read < dest.len() {
                if self.index >= BUF_WORDS {
                    self.generate();
                    self.index = 0;
                }
                let avail = BUF_WORDS - self.index;
                let want = dest.len() - read;
                let chunk_u8 = core::cmp::min(avail * 4, want);
                let chunk_words = chunk_u8.div_ceil(4);
                for i in 0..chunk_words {
                    let b = self.buf[self.index + i].to_le_bytes();
                    let n = core::cmp::min(4, chunk_u8 - i * 4);
                    dest[read + i * 4..read + i * 4 + n].copy_from_slice(&b[..n]);
                }
                self.index += chunk_words;
                read += chunk_u8;
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

/// Widening multiply helpers used by the Lemire uniform-int samplers.
#[inline(always)]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let t = u64::from(a) * u64::from(b);
    ((t >> 32) as u32, t as u32)
}

#[inline(always)]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = u128::from(a) * u128::from(b);
    ((t >> 64) as u64, t as u64)
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_small_int {
    ($ty:ty, $unsigned:ty) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = self.end.wrapping_sub(self.start) as $unsigned as u32;
                // small-type path: reject from the top of the u32 space
                let ints_to_reject = (u32::MAX - range + 1) % range;
                let zone = u32::MAX - ints_to_reject;
                loop {
                    let v = rng.next_u32();
                    let (hi, lo) = wmul32(v, range);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low) as $unsigned as u32).wrapping_add(1);
                if range == 0 {
                    return rng.next_u32() as $ty;
                }
                let ints_to_reject = (u32::MAX - range + 1) % range;
                let zone = u32::MAX - ints_to_reject;
                loop {
                    let v = rng.next_u32();
                    let (hi, lo) = wmul32(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_small_int!(u8, u8);
uniform_small_int!(i8, u8);
uniform_small_int!(u16, u16);
uniform_small_int!(i16, u16);

macro_rules! uniform_large_int {
    ($ty:ty, $unsigned:ty, $u_large:ty, $next:ident, $wmul:ident) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = self.end.wrapping_sub(self.start) as $unsigned as $u_large;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low) as $unsigned as $u_large).wrapping_add(1);
                if range == 0 {
                    return rng.$next() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_large_int!(u32, u32, u32, next_u32, wmul32);
uniform_large_int!(i32, u32, u32, next_u32, wmul32);
uniform_large_int!(u64, u64, u64, next_u64, wmul64);
uniform_large_int!(i64, u64, u64, next_u64, wmul64);
uniform_large_int!(usize, usize, u64, next_u64, wmul64);
uniform_large_int!(isize, usize, u64, next_u64, wmul64);

pub trait Rng: RngCore {
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw, bit-exact with `rand::distributions::Bernoulli`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use super::{Rng, RngCore};

    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum WeightedError {
        NoItem,
        InvalidWeight,
        AllWeightsZero,
        TooMany,
    }

    impl core::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "{self:?}")
        }
    }

    impl std::error::Error for WeightedError {}

    /// `UniformFloat<f64>` from rand 0.8.5: multiply-based [low, high)
    /// with the scale nudged down until `scale * max_rand + low < high`.
    #[derive(Clone, Copy, Debug)]
    pub(crate) struct UniformF64 {
        low: f64,
        scale: f64,
    }

    impl UniformF64 {
        pub(crate) fn new(low: f64, high: f64) -> UniformF64 {
            debug_assert!(low.is_finite() && high.is_finite() && low < high);
            let max_rand = 1.0f64 - f64::EPSILON / 2.0;
            let mut scale = high - low;
            assert!(scale.is_finite(), "Uniform::new: range overflow");
            loop {
                let mask = scale * max_rand + low >= high;
                if !mask {
                    break;
                }
                scale = f64::from_bits(scale.to_bits() - 1);
            }
            UniformF64 { low, scale }
        }

        pub(crate) fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 52 mantissa bits from a u64 draw -> [1, 2), then shift down.
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let value0_1 = value1_2 - 1.0;
            value0_1 * self.scale + self.low
        }
    }

    /// Cumulative-weight index distribution (f64 weights only, which is
    /// all this workspace uses).
    #[derive(Clone, Debug)]
    pub struct WeightedIndex<X> {
        cumulative_weights: Vec<X>,
        sampler: UniformF64,
    }

    impl WeightedIndex<f64> {
        pub fn new<I>(weights: I) -> Result<WeightedIndex<f64>, WeightedError>
        where
            I: IntoIterator,
            I::Item: core::borrow::Borrow<f64>,
        {
            use core::borrow::Borrow;
            let mut iter = weights.into_iter();
            let mut total_weight: f64 = *iter.next().ok_or(WeightedError::NoItem)?.borrow();
            if !(total_weight >= 0.0) {
                return Err(WeightedError::InvalidWeight);
            }
            let mut cumulative_weights = Vec::with_capacity(iter.size_hint().0);
            for w in iter {
                let w = *w.borrow();
                if !(w >= 0.0) {
                    return Err(WeightedError::InvalidWeight);
                }
                cumulative_weights.push(total_weight);
                total_weight += w;
            }
            if total_weight == 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            let sampler = UniformF64::new(0.0, total_weight);
            Ok(WeightedIndex {
                cumulative_weights,
                sampler,
            })
        }
    }

    impl Distribution<usize> for WeightedIndex<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let chosen = self.sampler.sample(rng);
            self.cumulative_weights.partition_point(|w| *w <= chosen)
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// rand 0.8.5 `gen_index`: bounds that fit in u32 sample via u32.
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        use super::SampleRange;
        if ubound <= u32::MAX as usize {
            (0..ubound as u32).sample_single(rng) as usize
        } else {
            (0..ubound).sample_single(rng)
        }
    }

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    // The real bit-exactness oracle is the workspace's committed golden
    // files (dcgen_seed9.txt and the synth determinism tests); here we
    // only check internal consistency.
    #[test]
    fn deterministic_across_clones() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_u64_straddles_buffer_boundary() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = a.clone();
        for _ in 0..63 {
            a.next_u32();
            b.next_u32();
        }
        // a: next_u64 straddles the refill; must equal low word then
        // first word of the next block.
        let low = u64::from(b.next_u32());
        let high = u64::from(b.next_u32());
        assert_eq!(a.next_u64(), (high << 32) | low);
    }
}
