//! Offline stand-in for `serde_json` 1.x over the tree-based serde
//! stub: `to_string_pretty` renders [`serde::Value`] with two-space
//! indent, `from_str` parses JSON text back into the tree and lifts it
//! through `DeserializeOwned`.

use serde::Value;

#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let value = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    }
    .parse()?;
    T::deserialize_owned(&value).ok_or_else(|| Error("shape mismatch".to_string()))
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    // serde_json renders whole floats with a trailing .0
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_escaped(&k.as_key_string(), out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse(mut self) -> Result<Value> {
        let v = self.value()?;
        self.ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing bytes at {}", self.pos)));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let val = self.value()?;
                    entries.push((Value::Str(key), val));
                    self.ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at {}", self.pos))),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error(format!("bad array at {}", self.pos))),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(_) => self.number(),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number {text:?}")))
    }
}
