//! Offline stand-in for `criterion` 0.5 — enough to link non-bench
//! targets. Bench targets themselves are a known stub-harness gap and
//! only build in CI with the real crate.

pub struct Criterion;

impl Criterion {
    #[must_use]
    pub fn default() -> Criterion {
        Criterion
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher;
        f(&mut b);
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
