//! Offline stand-in for `parking_lot` 0.12 over `std::sync`, exposing
//! the non-poisoning API shape this workspace uses: `Mutex::lock`
//! without a `Result`, `Condvar::wait(&mut guard)`, and
//! `Condvar::wait_for` returning a [`WaitTimeoutResult`].

use std::sync::{self, TryLockError};
use std::time::Duration;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(sync::PoisonError::into_inner),
        ))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> core::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> core::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during wait");
        match self.0.wait_timeout(inner, timeout) {
            Ok((g, res)) => {
                guard.0 = Some(g);
                WaitTimeoutResult(res.timed_out())
            }
            Err(p) => {
                let (g, res) = p.into_inner();
                guard.0 = Some(g);
                WaitTimeoutResult(res.timed_out())
            }
        }
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}
