//! Offline stand-in for `serde_derive`: hand-rolled token walking that
//! generates `to_value`/`from_value` impls for the shapes this
//! workspace actually derives — named-field structs (with
//! `#[serde(skip)]` / `#[serde(default)]`), newtype structs, and enums
//! whose variants are unit or newtype (externally tagged).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Field {
    name: String,
    ty: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    /// Type inside a newtype variant; `None` for unit variants.
    payload: Option<String>,
}

enum Shape {
    NamedStruct(Vec<Field>),
    NewtypeStruct(String),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Serde-relevant flags found in one attribute run.
#[derive(Default)]
struct Attrs {
    skip: bool,
    default: bool,
}

fn parse_attrs(tokens: &[TokenTree], mut i: usize) -> (Attrs, usize) {
    let mut attrs = Attrs::default();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(TokenTree::Ident(id)) = inner.first() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(args)) = inner.get(1) {
                                    let txt = args.stream().to_string();
                                    for part in txt.split(',') {
                                        let part = part.trim();
                                        if part == "skip"
                                            || part == "skip_serializing"
                                            || part == "skip_deserializing"
                                        {
                                            attrs.skip = true;
                                        }
                                        if part == "default" || part.starts_with("default =") {
                                            attrs.default = true;
                                        }
                                    }
                                }
                            }
                        }
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            _ => break,
        }
    }
    (attrs, i)
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Collects type tokens until a top-level comma, tracking angle-bracket
/// depth (generic args contain bare commas at token level).
fn collect_type(tokens: &[TokenTree], mut i: usize) -> (String, usize) {
    let mut depth = 0i32;
    let mut out = TokenStream::new();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        out.extend([tokens[i].clone()]);
        i += 1;
    }
    (out.to_string(), i)
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (attrs, next) = parse_attrs(&tokens, i);
        i = skip_visibility(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub: expected ':' after field {name}, got {other:?}"),
        }
        let (ty, next) = collect_type(&tokens, i);
        i = next;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field {
            name,
            ty,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_attrs, next) = parse_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let mut payload = None;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    let (ty, end) = collect_type(&inner, 0);
                    assert!(
                        end == inner.len(),
                        "serde stub: only newtype enum variants are supported ({name})"
                    );
                    payload = Some(ty);
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde stub: struct enum variants unsupported ({name})")
                }
                _ => {}
            }
        }
        // Skip an explicit discriminant `= expr` if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, payload });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (_attrs, next) = parse_attrs(&tokens, 0);
    let mut i = skip_visibility(&tokens, next);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "serde stub: generic items unsupported ({name})"
        );
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let start = {
                    let (_a, n) = parse_attrs(&inner, 0);
                    skip_visibility(&inner, n)
                };
                let (ty, end) = collect_type(&inner, start);
                assert!(
                    end == inner.len(),
                    "serde stub: only single-field tuple structs supported ({name})"
                );
                Shape::NewtypeStruct(ty)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde stub: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde stub: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde stub: cannot derive for {other} {name}"),
    };
    Item { name, shape }
}

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __m: ::std::vec::Vec<(::serde::Value, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__m.push((::serde::Value::Str(::std::string::String::from(\"{0}\")), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Shape::NewtypeStruct(_) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                match &v.payload {
                    None => s.push_str(&format!(
                        "{name}::{0} => ::serde::Value::Str(::std::string::String::from(\"{0}\")),\n",
                        v.name
                    )),
                    Some(_) => s.push_str(&format!(
                        "{name}::{0}(__x) => ::serde::Value::Map(::std::vec![(::serde::Value::Str(::std::string::String::from(\"{0}\")), ::serde::Serialize::to_value(__x))]),\n",
                        v.name
                    )),
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
    )
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = format!("::std::option::Option::Some({name} {{\n");
            for f in fields {
                if f.skip {
                    s.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    s.push_str(&format!(
                        "{0}: match __v.get_field(\"{0}\") {{\n ::std::option::Option::Some(__x) => <{1} as ::serde::Deserialize>::from_value(__x)?,\n ::std::option::Option::None => ::core::default::Default::default(),\n }},\n",
                        f.name, f.ty
                    ));
                } else {
                    s.push_str(&format!(
                        "{0}: <{1} as ::serde::Deserialize>::from_value(__v.get_field(\"{0}\")?)?,\n",
                        f.name, f.ty
                    ));
                }
            }
            s.push_str("})");
            s
        }
        Shape::NewtypeStruct(ty) => format!(
            "::std::option::Option::Some({name}(<{ty} as ::serde::Deserialize>::from_value(__v)?))"
        ),
        Shape::UnitStruct => format!("::std::option::Option::Some({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut newtype_arms = String::new();
            for v in variants {
                match &v.payload {
                    None => unit_arms.push_str(&format!(
                        "\"{0}\" => ::std::option::Option::Some({name}::{0}),\n",
                        v.name
                    )),
                    Some(ty) => newtype_arms.push_str(&format!(
                        "\"{0}\" => ::std::option::Option::Some({name}::{0}(<{ty} as ::serde::Deserialize>::from_value(__val)?)),\n",
                        v.name
                    )),
                }
            }
            format!(
                "match __v {{\n ::serde::Value::Str(__s) => match __s.as_str() {{\n {unit_arms} _ => ::std::option::Option::None,\n }},\n ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n let (__key, __val) = &__entries[0];\n match __key.as_key_string().as_str() {{\n {newtype_arms} _ => ::std::option::Option::None,\n }}\n }},\n _ => ::std::option::Option::None,\n }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl<'de> ::serde::Deserialize<'de> for {name} {{\n fn from_value(__v: &::serde::Value) -> ::std::option::Option<Self> {{\n {body}\n }}\n}}\n"
    )
}
