//! Offline stand-in for `proptest` 1.x: the `proptest!` macro discards
//! its body (property tests become no-ops under the stub harness — the
//! real crate runs them in CI), while the `Strategy` combinator surface
//! typechecks so strategy-constructor functions outside the macro still
//! compile.

use std::marker::PhantomData;

/// A typecheck-only strategy producing values of type `T`.
pub struct St<T>(PhantomData<T>);

impl<T> St<T> {
    #[must_use]
    pub fn new() -> St<T> {
        St(PhantomData)
    }
}

impl<T> Default for St<T> {
    fn default() -> St<T> {
        St::new()
    }
}

impl<T> Clone for St<T> {
    fn clone(&self) -> St<T> {
        St::new()
    }
}

pub trait Strategy: Sized {
    type Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, _f: F) -> St<O> {
        St::new()
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, _f: F) -> St<S::Value> {
        St::new()
    }

    fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
        self,
        _whence: R,
        _f: F,
    ) -> St<Self::Value> {
        St::new()
    }

    fn prop_filter_map<R: Into<String>, O, F: Fn(Self::Value) -> Option<O>>(
        self,
        _whence: R,
        _f: F,
    ) -> St<O> {
        St::new()
    }

    fn boxed(self) -> St<Self::Value> {
        St::new()
    }
}

impl<T> Strategy for St<T> {
    type Value = T;
}

pub type BoxedStrategy<T> = St<T>;

macro_rules! range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// `prop_oneof!` support: every arm must share a value type.
#[must_use]
pub fn one_of2<A, B>(_arms: (A, B)) -> St<A::Value>
where
    A: Strategy,
    B: Strategy<Value = A::Value>,
{
    St::new()
}

#[must_use]
pub fn one_of3<A, B, C>(_arms: (A, B, C)) -> St<A::Value>
where
    A: Strategy,
    B: Strategy<Value = A::Value>,
    C: Strategy<Value = A::Value>,
{
    St::new()
}

#[must_use]
pub fn one_of4<A, B, C, D>(_arms: (A, B, C, D)) -> St<A::Value>
where
    A: Strategy,
    B: Strategy<Value = A::Value>,
    C: Strategy<Value = A::Value>,
    D: Strategy<Value = A::Value>,
{
    St::new()
}

#[must_use]
pub fn any<T>() -> St<T> {
    St::new()
}

#[derive(Clone, Debug, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

pub mod collection {
    use super::{St, Strategy};

    pub struct SizeRange;

    impl From<usize> for SizeRange {
        fn from(_: usize) -> SizeRange {
            SizeRange
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(_: core::ops::Range<usize>) -> SizeRange {
            SizeRange
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(_: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange
        }
    }

    pub fn vec<S: Strategy>(_element: S, _size: impl Into<SizeRange>) -> St<Vec<S::Value>> {
        St::new()
    }
}

pub mod sample {
    use super::St;

    pub fn select<T, X>(_options: X) -> St<T>
    where
        T: Clone + core::fmt::Debug,
        X: core::ops::Deref<Target = [T]>,
    {
        St::new()
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Strategy};

    /// `Just` strategy: always produces the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
        type Value = T;
    }
}

pub mod prelude {
    pub use super::collection;
    pub use super::sample;
    pub use super::strategy::Just;
    pub use super::{any, BoxedStrategy, ProptestConfig, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Discards the entire body: property tests are a no-op under the
/// offline stub harness.
#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($a:expr, $b:expr $(,)?) => {
        $crate::one_of2(($a, $b))
    };
    ($a:expr, $b:expr, $c:expr $(,)?) => {
        $crate::one_of3(($a, $b, $c))
    };
    ($a:expr, $b:expr, $c:expr, $d:expr $(,)?) => {
        $crate::one_of4(($a, $b, $c, $d))
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assume {
    ($($tt:tt)*) => {};
}
