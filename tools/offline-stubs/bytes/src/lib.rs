//! Offline stand-in for `bytes` 1.x covering the cursor-style API this
//! workspace uses for checkpoint/model serialization: `BytesMut`
//! building (`put_*`), `freeze`, and consuming `Bytes` via the `Buf`
//! reader methods (`get_*`, `remaining`).

use std::ops::{Index, RangeBounds};
use std::sync::Arc;

pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable shared byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    #[must_use]
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    #[must_use]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl<R: std::slice::SliceIndex<[u8]>> Index<R> for Bytes {
    type Output = R::Output;

    fn index(&self, index: R) -> &R::Output {
        &self.data[self.start..self.end][index]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    read: usize,
}

impl BytesMut {
    #[must_use]
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    #[must_use]
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
            read: 0,
        }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[must_use]
    pub fn freeze(self) -> Bytes {
        let mut data = self.data;
        if self.read > 0 {
            data.drain(..self.read);
        }
        Bytes::from(data)
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.read..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.read += cnt;
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.read..]
    }
}
