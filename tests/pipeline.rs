//! Cross-crate integration tests: the full paper pipeline at smoke scale —
//! synthetic leak → cleaning → split → tokenizer → model training →
//! generation (free / guided / D&C-GEN) → evaluation metrics.

use pagpass::core::{DcGen, DcGenConfig, ModelKind, PasswordModel, TrainConfig};
use pagpass::datasets::{clean, split_passwords, Site, SiteProfile, SplitRatios};
use pagpass::eval::{hit_rate, repeat_rate, GuessCurve, PatternGuidedEval};
use pagpass::nn::GptConfig;
use pagpass::patterns::{Pattern, PatternDistribution};
use pagpass::tokenizer::{Tokenizer, VOCAB_SIZE};

fn smoke_split() -> pagpass::datasets::Split {
    let raw = SiteProfile::rockyou().generate(4_000, 77);
    split_passwords(clean(raw).retained, SplitRatios::PAPER, 77)
}

fn smoke_config() -> GptConfig {
    GptConfig {
        vocab_size: VOCAB_SIZE,
        ctx_len: 32,
        dim: 16,
        n_layers: 1,
        n_heads: 2,
    }
}

fn quick_train(kind: ModelKind, split: &pagpass::datasets::Split) -> PasswordModel {
    let mut model = PasswordModel::new(kind, smoke_config(), 3);
    let config = TrainConfig {
        epochs: 2,
        max_batches_per_epoch: Some(40),
        ..TrainConfig::default()
    };
    let report = model.train(&split.train, &split.validation, &config);
    assert!(!report.epoch_losses.is_empty());
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    model
}

#[test]
fn leak_to_split_pipeline_is_consistent() {
    let split = smoke_split();
    assert!(split.train.len() > split.test.len());
    // Every surviving password tokenizes and has an extractable pattern.
    let tok = Tokenizer::new();
    for pw in split.train.iter().chain(&split.test) {
        let ids = tok.encode_training(pw).expect("cleaned passwords tokenize");
        assert!(ids.len() <= 27);
        assert!(Pattern::of_password(pw).is_ok());
    }
}

#[test]
fn pagpassgpt_end_to_end_training_and_guessing() {
    let split = smoke_split();
    let model = quick_train(ModelKind::PagPassGpt, &split);

    // Free generation feeds the trawling metrics.
    let guesses = model.generate_free(300, 1.0, 5);
    assert_eq!(guesses.len(), 300);
    let curve = GuessCurve::compute(&guesses, &split.test, &[100, 300]);
    assert_eq!(curve.hit_rates.len(), 2);
    assert!(curve.repeat_rates.iter().all(|&r| (0.0..=1.0).contains(&r)));

    // Guided generation respects the length budget.
    let pattern: Pattern = "L6N2".parse().unwrap();
    let guided = model.generate_guided(&pattern, 50, 1.0, 6);
    assert_eq!(guided.len(), 50);
    for pw in &guided {
        assert!(pw.chars().count() <= pattern.char_len() + 1);
    }
}

#[test]
fn passgpt_guided_generation_conforms_by_construction() {
    let split = smoke_split();
    let model = quick_train(ModelKind::PassGpt, &split);
    let eval = PatternGuidedEval::new(&split.test);
    let targets = eval.target_patterns(2);
    assert!(!targets.is_empty());
    for (_, patterns) in targets.iter().take(3) {
        for pattern in patterns {
            let guesses = model.generate_guided(pattern, 20, 1.0, 9);
            for pw in &guesses {
                assert!(
                    pattern.matches(pw),
                    "filtered generation must conform: {pw}"
                );
            }
            let hit = eval.score_pattern(pattern, &guesses);
            assert!(hit.test_conforming > 0, "targets come from the test set");
        }
    }
}

#[test]
fn dcgen_reduces_repeats_relative_to_free_generation() {
    let split = smoke_split();
    let model = quick_train(ModelKind::PagPassGpt, &split);
    let patterns = PatternDistribution::from_passwords(split.train.iter().map(String::as_str));
    let n = 2_000;

    let free = model.generate_free(n, 1.0, 8);
    let dc = DcGen::new(
        &model,
        DcGenConfig {
            threshold: 64,
            seed: 8,
            ..DcGenConfig::new(n as u64)
        },
    )
    .run(&patterns)
    .expect("PagPassGPT kind");

    // The core claim of D&C-GEN (paper Fig. 10): fewer duplicates for the
    // same budget. At smoke scale the gap is large because the untrained
    // model's free samples concentrate heavily.
    let rr_free = repeat_rate(&free);
    let rr_dc = repeat_rate(&dc.passwords);
    assert!(
        rr_dc < rr_free,
        "D&C repeat rate {rr_dc:.3} should undercut free generation {rr_free:.3}"
    );
    // Budget roughly conserved.
    let produced = dc.passwords.len();
    assert!(
        produced as f64 > n as f64 * 0.4,
        "produced {produced} of {n}"
    );
}

#[test]
fn cross_site_attack_hits_transfer() {
    let split = smoke_split();
    let model = quick_train(ModelKind::PagPassGpt, &split);
    let guesses = model.generate_free(500, 1.0, 10);
    let phpbb = clean(Site::PhpBb.profile().generate(3_000, 77)).retained;
    let report = hit_rate(&guesses, &phpbb);
    // Sites share password habits, so the metric is well-defined and the
    // pipeline runs; the hit count itself may be small at smoke scale.
    assert_eq!(report.test_size, phpbb.len());
    assert!(report.unique_guesses <= 500);
}

#[test]
fn pcfg_and_markov_baselines_attack_the_same_split() {
    let split = smoke_split();
    let pcfg = pagpass::pcfg::PcfgModel::train(split.train.iter().map(String::as_str));
    let markov =
        pagpass::markov::MarkovModel::train(split.train.iter().map(String::as_str), 2, 0.01);

    let pcfg_guesses = pcfg.guesses(2_000);
    let markov_guesses = markov.sample_many(2_000, 12, 4);
    let hr_pcfg = hit_rate(&pcfg_guesses, &split.test).rate();
    let hr_markov = hit_rate(&markov_guesses, &split.test).rate();
    // PCFG enumerates in probability order and recombines seen parts:
    // it must crack something on a recipe-built corpus.
    assert!(hr_pcfg > 0.0, "PCFG should hit at least one test password");
    assert!((0.0..=1.0).contains(&hr_markov));
}

#[test]
fn deep_baselines_produce_scorable_guesses() {
    use pagpass::baselines::{FlowConfig, GanConfig, PassFlow, PassGan, VaeConfig, VaePass};
    let split = smoke_split();

    let mut gan = PassGan::new(GanConfig::tiny(), 1);
    gan.train(&split.train, 2);
    let mut vae = VaePass::new(VaeConfig::tiny(), 2);
    vae.train(&split.train, 2);
    let mut flow = PassFlow::new(FlowConfig::tiny(), 3);
    flow.train(&split.train, 2);

    for guesses in [
        gan.generate(200, 9),
        vae.generate(200, 9),
        flow.generate(200, 9),
    ] {
        assert_eq!(guesses.len(), 200);
        let r = hit_rate(&guesses, &split.test);
        assert!(r.rate() <= 1.0);
        let rr = repeat_rate(&guesses);
        assert!((0.0..=1.0).contains(&rr));
    }
}

#[test]
fn model_save_load_preserves_guessing_behaviour() {
    let split = smoke_split();
    let mut model = quick_train(ModelKind::PagPassGpt, &split);
    let dir = std::env::temp_dir().join("pagpass_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.pagnn");
    model.save(&path).unwrap();
    let loaded = PasswordModel::load(ModelKind::PagPassGpt, &path).unwrap();
    assert_eq!(
        model.generate_free(30, 1.0, 12),
        loaded.generate_free(30, 1.0, 12)
    );
    let pattern: Pattern = "L5N2".parse().unwrap();
    assert_eq!(
        model.generate_guided(&pattern, 10, 1.0, 13),
        loaded.generate_guided(&pattern, 10, 1.0, 13)
    );
    std::fs::remove_file(path).ok();
}
