//! Cross-crate property-based tests on the invariants the paper's
//! algorithms rely on.

use pagpass::eval::{hit_rate, repeat_rate, GuessCurve};
use pagpass::patterns::{Pattern, PatternDistribution};
use pagpass::pcfg::PcfgModel;
use pagpass::tokenizer::Tokenizer;
use proptest::prelude::*;

/// Alphabet-conforming passwords of length 1..=12.
fn password() -> impl Strategy<Value = String> {
    let alphabet: Vec<char> = ('!'..='~').collect();
    proptest::collection::vec(proptest::sample::select(alphabet), 1..=12)
        .prop_map(|cs| cs.into_iter().collect())
}

fn corpus() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(password(), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tokenizer and the pattern extractor always agree: the pattern
    /// section of an encoded rule is the password's extracted pattern.
    #[test]
    fn tokenizer_and_patterns_agree(pw in password()) {
        let tok = Tokenizer::new();
        let ids = tok.encode_training(&pw).unwrap();
        let rule = tok.decode_rule(&ids).unwrap();
        let pattern = rule.pattern.expect("training rules always carry a pattern");
        prop_assert_eq!(&pattern, &Pattern::of_password(&pw).unwrap());
        prop_assert!(pattern.matches(&pw));
    }

    /// PCFG assigns every training password positive probability, and its
    /// enumeration is strictly descending and duplicate-free.
    #[test]
    fn pcfg_training_set_has_mass(pwds in corpus()) {
        let model = PcfgModel::train(pwds.iter().map(String::as_str));
        for pw in &pwds {
            prop_assert!(model.probability(pw) > 0.0, "{pw} lost its mass");
        }
        let guesses = model.guesses(50);
        let probs: Vec<f64> = guesses.iter().map(|g| model.probability(g)).collect();
        prop_assert!(probs.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        let unique: std::collections::HashSet<&String> = guesses.iter().collect();
        prop_assert_eq!(unique.len(), guesses.len());
    }

    /// Metric sanity: hit rate and repeat rate stay in [0, 1]; guessing the
    /// test set itself yields hit rate 1.
    #[test]
    fn metric_bounds(guesses in corpus(), test in corpus()) {
        let hr = hit_rate(&guesses, &test).rate();
        prop_assert!((0.0..=1.0).contains(&hr));
        let rr = repeat_rate(&guesses);
        prop_assert!((0.0..=1.0).contains(&rr));
        let perfect = hit_rate(&test, &test);
        prop_assert!((perfect.rate() - 1.0).abs() < 1e-12);
    }

    /// GuessCurve prefix evaluation agrees with pointwise metrics at every
    /// budget, and hit rates are monotone in the budget.
    #[test]
    fn guess_curve_consistency(guesses in corpus(), test in corpus()) {
        let budgets: Vec<usize> = vec![1, guesses.len() / 2 + 1, guesses.len()];
        let curve = GuessCurve::compute(&guesses, &test, &budgets);
        prop_assert!(curve.hit_rates.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        for (i, &b) in curve.budgets.iter().enumerate() {
            let prefix = &guesses[..b];
            prop_assert!((curve.hit_rates[i] - hit_rate(prefix, &test).rate()).abs() < 1e-12);
            prop_assert!((curve.repeat_rates[i] - repeat_rate(prefix)).abs() < 1e-12);
        }
    }

    /// Pattern distribution: probabilities sum to 1 and the top-k covers at
    /// least as much mass as any other k patterns.
    #[test]
    fn distribution_top_is_maximal(pwds in corpus()) {
        let dist = PatternDistribution::from_passwords(pwds.iter().map(String::as_str));
        let ranked = dist.ranked();
        let sum: f64 = ranked.iter().map(|e| e.probability).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let k = ranked.len() / 2;
        let top_mass: f64 = ranked[..k].iter().map(|e| e.probability).sum();
        let bottom_mass: f64 = ranked[ranked.len() - k..].iter().map(|e| e.probability).sum();
        prop_assert!(top_mass >= bottom_mass - 1e-12);
    }

    /// Distances are symmetric-ish sanity: zero against self, bounded by
    /// the sum of both distributions' norms.
    #[test]
    fn distances_are_sane(pwds in corpus()) {
        let d_len = pagpass::eval::length_distance(&pwds, &pwds);
        let d_pat = pagpass::eval::pattern_distance(&pwds, &pwds, 150);
        prop_assert!(d_len < 1e-9);
        prop_assert!(d_pat < 1e-9);
    }
}
