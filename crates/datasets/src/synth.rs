use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::words;

/// The five leak sites of the paper's evaluation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Site {
    /// RockYou-like: consumer site, playful passwords, heavy digit suffixes.
    RockYou,
    /// LinkedIn-like: professional site, more "policy-compliant" passwords.
    LinkedIn,
    /// phpBB-like: forum, short techie passwords, keyboard walks.
    PhpBb,
    /// MySpace-like: early social network; the real leak was phished via a
    /// form that encouraged letters+digit endings.
    MySpace,
    /// Yahoo!-like: webmail, mixed population.
    Yahoo,
}

impl Site {
    /// All sites in the paper's Table II order.
    pub const ALL: [Site; 5] = [
        Site::RockYou,
        Site::LinkedIn,
        Site::PhpBb,
        Site::MySpace,
        Site::Yahoo,
    ];

    /// Human-readable name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Site::RockYou => "RockYou",
            Site::LinkedIn => "LinkedIn",
            Site::PhpBb => "phpBB",
            Site::MySpace => "MySpace",
            Site::Yahoo => "Yahoo!",
        }
    }

    /// The generator profile for this site.
    #[must_use]
    pub fn profile(self) -> SiteProfile {
        match self {
            Site::RockYou => SiteProfile::rockyou(),
            Site::LinkedIn => SiteProfile::linkedin(),
            Site::PhpBb => SiteProfile::phpbb(),
            Site::MySpace => SiteProfile::myspace(),
            Site::Yahoo => SiteProfile::yahoo(),
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Recipe mixture describing how one site's users build passwords.
///
/// Weights are relative (they need not sum to 1); each generated password
/// picks a recipe from the mixture and decorates a Zipf-sampled root.
/// The fields correspond to habits documented in the password literature
/// the paper cites (meaningful words, digit suffixes, capitalization,
/// leetspeak, years).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteProfile {
    /// Display name of the site.
    pub name: String,
    /// Weight of "word only" recipes (pattern `L*`).
    pub w_word: f64,
    /// Weight of "word + digits" recipes (`L*N*`), the dominant leak shape.
    pub w_word_digits: f64,
    /// Weight of "digits only" (`N*`).
    pub w_digits: f64,
    /// Weight of "word + special + digits" (`L*S*N*`).
    pub w_word_special_digits: f64,
    /// Weight of "word + digits + special" (`L*N*S*`).
    pub w_word_digits_special: f64,
    /// Weight of "two words" (`L*`), concatenated roots.
    pub w_two_words: f64,
    /// Weight of "name + year" (`L*N2`/`L*N4`).
    pub w_name_year: f64,
    /// Weight of keyboard walks.
    pub w_walk: f64,
    /// Probability that the leading letter is capitalized.
    pub cap_rate: f64,
    /// Probability of applying a leet substitution to the root (a→4, e→3…).
    pub leet_rate: f64,
    /// Zipf exponent for root selection (larger ⇒ heavier head).
    pub zipf_s: f64,
    /// Zipf exponent for whole-password reuse (larger ⇒ more duplicates in
    /// the raw leak).
    pub reuse_s: f64,
    /// Number of "very popular" passwords that the reuse law cycles over.
    pub reuse_pool: usize,
    /// Probability that a raw entry is noise that cleaning should drop
    /// (too short, too long, or containing out-of-alphabet characters).
    pub noise_rate: f64,
}

impl SiteProfile {
    /// RockYou-like profile: playful, digit-suffix heavy, some noise.
    #[must_use]
    pub fn rockyou() -> SiteProfile {
        SiteProfile {
            name: "RockYou".to_owned(),
            w_word: 0.22,
            w_word_digits: 0.34,
            w_digits: 0.16,
            w_word_special_digits: 0.04,
            w_word_digits_special: 0.05,
            w_two_words: 0.06,
            w_name_year: 0.08,
            w_walk: 0.05,
            cap_rate: 0.12,
            leet_rate: 0.05,
            zipf_s: 1.05,
            reuse_s: 1.30,
            reuse_pool: 400,
            noise_rate: 0.040,
        }
    }

    /// LinkedIn-like profile: longer, more specials, lower reuse.
    #[must_use]
    pub fn linkedin() -> SiteProfile {
        SiteProfile {
            name: "LinkedIn".to_owned(),
            w_word: 0.14,
            w_word_digits: 0.36,
            w_digits: 0.08,
            w_word_special_digits: 0.09,
            w_word_digits_special: 0.10,
            w_two_words: 0.08,
            w_name_year: 0.09,
            w_walk: 0.06,
            cap_rate: 0.22,
            leet_rate: 0.09,
            zipf_s: 0.95,
            reuse_s: 1.15,
            reuse_pool: 600,
            noise_rate: 0.105,
        }
    }

    /// phpBB-like profile: short techie passwords and walks.
    #[must_use]
    pub fn phpbb() -> SiteProfile {
        SiteProfile {
            name: "phpBB".to_owned(),
            w_word: 0.26,
            w_word_digits: 0.30,
            w_digits: 0.12,
            w_word_special_digits: 0.04,
            w_word_digits_special: 0.05,
            w_two_words: 0.05,
            w_name_year: 0.07,
            w_walk: 0.11,
            cap_rate: 0.08,
            leet_rate: 0.08,
            zipf_s: 1.00,
            reuse_s: 1.25,
            reuse_pool: 300,
            noise_rate: 0.008,
        }
    }

    /// MySpace-like profile: famously letters-then-digit endings.
    #[must_use]
    pub fn myspace() -> SiteProfile {
        SiteProfile {
            name: "MySpace".to_owned(),
            w_word: 0.16,
            w_word_digits: 0.44,
            w_digits: 0.06,
            w_word_special_digits: 0.05,
            w_word_digits_special: 0.08,
            w_two_words: 0.06,
            w_name_year: 0.10,
            w_walk: 0.05,
            cap_rate: 0.15,
            leet_rate: 0.05,
            zipf_s: 1.10,
            reuse_s: 1.30,
            reuse_pool: 250,
            noise_rate: 0.010,
        }
    }

    /// Yahoo!-like profile: balanced webmail population.
    #[must_use]
    pub fn yahoo() -> SiteProfile {
        SiteProfile {
            name: "Yahoo!".to_owned(),
            w_word: 0.20,
            w_word_digits: 0.35,
            w_digits: 0.12,
            w_word_special_digits: 0.05,
            w_word_digits_special: 0.06,
            w_two_words: 0.07,
            w_name_year: 0.09,
            w_walk: 0.06,
            cap_rate: 0.14,
            leet_rate: 0.06,
            zipf_s: 1.02,
            reuse_s: 1.22,
            reuse_pool: 350,
            noise_rate: 0.008,
        }
    }

    /// Generates `n` raw leak entries (with realistic duplicates and noise).
    ///
    /// The output corresponds to a leak file *before* the paper's cleaning
    /// step; feed it to [`clean`](crate::clean). Deterministic in
    /// `(profile, n, seed)`.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(&self.name));
        // A fraction of users re-use one of `reuse_pool` popular passwords
        // drawn by a Zipf law; the rest mint "personal" passwords.
        let pool: Vec<String> = (0..self.reuse_pool).map(|_| self.mint(&mut rng)).collect();
        let zipf_weights: Vec<f64> = (1..=self.reuse_pool)
            .map(|r| 1.0 / (r as f64).powf(self.reuse_s))
            .collect();
        // LINT-ALLOW: no-unwrap-in-lib weights are 1/r^s over r >= 1 —
        // always finite, positive, and non-empty (reuse_pool >= 1)
        let zipf = WeightedIndex::new(&zipf_weights).expect("non-empty positive weights");
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let pw = if rng.gen_bool(0.45) {
                pool[zipf.sample(&mut rng)].clone()
            } else {
                self.mint(&mut rng)
            };
            out.push(if rng.gen_bool(self.noise_rate) {
                self.noisify(pw, &mut rng)
            } else {
                pw
            });
        }
        out
    }

    /// Mints one fresh password according to the recipe mixture.
    fn mint(&self, rng: &mut StdRng) -> String {
        let weights = [
            self.w_word,
            self.w_word_digits,
            self.w_digits,
            self.w_word_special_digits,
            self.w_word_digits_special,
            self.w_two_words,
            self.w_name_year,
            self.w_walk,
        ];
        let recipe = WeightedIndex::new(weights)
            // LINT-ALLOW: no-unwrap-in-lib the built-in site profiles all
            // carry at least one positive recipe weight
            .expect("profile weights are positive")
            .sample(rng);
        let pw = match recipe {
            0 => self.root(rng),
            1 => format!("{}{}", self.root(rng), digits(rng, 1..=4)),
            2 => words::DIGIT_STRINGS[rng.gen_range(0..words::DIGIT_STRINGS.len())].to_owned(),
            3 => format!("{}{}{}", self.root(rng), special(rng), digits(rng, 1..=3)),
            4 => format!("{}{}{}", self.root(rng), digits(rng, 1..=3), special(rng)),
            5 => {
                let a = self.root(rng);
                let b = self.root(rng);
                format!("{a}{b}")
            }
            6 => {
                let name = zipf_pick(words::NAMES, self.zipf_s, rng);
                let year = if rng.gen_bool(0.5) {
                    format!("{}", rng.gen_range(1950..=2012))
                } else {
                    format!("{:02}", rng.gen_range(0..100))
                };
                format!("{}{year}", self.capitalize(name.to_owned(), rng))
            }
            _ => {
                let walk = words::KEYBOARD_WALKS[rng.gen_range(0..words::KEYBOARD_WALKS.len())];
                if rng.gen_bool(0.4) {
                    format!("{walk}{}", digits(rng, 1..=3))
                } else {
                    walk.to_owned()
                }
            }
        };
        fit(pw, rng)
    }

    /// Zipf-samples a root word/name and applies capitalization + leet.
    fn root(&self, rng: &mut StdRng) -> String {
        let word = if rng.gen_bool(0.62) {
            zipf_pick(words::COMMON_WORDS, self.zipf_s, rng)
        } else {
            zipf_pick(words::NAMES, self.zipf_s, rng)
        };
        let mut word = word.to_owned();
        if rng.gen_bool(self.leet_rate) {
            word = leet(&word);
        }
        self.capitalize(word, rng)
    }

    fn capitalize(&self, mut word: String, rng: &mut StdRng) -> String {
        if rng.gen_bool(self.cap_rate) {
            if let Some(first) = word.get(0..1) {
                let upper = first.to_ascii_uppercase();
                word.replace_range(0..1, &upper);
            }
        }
        word
    }

    /// Produces the out-of-policy entries real leaks contain: too short,
    /// too long, or with non-ASCII / invisible characters.
    fn noisify(&self, pw: String, rng: &mut StdRng) -> String {
        match rng.gen_range(0..4) {
            0 => pw.chars().take(rng.gen_range(1..=3)).collect(), // too short
            1 => format!("{pw}{pw}{}", digits(rng, 5..=8)),       // too long (>= 13 chars)
            2 => format!("caf\u{e9}{pw}"),                        // non-ASCII
            _ => format!("{} {}", pw, digits(rng, 1..=2)),        // embedded space
        }
    }
}

/// Clamps a minted password into the 4–12 character policy: users on these
/// sites mostly typed policy-conforming passwords; the out-of-policy tail
/// is produced by `noisify` instead.
fn fit(pw: String, rng: &mut StdRng) -> String {
    let len = pw.chars().count();
    if len > 12 {
        pw.chars().take(12).collect()
    } else if len < 4 {
        format!("{pw}{}", digits(rng, 4 - len..=4 - len))
    } else {
        pw
    }
}

/// Zipf-weighted pick by list rank.
fn zipf_pick<'a>(list: &[&'a str], s: f64, rng: &mut StdRng) -> &'a str {
    // Inverse-CDF-free approximation: rejection-sample ranks with weight
    // r^-s against the uniform envelope. Lists are small, so a simple
    // weighted draw on first use would also work; this avoids building the
    // table per call.
    loop {
        let r = rng.gen_range(0..list.len());
        let w = 1.0 / ((r + 1) as f64).powf(s);
        if rng.gen_bool(w.clamp(0.0, 1.0)) {
            return list[r];
        }
    }
}

fn digits(rng: &mut StdRng, len: std::ops::RangeInclusive<usize>) -> String {
    let n = rng.gen_range(len);
    // Bias toward the digit habits users actually have: repeats, years,
    // straights, and "1" endings.
    match rng.gen_range(0..4) {
        0 => "1".repeat(n),
        1 => (0..n).map(|i| char::from(b'1' + (i % 9) as u8)).collect(),
        2 => {
            let d = rng.gen_range(b'0'..=b'9');
            (0..n).map(|_| char::from(d)).collect()
        }
        _ => (0..n)
            .map(|_| char::from(rng.gen_range(b'0'..=b'9')))
            .collect(),
    }
}

fn special(rng: &mut StdRng) -> char {
    words::POPULAR_SPECIALS[rng.gen_range(0..words::POPULAR_SPECIALS.len())]
}

/// Classic leetspeak substitutions.
fn leet(word: &str) -> String {
    word.chars()
        .map(|c| match c {
            'a' => '4',
            'e' => '3',
            'i' => '1',
            'o' => '0',
            's' => '5',
            't' => '7',
            other => other,
        })
        .collect()
}

/// Tiny FNV-style hash to decorrelate per-site RNG streams.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let a = SiteProfile::rockyou().generate(500, 1);
        let b = SiteProfile::rockyou().generate(500, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SiteProfile::rockyou().generate(500, 1);
        let b = SiteProfile::rockyou().generate(500, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn different_sites_differ_but_overlap() {
        let a: HashSet<String> = SiteProfile::rockyou()
            .generate(3000, 7)
            .into_iter()
            .collect();
        let b: HashSet<String> = SiteProfile::linkedin()
            .generate(3000, 7)
            .into_iter()
            .collect();
        let inter = a.intersection(&b).count();
        assert!(
            inter > 0,
            "cross-site attack needs overlapping distributions"
        );
        assert!(inter < a.len().min(b.len()), "sites must not be identical");
    }

    #[test]
    fn leaks_contain_realistic_duplicates() {
        let raw = SiteProfile::rockyou().generate(5000, 3);
        let unique: HashSet<&String> = raw.iter().collect();
        let dup_rate = 1.0 - unique.len() as f64 / raw.len() as f64;
        assert!(
            dup_rate > 0.15,
            "leaks are heavy-tailed, got dup rate {dup_rate}"
        );
    }

    #[test]
    fn most_entries_are_clean_ascii_4_to_12() {
        let raw = SiteProfile::myspace().generate(4000, 9);
        let ok = raw
            .iter()
            .filter(|p| {
                (4..=12).contains(&p.chars().count()) && p.chars().all(|c| c.is_ascii_graphic())
            })
            .count();
        assert!(ok as f64 / raw.len() as f64 > 0.70);
    }

    #[test]
    fn leet_substitutions() {
        assert_eq!(leet("estate"), "357473");
        assert_eq!(leet("xyz"), "xyz");
    }

    #[test]
    fn site_roundtrip_and_names() {
        for site in Site::ALL {
            assert_eq!(site.profile().name, site.name());
            assert!(!site.to_string().is_empty());
        }
    }

    #[test]
    fn noise_rate_controls_retention() {
        // phpBB (98.4% paper retention) should retain more than LinkedIn
        // (82.2% paper retention).
        let phpbb = SiteProfile::phpbb().generate(4000, 5);
        let linkedin = SiteProfile::linkedin().generate(4000, 5);
        let keep = |v: &Vec<String>| {
            v.iter()
                .filter(|p| {
                    (4..=12).contains(&p.chars().count()) && p.chars().all(|c| c.is_ascii_graphic())
                })
                .count() as f64
                / v.len() as f64
        };
        assert!(keep(&phpbb) > keep(&linkedin));
    }
}
