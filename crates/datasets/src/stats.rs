use pagpass_patterns::PatternDistribution;
use serde::{Deserialize, Serialize};

/// Summary statistics of a cleaned corpus.
///
/// Reproduces the *format* of the paper's Table II (unique / cleaned /
/// retention) plus the length histogram and pattern distribution used by
/// later experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Site or corpus name.
    pub name: String,
    /// Unique raw entries before cleaning.
    pub unique: usize,
    /// Passwords surviving cleaning.
    pub cleaned: usize,
    /// `cleaned / unique`.
    pub retention_rate: f64,
    /// Count of passwords by character length, indexed 0..=12 (index 0
    /// unused; lengths outside 4..=12 cannot occur after cleaning).
    pub length_histogram: Vec<usize>,
    /// Empirical PCFG pattern distribution of the cleaned corpus.
    pub patterns: PatternDistribution,
}

impl CorpusStats {
    /// Computes statistics for a cleaned corpus.
    ///
    /// `unique` is the pre-cleaning unique count (from
    /// [`CleanReport`](crate::CleanReport)); pass `cleaned.len()` if the
    /// corpus was born clean.
    #[must_use]
    pub fn compute(name: &str, unique: usize, cleaned: &[String]) -> CorpusStats {
        let mut length_histogram = vec![0usize; 13];
        for pw in cleaned {
            let len = pw.chars().count().min(12);
            length_histogram[len] += 1;
        }
        let patterns = PatternDistribution::from_passwords(cleaned.iter().map(String::as_str));
        CorpusStats {
            name: name.to_owned(),
            unique,
            cleaned: cleaned.len(),
            retention_rate: if unique == 0 {
                0.0
            } else {
                cleaned.len() as f64 / unique as f64
            },
            length_histogram,
            patterns,
        }
    }

    /// Probability of each length 4..=12, normalized over the corpus.
    ///
    /// This is the `Pr(L_i)` vector of the paper's length-distance metric
    /// (Eq. 6).
    #[must_use]
    pub fn length_probabilities(&self) -> [f64; 9] {
        let total: usize = self.length_histogram.iter().sum();
        let mut probs = [0.0f64; 9];
        if total == 0 {
            return probs;
        }
        for (i, p) in probs.iter_mut().enumerate() {
            *p = self.length_histogram[i + 4] as f64 / total as f64;
        }
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clean, SiteProfile};

    #[test]
    fn stats_of_a_small_corpus() {
        let corpus = vec![
            "abc123".to_owned(),
            "defg5678".to_owned(),
            "hij!".to_owned(),
        ];
        let stats = CorpusStats::compute("test", 4, &corpus);
        assert_eq!(stats.cleaned, 3);
        assert_eq!(stats.unique, 4);
        assert!((stats.retention_rate - 0.75).abs() < 1e-12);
        assert_eq!(stats.length_histogram[6], 1);
        assert_eq!(stats.length_histogram[8], 1);
        assert_eq!(stats.length_histogram[4], 1);
        assert_eq!(stats.patterns.total(), 3);
    }

    #[test]
    fn length_probabilities_normalize() {
        let corpus: Vec<String> = (0..50).map(|i| format!("pass{i:04}")).collect();
        let stats = CorpusStats::compute("t", 50, &corpus);
        let probs = stats.length_probabilities();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(probs[4], 1.0); // all length 8
    }

    #[test]
    fn empty_corpus() {
        let stats = CorpusStats::compute("empty", 0, &[]);
        assert_eq!(stats.retention_rate, 0.0);
        assert_eq!(stats.length_probabilities().iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn top_patterns_converge_across_sites() {
        // The paper's motivation: top patterns are consistent across
        // datasets. Check our synthetic sites share most of their top-10.
        let top = |p: SiteProfile| -> Vec<String> {
            let cleaned = clean(p.generate(20_000, 21)).retained;
            CorpusStats::compute("x", cleaned.len(), &cleaned)
                .patterns
                .top(10)
                .into_iter()
                .map(|e| e.pattern.to_string())
                .collect()
        };
        let a = top(SiteProfile::rockyou());
        let b = top(SiteProfile::linkedin());
        let shared = a.iter().filter(|p| b.contains(p)).count();
        assert!(
            shared >= 6,
            "top-10 patterns should largely agree, shared {shared}: {a:?} vs {b:?}"
        );
    }
}
