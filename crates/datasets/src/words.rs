//! Word material for the synthetic leak generator.
//!
//! These lists play the role of the "meaningful words" the paper's cited
//! user studies find in real passwords: dictionary words, first names, pet
//! names, fandoms, and keyboard walks. They are deliberately modest in size
//! — a few hundred roots — because real leaks are also dominated by a small
//! head of popular roots; the tail diversity comes from decorations
//! (digits, years, capitalization, leetspeak) applied by the generator.

/// Common English words and password-typical nouns, roughly ordered by how
/// often such roots appear in public leak analyses (rank feeds a Zipf law).
pub const COMMON_WORDS: &[&str] = &[
    "password", "iloveyou", "princess", "sunshine", "football", "monkey", "shadow", "master",
    "superman", "batman", "dragon", "baseball", "soccer", "hockey", "angel", "lovely", "flower",
    "summer", "winter", "spring", "autumn", "purple", "orange", "yellow", "silver", "golden",
    "chocolate", "cookie", "banana", "cherry", "apple", "peach", "happy", "smile", "lucky",
    "star", "moon", "ocean", "river", "tiger", "eagle", "wolf", "bear", "lion", "panda",
    "kitty", "puppy", "bunny", "turtle", "dolphin", "butterfly", "diamond", "crystal", "pearl",
    "heart", "love", "forever", "always", "friend", "family", "mother", "father", "sister",
    "brother", "baby", "honey", "sweet", "candy", "sugar", "spice", "pepper", "ginger",
    "coffee", "pizza", "music", "guitar", "piano", "dance", "dream", "magic", "wizard",
    "knight", "castle", "legend", "hero", "ninja", "pirate", "rocket", "thunder", "lightning",
    "storm", "rainbow", "cloud", "beach", "paradise", "heaven", "spirit", "phoenix", "griffin",
    "unicorn", "pegasus", "jordan", "chelsea", "arsenal", "liverpool", "madrid", "dallas",
    "austin", "boston", "denver", "phoenixaz", "vegas", "london", "paris", "tokyo", "sydney",
    "mexico", "brazil", "canada", "america", "freedom", "victory", "warrior", "hunter",
    "ranger", "sniper", "gamer", "player", "winner", "champion", "student", "teacher",
    "doctor", "nurse", "angelito", "corazon", "amor", "bonita", "hermosa", "mariposa",
    "estrella", "tequiero", "hello", "welcome", "secret", "private", "hidden", "trust",
    "peace", "faith", "hope", "grace", "glory", "power", "money", "rich", "boss", "king",
    "queen", "prince", "duke", "chief", "ghost", "demon", "devil", "zombie", "vampire",
    "monster", "alien", "robot", "matrix", "nemesis", "genesis", "exodus", "trinity",
    "infinity", "eternity", "destiny", "serenity", "harmony", "melody", "whatever", "nothing",
    "something", "anything", "everything", "computer", "internet", "google", "gmail",
    "facebook", "myspace", "linkedin", "yahoo", "rockyou", "samsung", "nokia", "toyota",
    "honda", "ferrari", "porsche", "mustang", "camaro", "corvette", "harley", "yamaha",
];

/// First names (the paper's targeted-attack citations observe that users
/// prefer name-based passwords; trawling corpora show the same head).
pub const NAMES: &[&str] = &[
    "michael", "jessica", "ashley", "amanda", "daniel", "joshua", "andrew", "matthew",
    "anthony", "justin", "jennifer", "melissa", "nicole", "stephanie", "elizabeth", "brandon",
    "samantha", "christian", "alexandra", "brittany", "danielle", "victoria", "natalie",
    "vanessa", "gabriel", "isabella", "sophia", "olivia", "emma", "ava", "mia", "emily",
    "abigail", "madison", "charlotte", "carlos", "miguel", "jose", "juan", "luis", "pedro",
    "maria", "carmen", "rosa", "sofia", "lucia", "diego", "pablo", "javier", "fernando",
    "ricardo", "eduardo", "roberto", "antonio", "francisco", "alejandro", "david", "james",
    "john", "robert", "william", "richard", "thomas", "charles", "chris", "kevin", "brian",
    "jason", "eric", "mark", "steven", "paul", "kenneth", "george", "ryan", "adam", "tyler",
    "aaron", "jacob", "nathan", "zachary", "kyle", "ethan", "noah", "logan", "lucas", "mason",
    "dylan", "caleb", "hannah", "sarah", "rachel", "laura", "megan", "kayla", "anna", "alexis",
    "taylor", "lauren", "kimberly", "crystal", "michelle", "tiffany", "erica", "monica",
    "veronica", "valeria", "andrea", "paola", "daniela", "mariana", "fernanda",
];

/// Keyboard walks and digit habits that show up verbatim in leaks.
pub const KEYBOARD_WALKS: &[&str] = &[
    "qwerty", "qwertyuiop", "asdf", "asdfgh", "asdfghjkl", "zxcvbnm", "qazwsx", "wasd",
    "poiuy", "mnbvcxz", "qweasd", "zaq", "xsw", "qwe", "asd", "zxc",
];

/// Popular pure-digit strings (PINs, repeats, straights).
pub const DIGIT_STRINGS: &[&str] = &[
    "123456", "12345", "123456789", "1234567", "12345678", "1234", "111111", "000000",
    "123123", "654321", "666666", "696969", "112233", "159753", "131313", "777777",
    "555555", "123321", "7777777", "11111111", "87654321", "999999", "222222", "101010",
];

/// Suffix/infix special characters weighted toward the ones users pick.
pub const POPULAR_SPECIALS: &[char] = &[
    '!', '.', '@', '*', '_', '-', '#', '$', '&', '?', '+', '~', '%', '^', '=', '/',
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lists_are_nonempty_and_lowercase_ascii() {
        for list in [COMMON_WORDS, NAMES, KEYBOARD_WALKS] {
            assert!(!list.is_empty());
            for w in list {
                assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
                assert!(!w.is_empty());
            }
        }
        for d in DIGIT_STRINGS {
            assert!(d.chars().all(|c| c.is_ascii_digit()), "{d}");
        }
    }

    #[test]
    fn no_duplicates_within_lists() {
        for list in [COMMON_WORDS, NAMES, KEYBOARD_WALKS, DIGIT_STRINGS] {
            let set: HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len());
        }
    }

    #[test]
    fn specials_are_in_the_32_char_class() {
        for &c in POPULAR_SPECIALS {
            assert_eq!(
                pagpass_patterns::CharClass::of(c),
                Some(pagpass_patterns::CharClass::Special)
            );
        }
    }

    #[test]
    fn head_sizes_support_zipf_sampling() {
        assert!(COMMON_WORDS.len() >= 150);
        assert!(NAMES.len() >= 100);
    }
}
