use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// Outcome of the paper's data-cleaning step (§IV-A1).
///
/// Cleaning keeps passwords of 4–12 characters made solely of printable
/// ASCII excluding space, and removes duplicates. `retained` preserves
/// first-occurrence order so downstream splits are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanReport {
    /// Unique, policy-conforming passwords in first-seen order.
    pub retained: Vec<String>,
    /// Number of raw entries seen.
    pub raw_total: usize,
    /// Number of *unique* raw entries (the paper's "Unique" column).
    pub unique_total: usize,
    /// Unique entries dropped for length (outside 4..=12 chars).
    pub dropped_length: usize,
    /// Unique entries dropped for character set (non-ASCII, space, control).
    pub dropped_charset: usize,
}

impl CleanReport {
    /// The paper's "Retention rate": cleaned / unique.
    #[must_use]
    pub fn retention_rate(&self) -> f64 {
        if self.unique_total == 0 {
            return 0.0;
        }
        self.retained.len() as f64 / self.unique_total as f64
    }
}

/// Applies the paper's cleaning rules to a raw leak.
///
/// * duplicate entries are removed (first occurrence wins),
/// * lengths outside 4–12 characters are dropped,
/// * entries with non-ASCII, invisible, or space characters are dropped.
///
/// # Examples
///
/// ```
/// use pagpass_datasets::clean;
///
/// let report = clean(vec![
///     "abc123".to_owned(),
///     "abc123".to_owned(),      // duplicate
///     "ab".to_owned(),          // too short
///     "caf\u{e9}pass".to_owned(), // non-ASCII
/// ]);
/// assert_eq!(report.retained, vec!["abc123".to_owned()]);
/// assert_eq!(report.unique_total, 3);
/// assert_eq!(report.dropped_length, 1);
/// assert_eq!(report.dropped_charset, 1);
/// ```
#[must_use]
pub fn clean(raw: Vec<String>) -> CleanReport {
    let raw_total = raw.len();
    let mut seen: HashSet<String> = HashSet::with_capacity(raw.len());
    let mut retained = Vec::new();
    let mut dropped_length = 0usize;
    let mut dropped_charset = 0usize;
    for pw in raw {
        if !seen.insert(pw.clone()) {
            continue;
        }
        let len = pw.chars().count();
        if !pw.chars().all(|c| c.is_ascii_graphic()) {
            dropped_charset += 1;
        } else if !(4..=12).contains(&len) {
            dropped_length += 1;
        } else {
            retained.push(pw);
        }
    }
    CleanReport {
        raw_total,
        unique_total: seen.len(),
        retained,
        dropped_length,
        dropped_charset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_4_to_12_printable_ascii() {
        let report = clean(vec![
            "good1234".into(),
            "abc".into(),                                      // 3 chars
            "abcd".into(),                                     // boundary ok
            "abcdefghijkl".into(),                             // 12 ok
            "abcdefghijklm".into(),                            // 13 no
            "with space1".into(),                              // space
            "tab\there".into(),                                // control
            "\u{30d1}\u{30b9}\u{30ef}\u{30fc}\u{30c9}".into(), // non-ASCII
        ]);
        assert_eq!(
            report.retained,
            vec![
                "good1234".to_owned(),
                "abcd".to_owned(),
                "abcdefghijkl".to_owned()
            ]
        );
        assert_eq!(report.dropped_length, 2);
        assert_eq!(report.dropped_charset, 3);
    }

    #[test]
    fn deduplicates_before_counting() {
        let report = clean(vec!["same1234".into(); 10]);
        assert_eq!(report.raw_total, 10);
        assert_eq!(report.unique_total, 1);
        assert_eq!(report.retained.len(), 1);
        assert_eq!(report.retention_rate(), 1.0);
    }

    #[test]
    fn preserves_first_seen_order() {
        let report = clean(vec![
            "bbbb".into(),
            "aaaa".into(),
            "bbbb".into(),
            "cccc".into(),
        ]);
        assert_eq!(report.retained, vec!["bbbb", "aaaa", "cccc"]);
    }

    #[test]
    fn empty_input() {
        let report = clean(vec![]);
        assert_eq!(report.retention_rate(), 0.0);
        assert!(report.retained.is_empty());
    }

    #[test]
    fn synthetic_leak_retention_is_site_appropriate() {
        use crate::SiteProfile;
        // Paper Table II retention: RockYou 92.5%, LinkedIn 82.2%,
        // phpBB 98.4%, MySpace 98.0%, Yahoo! 98.5%. Our profiles should
        // land in the same ordering regime.
        let ret = |p: SiteProfile| clean(p.generate(20_000, 11)).retention_rate();
        let rocky = ret(SiteProfile::rockyou());
        let linked = ret(SiteProfile::linkedin());
        let phpbb = ret(SiteProfile::phpbb());
        assert!(
            linked < rocky,
            "LinkedIn {linked} should retain less than RockYou {rocky}"
        );
        assert!(
            rocky < phpbb,
            "RockYou {rocky} should retain less than phpBB {phpbb}"
        );
        assert!(phpbb > 0.9);
    }
}
