use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Ratios of a train/validation/test split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitRatios {
    /// Fraction of the corpus used for training.
    pub train: f64,
    /// Fraction used for validation.
    pub validation: f64,
    /// Fraction used for testing (the attack target set).
    pub test: f64,
}

impl SplitRatios {
    /// The paper's 7:1:2 split (§IV-A2).
    pub const PAPER: SplitRatios = SplitRatios {
        train: 0.7,
        validation: 0.1,
        test: 0.2,
    };

    /// Validates that the ratios are positive and sum to 1 (±1e-9).
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.train > 0.0
            && self.validation >= 0.0
            && self.test > 0.0
            && (self.train + self.validation + self.test - 1.0).abs() < 1e-9
    }
}

/// A deterministic train/validation/test partition of unique passwords.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Training set (model fitting).
    pub train: Vec<String>,
    /// Validation set (early stopping / tuning).
    pub validation: Vec<String>,
    /// Test set (the passwords the attack tries to hit).
    pub test: Vec<String>,
}

impl Split {
    /// Total number of passwords across the three parts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.train.len() + self.validation.len() + self.test.len()
    }

    /// Whether all three parts are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shuffles `passwords` with `seed` and splits by `ratios`.
///
/// The inputs are expected to be unique (run [`clean`](crate::clean) first);
/// the three parts are then disjoint as sets, which the paper's hit-rate
/// definition relies on ("training sets that do not contain any passwords
/// from the test set").
///
/// # Panics
///
/// Panics if `ratios` is not [valid](SplitRatios::is_valid).
///
/// # Examples
///
/// ```
/// use pagpass_datasets::{split_passwords, SplitRatios};
///
/// let pwds: Vec<String> = (0..100).map(|i| format!("pw{i:04}")).collect();
/// let split = split_passwords(pwds, SplitRatios::PAPER, 42);
/// assert_eq!(split.train.len(), 70);
/// assert_eq!(split.validation.len(), 10);
/// assert_eq!(split.test.len(), 20);
/// ```
#[must_use]
pub fn split_passwords(mut passwords: Vec<String>, ratios: SplitRatios, seed: u64) -> Split {
    assert!(
        ratios.is_valid(),
        "split ratios must be positive and sum to 1"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    passwords.shuffle(&mut rng);
    let n = passwords.len();
    let n_train = (n as f64 * ratios.train).round() as usize;
    let n_val = (n as f64 * ratios.validation).round() as usize;
    let n_train = n_train.min(n);
    let n_val = n_val.min(n - n_train);
    let test = passwords.split_off(n_train + n_val);
    let validation = passwords.split_off(n_train);
    Split {
        train: passwords,
        validation,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn corpus(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("pw{i:05}")).collect()
    }

    #[test]
    fn paper_ratios_are_7_1_2() {
        let split = split_passwords(corpus(1000), SplitRatios::PAPER, 0);
        assert_eq!(split.train.len(), 700);
        assert_eq!(split.validation.len(), 100);
        assert_eq!(split.test.len(), 200);
        assert_eq!(split.len(), 1000);
    }

    #[test]
    fn parts_are_disjoint_and_cover() {
        let split = split_passwords(corpus(503), SplitRatios::PAPER, 9);
        let train: HashSet<_> = split.train.iter().collect();
        let val: HashSet<_> = split.validation.iter().collect();
        let test: HashSet<_> = split.test.iter().collect();
        assert!(train.is_disjoint(&val));
        assert!(train.is_disjoint(&test));
        assert!(val.is_disjoint(&test));
        assert_eq!(train.len() + val.len() + test.len(), 503);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = split_passwords(corpus(100), SplitRatios::PAPER, 5);
        let b = split_passwords(corpus(100), SplitRatios::PAPER, 5);
        let c = split_passwords(corpus(100), SplitRatios::PAPER, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shuffle_actually_shuffles() {
        let split = split_passwords(corpus(100), SplitRatios::PAPER, 5);
        assert_ne!(split.train, corpus(100)[..70].to_vec());
    }

    #[test]
    fn tiny_corpora_do_not_panic() {
        for n in 0..5 {
            let split = split_passwords(corpus(n), SplitRatios::PAPER, 1);
            assert_eq!(split.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "split ratios")]
    fn invalid_ratios_panic() {
        let bad = SplitRatios {
            train: 0.5,
            validation: 0.1,
            test: 0.1,
        };
        let _ = split_passwords(corpus(10), bad, 0);
    }

    #[test]
    fn ratio_validity() {
        assert!(SplitRatios::PAPER.is_valid());
        assert!(!SplitRatios {
            train: 0.0,
            validation: 0.5,
            test: 0.5
        }
        .is_valid());
    }
}
