//! Synthetic password-leak corpora for the PagPassGPT reproduction.
//!
//! The paper evaluates on five real leaked datasets (RockYou, LinkedIn,
//! phpBB, MySpace, Yahoo!). Real breach data cannot be redistributed, so
//! this crate builds *synthetic leaks* that preserve the statistical
//! properties the paper's results rest on:
//!
//! * **heavy-tailed reuse** — password frequencies follow a Zipf-like law,
//!   so popular passwords appear many times before deduplication;
//! * **convergent pattern choice** — most passwords are made of meaningful
//!   word/name roots plus digit and special-character decorations, so the
//!   top PCFG patterns (`L6N2`, `L8`, `N6`, …) dominate across sites, as the
//!   paper observes;
//! * **site-specific flavor** — each site profile perturbs the recipe
//!   mixture (more digits on one site, more leetspeak on another), which is
//!   what makes the cross-site attack test (Table VI) non-trivial.
//!
//! The crate also implements the paper's data-cleaning rules (§IV-A1):
//! keep lengths 4–12, drop non-ASCII and invisible characters, deduplicate —
//! and the 7:1:2 train/validation/test split (§IV-A2).
//!
//! # Examples
//!
//! ```
//! use pagpass_datasets::{SiteProfile, clean, split_passwords, SplitRatios};
//!
//! let raw = SiteProfile::rockyou().generate(1_000, 42);
//! let report = clean(raw);
//! assert!(report.retention_rate() > 0.5);
//! let split = split_passwords(report.retained, SplitRatios::PAPER, 7);
//! assert!(split.train.len() > split.test.len());
//! ```

mod cleaning;
mod splits;
mod stats;
mod synth;
pub mod words;

pub use cleaning::{clean, CleanReport};
pub use splits::{split_passwords, Split, SplitRatios};
pub use stats::CorpusStats;
pub use synth::{Site, SiteProfile};
