//! An order-`k` Markov (n-gram) password guesser in the OMEN tradition —
//! the second classic probability-based family the paper surveys (§II-B2).
//!
//! The model estimates `Pr(cᵢ | cᵢ₋ₖ … cᵢ₋₁)` over the 94-character
//! alphabet plus an end-of-password symbol, with add-`δ` smoothing. It
//! supports:
//!
//! * [`MarkovModel::sample`] — stochastic generation (how the deep
//!   baselines generate),
//! * [`MarkovModel::top_guesses`] — best-first enumeration of the most
//!   probable passwords (how OMEN attacks), via a bounded priority search,
//! * [`MarkovModel::log_probability`] — scoring.
//!
//! # Examples
//!
//! ```
//! use pagpass_markov::MarkovModel;
//!
//! let corpus: Vec<String> = vec!["aaa1".into(), "aab1".into(), "aaa2".into()];
//! let model = MarkovModel::train(corpus.iter().map(String::as_str), 2, 0.01);
//! let top = model.top_guesses(5, 8);
//! assert!(top.contains(&"aab1".to_owned()));
//! assert!(model.log_probability("aaa1") > model.log_probability("zzz9"));
//! ```

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use pagpass_nn::Rng;
use serde::{Deserialize, Serialize};

/// Alphabet: the 94 printable non-space ASCII characters.
const ALPHABET: [char; 94] = {
    let mut chars = ['\0'; 94];
    let mut i = 0;
    let mut c = b'!';
    while c <= b'~' {
        chars[i] = c as char;
        i += 1;
        c += 1;
    }
    chars
};

/// Index of the end-of-password symbol in the per-context count tables.
const END: usize = 94;

/// An order-`k` character Markov model with add-δ smoothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkovModel {
    order: usize,
    delta: f64,
    /// `context string → counts[95]` (94 characters + end symbol).
    counts: HashMap<String, Vec<u32>>,
}

impl MarkovModel {
    /// Trains an order-`order` model with smoothing `delta`.
    ///
    /// Passwords containing characters outside the alphabet are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` or `delta < 0`.
    pub fn train<'a, I>(passwords: I, order: usize, delta: f64) -> MarkovModel
    where
        I: IntoIterator<Item = &'a str>,
    {
        assert!(order > 0, "order must be at least 1");
        assert!(delta >= 0.0, "smoothing must be non-negative");
        let mut counts: HashMap<String, Vec<u32>> = HashMap::new();
        for pw in passwords {
            if !pw.chars().all(|c| char_index(c).is_some()) || pw.is_empty() {
                continue;
            }
            let chars: Vec<char> = pw.chars().collect();
            for i in 0..=chars.len() {
                let start = i.saturating_sub(order);
                let context: String = chars[start..i].iter().collect();
                let symbol = if i == chars.len() {
                    END
                } else {
                    // LINT-ALLOW: no-unwrap-in-lib every char passed the
                    // char_index filter at the top of this loop
                    char_index(chars[i]).expect("validated above")
                };
                counts.entry(context).or_insert_with(|| vec![0; 95])[symbol] += 1;
            }
        }
        MarkovModel {
            order,
            delta,
            counts,
        }
    }

    /// The model order `k`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of contexts with observations.
    #[must_use]
    pub fn context_count(&self) -> usize {
        self.counts.len()
    }

    /// Smoothed `Pr(symbol | context)`; `symbol == None` means
    /// end-of-password.
    fn symbol_prob(&self, context: &str, symbol: Option<char>) -> f64 {
        let idx = match symbol {
            Some(c) => match char_index(c) {
                Some(i) => i,
                None => return 0.0,
            },
            None => END,
        };
        match self.counts.get(context) {
            Some(row) => {
                let total: f64 = row.iter().map(|&c| f64::from(c)).sum();
                (f64::from(row[idx]) + self.delta) / (total + self.delta * 95.0)
            }
            None => 1.0 / 95.0,
        }
    }

    /// Natural-log probability of a whole password (including termination).
    #[must_use]
    pub fn log_probability(&self, password: &str) -> f64 {
        let chars: Vec<char> = password.chars().collect();
        let mut lp = 0.0;
        for i in 0..=chars.len() {
            let start = i.saturating_sub(self.order);
            let context: String = chars[start..i].iter().collect();
            let symbol = if i == chars.len() {
                None
            } else {
                Some(chars[i])
            };
            let p = self.symbol_prob(&context, symbol);
            if p == 0.0 {
                return f64::NEG_INFINITY;
            }
            lp += p.ln();
        }
        lp
    }

    /// Samples one password (length capped at `max_len`).
    #[must_use]
    pub fn sample(&self, max_len: usize, rng: &mut Rng) -> String {
        let mut out = String::new();
        let mut chars: Vec<char> = Vec::new();
        for _ in 0..max_len {
            let start = chars.len().saturating_sub(self.order);
            let context: String = chars[start..].iter().collect();
            let mut acc = 0.0;
            let u = f64::from(rng.uniform());
            let mut chosen = None;
            for (i, &c) in ALPHABET.iter().enumerate() {
                let _ = i;
                acc += self.symbol_prob(&context, Some(c));
                if u < acc {
                    chosen = Some(c);
                    break;
                }
            }
            match chosen {
                Some(c) => {
                    out.push(c);
                    chars.push(c);
                }
                None => break, // remaining mass is the end symbol
            }
        }
        out
    }

    /// Samples `n` passwords.
    #[must_use]
    pub fn sample_many(&self, n: usize, max_len: usize, seed: u64) -> Vec<String> {
        let mut rng = Rng::seed_from(seed);
        (0..n).map(|_| self.sample(max_len, &mut rng)).collect()
    }

    /// Best-first enumeration of the `n` most probable passwords of length
    /// at most `max_len` — the OMEN-style attack order.
    ///
    /// The search expands prefixes in descending probability; completed
    /// passwords (prefix + end symbol) are emitted in globally descending
    /// probability because extending a prefix can only lower it.
    #[must_use]
    pub fn top_guesses(&self, n: usize, max_len: usize) -> Vec<String> {
        #[derive(PartialEq)]
        struct Node {
            lp: f64,
            prefix: String,
            complete: bool,
        }
        impl Eq for Node {}
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Node) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Node {
            fn cmp(&self, other: &Node) -> Ordering {
                self.lp
                    .partial_cmp(&other.lp)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.prefix.cmp(&self.prefix))
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            lp: 0.0,
            prefix: String::new(),
            complete: false,
        });
        let mut out = Vec::with_capacity(n);
        // Bound the frontier so adversarial deltas cannot explode memory.
        let max_frontier = (n * 200).max(10_000);
        while let Some(node) = heap.pop() {
            if node.complete {
                out.push(node.prefix);
                if out.len() == n {
                    break;
                }
                continue;
            }
            let chars: Vec<char> = node.prefix.chars().collect();
            let start = chars.len().saturating_sub(self.order);
            let context: String = chars[start..].iter().collect();
            // Termination child.
            let p_end = self.symbol_prob(&context, None);
            if p_end > 0.0 && !node.prefix.is_empty() {
                heap.push(Node {
                    lp: node.lp + p_end.ln(),
                    prefix: node.prefix.clone(),
                    complete: true,
                });
            }
            if chars.len() < max_len && heap.len() < max_frontier {
                for &c in &ALPHABET {
                    let p = self.symbol_prob(&context, Some(c));
                    if p > 1e-9 {
                        let mut prefix = node.prefix.clone();
                        prefix.push(c);
                        heap.push(Node {
                            lp: node.lp + p.ln(),
                            prefix,
                            complete: false,
                        });
                    }
                }
            }
        }
        out
    }
}

impl MarkovModel {
    /// OMEN-style level-based enumeration (Dürmuth et al., ESSoS 2015).
    ///
    /// Per-transition log-probabilities are discretized into integer
    /// *levels* (`level = ⌊−ln p / level_width⌋`); passwords are emitted in
    /// ascending total level, which approximates descending probability
    /// while enumerating each level with a cheap depth-first walk instead
    /// of a global priority queue.
    ///
    /// Returns up to `n` passwords of length `1..=max_len`; `node_budget`
    /// bounds the total DFS work (OMEN's practical cut-off).
    ///
    /// # Panics
    ///
    /// Panics if `level_width` is not positive.
    #[must_use]
    pub fn omen_guesses(
        &self,
        n: usize,
        max_len: usize,
        level_width: f64,
        node_budget: usize,
    ) -> Vec<String> {
        assert!(level_width > 0.0, "level width must be positive");
        let mut out = Vec::with_capacity(n);
        let mut visited = 0usize;
        // Level of one transition, saturating to keep hopeless branches out.
        let level_of = |p: f64| -> i64 {
            if p <= 0.0 {
                i64::MAX / 4
            } else {
                (-p.ln() / level_width).floor() as i64
            }
        };
        for level in 0..64i64 {
            if out.len() >= n || visited >= node_budget {
                break;
            }
            let mut prefix = String::new();
            self.omen_dfs(
                level,
                &mut prefix,
                max_len,
                &level_of,
                &mut out,
                n,
                &mut visited,
                node_budget,
            );
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn omen_dfs(
        &self,
        budget: i64,
        prefix: &mut String,
        max_len: usize,
        level_of: &dyn Fn(f64) -> i64,
        out: &mut Vec<String>,
        n: usize,
        visited: &mut usize,
        node_budget: usize,
    ) {
        if out.len() >= n || *visited >= node_budget {
            return;
        }
        *visited += 1;
        let chars: Vec<char> = prefix.chars().collect();
        let start = chars.len().saturating_sub(self.order);
        let context: String = chars[start..].iter().collect();
        // Terminate here if the end-symbol level exactly consumes the budget.
        if !prefix.is_empty() {
            let end_level = level_of(self.symbol_prob(&context, None));
            if end_level == budget {
                out.push(prefix.clone());
                if out.len() >= n {
                    return;
                }
            }
        }
        if chars.len() >= max_len {
            return;
        }
        for &c in &ALPHABET {
            let lvl = level_of(self.symbol_prob(&context, Some(c)));
            if lvl <= budget {
                prefix.push(c);
                self.omen_dfs(
                    budget - lvl,
                    prefix,
                    max_len,
                    level_of,
                    out,
                    n,
                    visited,
                    node_budget,
                );
                prefix.pop();
                if out.len() >= n || *visited >= node_budget {
                    return;
                }
            }
        }
    }
}

/// Index of a character in the alphabet (0..94), or `None` if outside.
fn char_index(c: char) -> Option<usize> {
    let b = c as u32;
    if (33..=126).contains(&b) {
        Some((b - 33) as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        let mut v = Vec::new();
        for _ in 0..20 {
            v.push("pass12".to_owned());
        }
        for _ in 0..10 {
            v.push("pots34".to_owned());
        }
        v.push("zq!".to_owned());
        v
    }

    fn model() -> MarkovModel {
        MarkovModel::train(corpus().iter().map(String::as_str), 2, 0.001)
    }

    #[test]
    fn alphabet_is_94_printable_chars() {
        assert_eq!(ALPHABET.len(), 94);
        assert_eq!(ALPHABET[0], '!');
        assert_eq!(ALPHABET[93], '~');
        assert_eq!(char_index('!'), Some(0));
        assert_eq!(char_index('~'), Some(93));
        assert_eq!(char_index(' '), None);
    }

    #[test]
    fn frequent_passwords_score_higher() {
        let m = model();
        assert!(m.log_probability("pass12") > m.log_probability("pots34"));
        assert!(m.log_probability("pots34") > m.log_probability("zzzzzz"));
    }

    #[test]
    fn log_probability_is_finite_under_smoothing() {
        let m = model();
        assert!(m.log_probability("never-seen").is_finite());
        let unsmoothed = MarkovModel::train(corpus().iter().map(String::as_str), 2, 0.0);
        assert_eq!(unsmoothed.log_probability("\u{7f}abc"), f64::NEG_INFINITY);
    }

    #[test]
    fn sampling_reproduces_training_style() {
        let m = model();
        let samples = m.sample_many(200, 12, 5);
        assert_eq!(samples.len(), 200);
        let hits = samples.iter().filter(|s| corpus().contains(s)).count();
        assert!(
            hits > 50,
            "a 2-gram model should often regenerate the head, got {hits}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = model();
        assert_eq!(m.sample_many(20, 12, 9), m.sample_many(20, 12, 9));
        assert_ne!(m.sample_many(20, 12, 9), m.sample_many(20, 12, 10));
    }

    #[test]
    fn top_guesses_are_descending_and_unique() {
        let m = model();
        let top = m.top_guesses(20, 8);
        assert!(!top.is_empty());
        let lps: Vec<f64> = top.iter().map(|g| m.log_probability(g)).collect();
        assert!(lps.windows(2).all(|w| w[0] >= w[1] - 1e-9), "{top:?}");
        let unique: std::collections::HashSet<&String> = top.iter().collect();
        assert_eq!(unique.len(), top.len());
        assert_eq!(top[0], "pass12");
    }

    #[test]
    fn order_and_context_accessors() {
        let m = model();
        assert_eq!(m.order(), 2);
        assert!(m.context_count() > 5);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn zero_order_panics() {
        let _ = MarkovModel::train(std::iter::empty(), 0, 0.1);
    }

    #[test]
    fn omen_enumeration_finds_the_head_first() {
        let m = model();
        let guesses = m.omen_guesses(50, 8, 1.0, 500_000);
        assert!(!guesses.is_empty());
        let pos = guesses.iter().position(|g| g == "pass12");
        assert!(
            pos.is_some(),
            "the dominant password must be enumerated: {guesses:?}"
        );
        // Level order approximates probability order: the dominant password
        // appears in the first level batch.
        assert!(pos.unwrap() < 5, "pass12 appeared at rank {pos:?}");
        // No duplicates within the enumeration.
        let unique: std::collections::HashSet<&String> = guesses.iter().collect();
        assert_eq!(unique.len(), guesses.len());
    }

    #[test]
    fn omen_respects_budget_and_length() {
        let m = model();
        let short = m.omen_guesses(10, 4, 1.0, 100_000);
        assert!(short.iter().all(|g| g.chars().count() <= 4));
        assert!(short.len() <= 10);
        // A tiny node budget still terminates cleanly.
        let _ = m.omen_guesses(1_000_000, 8, 1.0, 100);
    }

    #[test]
    #[should_panic(expected = "level width")]
    fn omen_zero_width_panics() {
        let _ = model().omen_guesses(5, 8, 0.0, 100);
    }
}
