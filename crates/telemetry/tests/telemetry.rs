//! Integration tests: concurrent metric updates are lossless, JSONL
//! records round-trip through the bundled parser, and the reporter thread
//! shuts down cleanly (and promptly) on drop.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pagpass_telemetry::{parse_json, JsonValue, LogFormat, Reporter, Telemetry, DEPTH_BOUNDS};

/// A writer appending into a shared buffer, for capturing sink output.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn take_string(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

#[test]
fn concurrent_updates_are_lossless() {
    const WORKERS: usize = 8;
    const PER_WORKER: u64 = 10_000;
    let tel = Telemetry::new(LogFormat::Text, true);
    let counter = tel.counter("t.count");
    let hist = tel.registry().histogram("t.depth", DEPTH_BOUNDS);
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let counter = counter.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_WORKER {
                    counter.inc();
                    // Mix of buckets, deterministic per worker.
                    hist.record(((w as u64 * 7 + i) % 100) as f64);
                }
            });
        }
    });
    let snap = tel.snapshot();
    let total = WORKERS as u64 * PER_WORKER;
    assert_eq!(snap.counters["t.count"], total);
    let h = &snap.histograms["t.depth"];
    assert_eq!(h.count, total, "no histogram sample may be dropped");
    assert_eq!(
        h.buckets.iter().sum::<u64>(),
        total,
        "bucket totals must equal the sample count"
    );
    assert_eq!(h.min, Some(0.0));
    assert_eq!(h.max, Some(99.0));
    // Sum is exact: every recorded value is a small integer.
    let expect_sum: f64 = (0..WORKERS as u64)
        .flat_map(|w| (0..PER_WORKER).map(move |i| ((w * 7 + i) % 100) as f64))
        .sum();
    assert!((h.sum - expect_sum).abs() < 1e-6);
}

#[test]
fn concurrent_handle_creation_is_safe() {
    let tel = Telemetry::new(LogFormat::Text, true);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let tel = &tel;
            scope.spawn(move || {
                for i in 0..100 {
                    tel.counter(&format!("create.{i}")).inc();
                }
            });
        }
    });
    let snap = tel.snapshot();
    for i in 0..100 {
        assert_eq!(snap.counters[&format!("create.{i}")], 8);
    }
}

#[test]
fn jsonl_records_roundtrip_through_the_parser() {
    let buf = SharedBuf::default();
    let tel = Telemetry::to_writer(LogFormat::Json, Box::new(buf.clone()));
    tel.event(
        "progress",
        "train.step",
        &[
            ("step", 41u64.into()),
            ("loss", 2.375f64.into()),
            ("note", "quoted \"text\"\nwith newline".into()),
            ("healthy", true.into()),
        ],
    );
    drop(tel.span("phase.load"));
    let output = buf.take_string();
    let lines: Vec<&str> = output.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        let v = parse_json(line).expect("every record is one valid JSON line");
        for key in ["ts_ms", "kind", "name", "fields"] {
            assert!(v.get(key).is_some(), "schema key {key} missing in {line}");
        }
    }
    let first = parse_json(lines[0]).unwrap();
    let fields = first.get("fields").unwrap();
    assert_eq!(fields.get("step").unwrap().as_f64(), Some(41.0));
    assert_eq!(fields.get("loss").unwrap().as_f64(), Some(2.375));
    assert_eq!(
        fields.get("note").unwrap().as_str(),
        Some("quoted \"text\"\nwith newline")
    );
    assert_eq!(fields.get("healthy").unwrap(), &JsonValue::Bool(true));
    let span = parse_json(lines[1]).unwrap();
    assert_eq!(span.get("kind").unwrap().as_str(), Some("span"));
    assert!(
        span.get("fields")
            .unwrap()
            .get("ms")
            .unwrap()
            .as_f64()
            .unwrap()
            >= 0.0
    );
}

#[test]
fn reporter_shuts_down_cleanly_on_drop() {
    let buf = SharedBuf::default();
    let tel = Arc::new(Telemetry::to_writer(LogFormat::Json, Box::new(buf.clone())));
    tel.counter("work.done").add(5);
    // A one-hour interval: the only way this test finishes quickly is if
    // drop actually wakes and joins the thread instead of sleeping it out.
    let reporter = Reporter::start(Arc::clone(&tel), Duration::from_secs(3600));
    tel.counter("work.done").add(5);
    let started = Instant::now();
    drop(reporter);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drop must interrupt the interval wait"
    );
    // The final report fired and carries the counter total.
    let output = buf.take_string();
    let report = output
        .lines()
        .find(|l| l.contains("telemetry.report"))
        .expect("a final report is emitted on shutdown");
    let v = parse_json(report).unwrap();
    assert_eq!(v.get("kind").unwrap().as_str(), Some("report"));
    assert_eq!(
        v.get("fields").unwrap().get("work.done").unwrap().as_f64(),
        Some(10.0)
    );
}

#[test]
fn reporter_emits_periodic_reports_with_rates() {
    let buf = SharedBuf::default();
    let tel = Arc::new(Telemetry::to_writer(LogFormat::Json, Box::new(buf.clone())));
    let counter = tel.counter("fast.events");
    let reporter = Reporter::start(Arc::clone(&tel), Duration::from_millis(30));
    let until = Instant::now() + Duration::from_millis(150);
    while Instant::now() < until {
        counter.add(10);
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(reporter);
    let output = buf.take_string();
    let reports: Vec<&str> = output
        .lines()
        .filter(|l| l.contains("telemetry.report"))
        .collect();
    assert!(reports.len() >= 2, "expected multiple ticks, got {output}");
    // At least one report saw the counter moving and derived a rate.
    assert!(
        reports.iter().any(|l| {
            parse_json(l)
                .ok()
                .and_then(|v| v.get("fields")?.get("fast.events/s")?.as_f64())
                .is_some_and(|rate| rate > 0.0)
        }),
        "no report derived a positive rate: {output}"
    );
}

#[test]
fn snapshot_json_is_parseable_and_complete() {
    let tel = Telemetry::new(LogFormat::Text, true);
    tel.counter("s.count").add(3);
    tel.gauge("s.gauge").set(-1.5);
    tel.histogram_ms("s.lat").record(2.0);
    let json = tel.snapshot().to_json();
    let v = parse_json(&json).unwrap();
    assert_eq!(
        v.get("counters").unwrap().get("s.count").unwrap().as_f64(),
        Some(3.0)
    );
    assert_eq!(
        v.get("gauges").unwrap().get("s.gauge").unwrap().as_f64(),
        Some(-1.5)
    );
    let hist = v.get("histograms").unwrap().get("s.lat").unwrap();
    assert_eq!(hist.get("count").unwrap().as_f64(), Some(1.0));
    assert_eq!(hist.get("sum").unwrap().as_f64(), Some(2.0));
}
