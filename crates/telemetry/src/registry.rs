//! Lock-sharded metrics registry: named atomic counters, gauges, and
//! fixed-bucket histograms, snapshotable at any time.
//!
//! Hot paths hold a cheap [`Counter`] / [`Gauge`] / [`Histogram`] handle
//! (an `Arc` over atomics) obtained once by name; updating a handle never
//! touches a lock. The registry's name → metric map is only consulted on
//! handle creation and on [`MetricsRegistry::snapshot`], and is sharded so
//! concurrent handle creation from many workers does not serialize.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{write_json_f64, write_json_str};

/// Number of independently locked name → metric shards.
const SHARD_COUNT: usize = 16;

/// Milliseconds since the UNIX epoch (0 if the clock is before 1970).
#[must_use]
pub fn wall_clock_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// A monotonically increasing event count (passwords emitted, retries, …).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        // ORD: a pure event count orders nothing else; readers only need
        // eventual visibility, so Relaxed is sufficient.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        // ORD: snapshot readers tolerate slightly stale counts; Relaxed
        // still guarantees a value some thread actually wrote.
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (queue depth, learning rate, last loss, …),
/// stored as `f64` bits in one atomic word.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        // ORD: the gauge is a single word overwritten whole; last-writer-wins
        // with no cross-variable ordering, so Relaxed suffices.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        // ORD: reads pair with the Relaxed store above; staleness is
        // acceptable for a point-in-time display value.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram over `f64` samples, with lock-free recording.
///
/// Bucket `i` counts samples `<= bounds[i]`; one overflow bucket counts the
/// rest. `sum`/`min`/`max` are maintained with CAS loops so means and
/// extremes survive into snapshots exactly.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> HistogramCore {
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// Latency bucket bounds in milliseconds (sub-millisecond through minutes).
pub const LATENCY_MS_BOUNDS: &[f64] = &[
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    5000.0, 10000.0, 30000.0, 60000.0,
];

/// Size bucket bounds (queue depths, batch sizes): powers of two to 64 Ki.
pub const DEPTH_BOUNDS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0, 16384.0, 65536.0,
];

impl Histogram {
    /// Records one sample. Non-finite samples are ignored (they carry no
    /// information a bucket can hold and would poison `sum`).
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let c = &*self.0;
        let idx = c.bounds.partition_point(|b| v > *b);
        // ORD: each histogram field is updated independently; snapshots
        // tolerate fields that are mutually out of sync by a few samples,
        // so none of these RMWs needs to order the others.
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed); // ORD: as above
        let _ = c
            .sum_bits
            // ORD: CAS loop re-reads on failure, so Relaxed loses nothing.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = c
            .min_bits
            // ORD: same CAS-loop argument as sum_bits.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then(|| v.to_bits())
            });
        let _ = c
            .max_bits
            // ORD: same CAS-loop argument as sum_bits.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        // ORD: monitoring read; a slightly stale count is fine.
        self.0.count.load(Ordering::Relaxed)
    }
}

/// One named metric as stored in a shard.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: a sharded map from metric name to metric.
///
/// # Examples
///
/// ```
/// use pagpass_telemetry::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let emitted = reg.counter("gen.passwords");
/// emitted.add(42);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters["gen.passwords"], 42);
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<RwLock<HashMap<String, Metric>>>,
    hasher: RandomState,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..SHARD_COUNT).map(|_| RwLock::default()).collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Metric>> {
        let mut h = self.hasher.build_hasher();
        h.write(name.as_bytes());
        &self.shards[(h.finish() as usize) % SHARD_COUNT]
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let shard = self.shard(name);
        // LINT-ALLOW: no-unwrap-in-lib a poisoned shard means a metric
        // constructor panicked; propagating that panic is the only sane
        // recovery, so `.expect` is the intended behaviour here.
        if let Some(m) = shard.read().expect("registry shard poisoned").get(name) {
            return m.clone();
        }
        // LINT-ALLOW: no-unwrap-in-lib same poisoning argument as above.
        let mut map = shard.write().expect("registry shard poisoned");
        map.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// a programming error, caught loudly.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || {
            Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge named `name`, created on first use (initially 0).
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind collision, as [`counter`](Self::counter).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || {
            Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        }) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram named `name`, created on first use with the given
    /// bucket bounds (ignored if the histogram already exists).
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind collision, as [`counter`](Self::counter).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        match self.get_or_insert(name, || {
            Metric::Histogram(Histogram(Arc::new(HistogramCore::new(bounds))))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A consistent-enough point-in-time copy of every metric. Counters and
    /// histograms may be mid-update; each individual value is atomic.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            ts_ms: wall_clock_ms(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        for shard in &self.shards {
            // LINT-ALLOW: no-unwrap-in-lib poisoning is propagated on purpose
            // (see get_or_insert).
            for (name, metric) in shard.read().expect("registry shard poisoned").iter() {
                match metric {
                    Metric::Counter(c) => {
                        snap.counters.insert(name.clone(), c.get());
                    }
                    Metric::Gauge(g) => {
                        snap.gauges.insert(name.clone(), g.get());
                    }
                    Metric::Histogram(h) => {
                        let core = &*h.0;
                        // ORD: snapshots are explicitly "consistent enough";
                        // per-field Relaxed loads match the Relaxed writers
                        // in Histogram::record.
                        let count = core.count.load(Ordering::Relaxed);
                        let min = f64::from_bits(core.min_bits.load(Ordering::Relaxed)); // ORD: as above
                        let max = f64::from_bits(core.max_bits.load(Ordering::Relaxed)); // ORD: as above
                        snap.histograms.insert(
                            name.clone(),
                            HistogramSnapshot {
                                bounds: core.bounds.clone(),
                                buckets: core
                                    .buckets
                                    .iter()
                                    // ORD: same snapshot-consistency argument.
                                    .map(|b| b.load(Ordering::Relaxed))
                                    .collect(),
                                count,
                                // ORD: same snapshot-consistency argument.
                                sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                                min: (count > 0).then_some(min),
                                max: (count > 0).then_some(max),
                            },
                        );
                    }
                }
            }
        }
        snap
    }
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; the final entry is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample, when any were recorded.
    pub min: Option<f64>,
    /// Largest sample, when any were recorded.
    pub max: Option<f64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 with no samples).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated value at quantile `q` (clamped to `0..=1`), or `None`
    /// with no samples.
    ///
    /// The estimate interpolates linearly inside the bucket holding the
    /// `q·count`-th sample, Prometheus `histogram_quantile` style: the
    /// first bucket's lower edge is the observed minimum, the overflow
    /// bucket cannot be interpolated and reports the observed maximum.
    /// Results are clamped to `[min, max]`, so a quantile never leaves
    /// the range of values actually recorded.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        // Rank against the bucket total, not `count`: under a torn
        // snapshot `count` can race ahead of the bucket increments, and an
        // empty-bucket histogram must return `None` deterministically
        // instead of falling through the scan below.
        let bucket_total: u64 = self.buckets.iter().sum();
        if self.count == 0 || bucket_total == 0 {
            return None;
        }
        let (min, max) = (self.min?, self.max?);
        let q = q.clamp(0.0, 1.0);
        let rank = q * bucket_total as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = seen + n;
            if next as f64 >= rank {
                if i == self.bounds.len() {
                    // Overflow bucket: no upper edge to interpolate toward.
                    return Some(max);
                }
                let lo = if i == 0 { min } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = (rank - seen as f64) / n as f64;
                return Some((lo + (hi - lo) * frac).clamp(min, max));
            }
            seen = next;
        }
        // Float-edge safety only: rank <= bucket_total guarantees the scan
        // returned above for any exactly-representable arithmetic.
        Some(max)
    }
}

/// Frozen state of a whole registry, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Wall-clock capture time, milliseconds since the UNIX epoch.
    pub ts_ms: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a pretty-stable JSON document
    /// (`{"ts_ms", "counters", "gauges", "histograms"}`, names sorted).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let _ = write!(out, "{{\n  \"ts_ms\": {},\n  \"counters\": {{", self.ts_ms);
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_str(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_str(&mut out, name);
            out.push_str(": ");
            write_json_f64(&mut out, *v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_str(&mut out, name);
            let _ = write!(out, ": {{\"count\": {}, \"sum\": ", h.count);
            write_json_f64(&mut out, h.sum);
            out.push_str(", \"mean\": ");
            write_json_f64(&mut out, h.mean());
            out.push_str(", \"min\": ");
            write_json_f64(&mut out, h.min.unwrap_or(f64::NAN));
            out.push_str(", \"max\": ");
            write_json_f64(&mut out, h.max.unwrap_or(f64::NAN));
            out.push_str(", \"bounds\": [");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_json_f64(&mut out, *b);
            }
            out.push_str("], \"buckets\": [");
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_collisions_panic() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("x");
        let _g = reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0] {
            h.record(v);
        }
        h.record(f64::NAN); // ignored
        let snap = reg.snapshot();
        let hs = &snap.histograms["lat"];
        assert_eq!(hs.buckets, vec![2, 1, 1]);
        assert_eq!(hs.count, 4);
        assert_eq!(hs.min, Some(0.5));
        assert_eq!(hs.max, Some(100.0));
        assert!((hs.sum - 106.4).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q", &[10.0, 20.0, 40.0]);
        // 8 samples in (min=2)..10, 1 in 10..20, 1 in 20..40.
        for v in [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 15.0, 35.0] {
            h.record(v);
        }
        let hs = &reg.snapshot().histograms["q"];
        // p50 → rank 5 of 8 samples in bucket [2, 10]: 2 + 8·(5/8) = 7.
        assert_eq!(hs.quantile(0.5), Some(7.0));
        // p90 → rank 9, last sample of the second bucket: its bound.
        assert_eq!(hs.quantile(0.9), Some(20.0));
        // Extremes pin to observed min/max.
        assert_eq!(hs.quantile(0.0), Some(2.0));
        assert_eq!(hs.quantile(1.0), Some(35.0));
        // Monotonic in q.
        let qs: Vec<f64> = (0..=10)
            .map(|i| hs.quantile(f64::from(i) / 10.0).unwrap())
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn quantile_edge_cases() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("edge", &[1.0]);
        assert_eq!(reg.snapshot().histograms["edge"].quantile(0.5), None);
        // A single overflow sample: every quantile is that sample.
        h.record(50.0);
        let hs = &reg.snapshot().histograms["edge"];
        assert_eq!(hs.quantile(0.5), Some(50.0));
        assert_eq!(hs.quantile(0.99), Some(50.0));
        // Out-of-range q clamps instead of panicking.
        assert_eq!(hs.quantile(7.0), Some(50.0));
        assert_eq!(hs.quantile(-1.0), Some(50.0));
    }

    #[test]
    fn quantile_on_empty_histogram_is_none_at_every_q() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("empty", &[1.0, 10.0]);
        let hs = &reg.snapshot().histograms["empty"];
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(hs.quantile(q), None, "q={q}");
        }
        // A torn snapshot where `count` raced ahead of the bucket
        // increments must also refuse, not fall through the bucket scan.
        let torn = HistogramSnapshot {
            count: 3,
            ..hs.clone()
        };
        assert_eq!(torn.quantile(0.5), None);
    }

    #[test]
    fn quantile_single_bucket_interpolates_between_min_and_bound() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("single", &[10.0]);
        for v in [2.0, 4.0, 6.0, 8.0] {
            h.record(v);
        }
        let hs = &reg.snapshot().histograms["single"];
        // All 4 samples in [min=2, 10]: p50 → rank 2, 2 + 8·(2/4) = 6.
        assert_eq!(hs.quantile(0.5), Some(6.0));
        assert_eq!(hs.quantile(0.0), Some(2.0));
        assert_eq!(hs.quantile(1.0), Some(8.0));
    }

    #[test]
    fn quantile_all_samples_in_overflow_reports_max() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("over", &[1.0]);
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        let hs = &reg.snapshot().histograms["over"];
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(hs.quantile(q), Some(30.0), "q={q}");
        }
    }

    #[test]
    fn snapshot_json_parses() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(7);
        reg.gauge("b.depth").set(3.5);
        reg.histogram("c.ms", LATENCY_MS_BOUNDS).record(12.0);
        let json = reg.snapshot().to_json();
        let v = parse_json(&json).expect("snapshot is valid JSON");
        assert_eq!(
            v.get("counters").unwrap().get("a.count").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("b.depth").unwrap().as_f64(),
            Some(3.5)
        );
        assert_eq!(
            v.get("histograms")
                .unwrap()
                .get("c.ms")
                .unwrap()
                .get("count")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }
}
