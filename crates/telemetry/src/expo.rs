//! Prometheus text exposition over a [`MetricsSnapshot`].
//!
//! Renders the registry's counters, gauges, and histograms in the
//! Prometheus text format (version 0.0.4): dotted metric names are
//! sanitized to `[a-zA-Z0-9_:]`, counters gain the conventional `_total`
//! suffix, and histogram buckets are emitted *cumulatively* with a final
//! `+Inf` bucket equal to `_count` — the invariants Prometheus scrapers
//! (and the in-repo `tools/promcheck.py` checker) verify line by line.

use std::fmt::Write as _;

use crate::registry::{HistogramSnapshot, MetricsSnapshot};

/// Maps a dotted metric name to a valid Prometheus metric name: characters
/// outside `[a-zA-Z0-9_:]` become `_`, and a leading digit is prefixed.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Writes one f64 the way Prometheus expects samples (shortest round-trip;
/// non-finite values render as `NaN`/`+Inf`/`-Inf`).
fn write_sample_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    // Cumulative buckets: the registry stores per-bucket counts, the
    // exposition wants "samples <= bound". The `+Inf` bucket and `_count`
    // both carry the bucket total, so the series is self-consistent even
    // if `h.count` raced ahead of the bucket increments mid-snapshot.
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        cumulative += n;
        let _ = write!(out, "{name}_bucket{{le=\"");
        match h.bounds.get(i) {
            Some(bound) => write_sample_f64(out, *bound),
            None => out.push_str("+Inf"),
        }
        let _ = writeln!(out, "\"}} {cumulative}");
    }
    let _ = write!(out, "{name}_sum ");
    write_sample_f64(out, h.sum);
    out.push('\n');
    let _ = writeln!(out, "{name}_count {cumulative}");
}

/// Renders the whole snapshot as Prometheus text exposition (one `# HELP`
/// line carrying the original dotted name, one `# TYPE` line, then the
/// samples, per metric; metrics in sorted-name order).
///
/// # Examples
///
/// ```
/// use pagpass_telemetry::{render_prometheus, MetricsRegistry};
///
/// let reg = MetricsRegistry::new();
/// reg.counter("serve.admitted").add(3);
/// let text = render_prometheus(&reg.snapshot());
/// assert!(text.contains("# TYPE serve_admitted_total counter"));
/// assert!(text.contains("serve_admitted_total 3"));
/// ```
#[must_use]
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    for (name, value) in &snap.counters {
        let pname = format!("{}_total", prometheus_name(name));
        let _ = writeln!(out, "# HELP {pname} {name}");
        let _ = writeln!(out, "# TYPE {pname} counter");
        let _ = writeln!(out, "{pname} {value}");
    }
    for (name, value) in &snap.gauges {
        let pname = prometheus_name(name);
        let _ = writeln!(out, "# HELP {pname} {name}");
        let _ = writeln!(out, "# TYPE {pname} gauge");
        let _ = write!(out, "{pname} ");
        write_sample_f64(&mut out, *value);
        out.push('\n');
    }
    for (name, h) in &snap.histograms {
        let pname = prometheus_name(name);
        let _ = writeln!(out, "# HELP {pname} {name}");
        let _ = writeln!(out, "# TYPE {pname} histogram");
        render_histogram(&mut out, &pname, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(prometheus_name("serve.latency.ms"), "serve_latency_ms");
        assert_eq!(prometheus_name("a-b c.d"), "a_b_c_d");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn counters_and_gauges_render() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.admitted").add(5);
        reg.gauge("serve.queue_depth").set(2.5);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE serve_admitted_total counter"));
        assert!(text.contains("\nserve_admitted_total 5\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("\nserve_queue_depth 2.5\n"));
        // HELP lines carry the original dotted name for traceability.
        assert!(text.contains("# HELP serve_admitted_total serve.admitted"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_consistent_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat.ms", &[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 100.0, 200.0] {
            h.record(v);
        }
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE lat_ms histogram"));
        assert!(text.contains("lat_ms_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_ms_bucket{le=\"10\"} 3\n"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("lat_ms_count 5\n"));
        assert!(text.contains("lat_ms_sum 306.2\n"));
    }

    #[test]
    fn every_line_is_comment_or_sample() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").inc();
        reg.gauge("c.d").set(-1.5);
        reg.histogram("e.f", &[2.0]).record(3.0);
        for line in render_prometheus(&reg.snapshot()).lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "{line}"
                );
                continue;
            }
            // Sample lines: `name[{labels}] value` with a parseable value.
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty(), "{line}");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "{line}"
            );
        }
    }

    #[test]
    fn empty_histogram_renders_zero_series() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("empty.ms", &[1.0]);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("empty_ms_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("empty_ms_count 0\n"));
        assert!(text.contains("empty_ms_sum 0\n"));
    }
}
