//! Periodic progress reporter: a background thread that samples the
//! metrics registry at a fixed interval and emits one `report` record per
//! tick with current totals, gauge values, and derived per-second rates
//! for every counter that moved.
//!
//! Shutdown is synchronous and prompt: dropping the [`Reporter`] wakes the
//! thread (condvar, not a sleep) and joins it, emitting one final report
//! so short runs still produce at least one sample.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::registry::MetricsSnapshot;
use crate::trace::Field;
use crate::Telemetry;

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Handle to the reporter thread; dropping it stops the thread cleanly.
pub struct Reporter {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Reporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reporter").finish_non_exhaustive()
    }
}

impl Reporter {
    /// Starts a reporter sampling `tel`'s registry every `interval`.
    #[must_use]
    pub fn start(tel: Arc<Telemetry>, interval: Duration) -> Reporter {
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("telemetry-reporter".into())
            .spawn(move || run(&tel, &thread_shared, interval))
            // LINT-ALLOW: no-unwrap-in-lib spawn fails only on resource
            // exhaustion; there is no useful degraded mode for a reporter.
            .expect("spawn reporter thread");
        Reporter {
            shared,
            handle: Some(handle),
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        // LINT-ALLOW: no-unwrap-in-lib the stop flag's critical sections
        // cannot panic, so poisoning here is unreachable.
        *self.shared.stop.lock().expect("reporter lock poisoned") = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn run(tel: &Telemetry, shared: &Shared, interval: Duration) {
    let mut prev = tel.snapshot();
    let mut prev_at = Instant::now();
    loop {
        let stopping = {
            // LINT-ALLOW: lock-scope the guard rides through the condvar
            // wait on purpose — that is the condvar protocol.
            // LINT-ALLOW: no-unwrap-in-lib poisoning unreachable, as in Drop.
            let guard = shared.stop.lock().expect("reporter lock poisoned");
            let (guard, _timeout) = shared
                .wake
                .wait_timeout_while(guard, interval, |stop| !*stop)
                // LINT-ALLOW: no-unwrap-in-lib same poisoning argument.
                .expect("reporter lock poisoned");
            *guard
        };
        let now = Instant::now();
        let snap = tel.snapshot();
        emit_report(tel, &prev, &snap, (now - prev_at).as_secs_f64());
        prev = snap;
        prev_at = now;
        if stopping {
            return;
        }
    }
}

/// One `report` record: counter totals (with `/s` rates for counters that
/// moved this tick), gauges, and histogram means.
fn emit_report(tel: &Telemetry, prev: &MetricsSnapshot, snap: &MetricsSnapshot, dt_secs: f64) {
    let mut fields: Vec<(String, Field)> = Vec::new();
    for (name, &value) in &snap.counters {
        fields.push((name.clone(), Field::U64(value)));
        let before = prev.counters.get(name).copied().unwrap_or(0);
        let delta = value.saturating_sub(before);
        if delta > 0 && dt_secs > 0.0 {
            fields.push((format!("{name}/s"), Field::F64(delta as f64 / dt_secs)));
        }
    }
    for (name, &value) in &snap.gauges {
        fields.push((name.clone(), Field::F64(value)));
    }
    for (name, hist) in &snap.histograms {
        if hist.count > 0 {
            fields.push((format!("{name}.mean"), Field::F64(hist.mean())));
        }
    }
    let borrowed: Vec<(&str, Field)> = fields
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    tel.sink().emit("report", "telemetry.report", &borrowed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogFormat;

    #[test]
    fn final_report_includes_rates() {
        let tel = Arc::new(Telemetry::new(LogFormat::Text, true));
        tel.counter("r.count").add(10);
        let prev = tel.snapshot();
        tel.counter("r.count").add(40);
        tel.gauge("r.depth").set(2.0);
        let snap = tel.snapshot();
        // Smoke: emit_report must not panic and must handle new metrics
        // appearing between snapshots.
        emit_report(&tel, &prev, &snap, 2.0);
    }
}
