//! Periodic progress reporter: a background thread that samples the
//! metrics registry at a fixed interval and emits one `report` record per
//! tick with current totals, gauge values, and derived per-second rates
//! for every counter that moved.
//!
//! Shutdown is synchronous and prompt: dropping the [`Reporter`] wakes the
//! thread (condvar, not a sleep) and joins it, emitting one final report
//! so short runs still produce at least one sample.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::registry::MetricsSnapshot;
use crate::trace::Field;
use crate::Telemetry;

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Handle to the reporter thread; dropping it stops the thread cleanly.
pub struct Reporter {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Reporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reporter").finish_non_exhaustive()
    }
}

impl Reporter {
    /// Starts a reporter sampling `tel`'s registry every `interval`.
    #[must_use]
    pub fn start(tel: Arc<Telemetry>, interval: Duration) -> Reporter {
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("telemetry-reporter".into())
            .spawn(move || run(&tel, &thread_shared, interval))
            // LINT-ALLOW: no-unwrap-in-lib spawn fails only on resource
            // exhaustion; there is no useful degraded mode for a reporter.
            .expect("spawn reporter thread");
        Reporter {
            shared,
            handle: Some(handle),
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        // LINT-ALLOW: no-unwrap-in-lib the stop flag's critical sections
        // cannot panic, so poisoning here is unreachable.
        *self.shared.stop.lock().expect("reporter lock poisoned") = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn run(tel: &Telemetry, shared: &Shared, interval: Duration) {
    let mut prev = tel.snapshot();
    let mut prev_at = Instant::now();
    loop {
        let stopping = {
            // LINT-ALLOW: no-unwrap-in-lib poisoning unreachable, as in Drop.
            let guard = shared.stop.lock().expect("reporter lock poisoned");
            let (guard, _timeout) = shared
                .wake
                .wait_timeout_while(guard, interval, |stop| !*stop)
                // LINT-ALLOW: no-unwrap-in-lib same poisoning argument.
                .expect("reporter lock poisoned");
            *guard
        };
        let now = Instant::now();
        let snap = tel.snapshot();
        emit_report(tel, &prev, &snap, (now - prev_at).as_secs_f64());
        prev = snap;
        prev_at = now;
        if stopping {
            return;
        }
    }
}

/// A per-second rate for one tick, or `None` when no rate can be derived:
/// nothing moved, the wall-clock delta is zero or negative (clock-equal
/// ticks, the first tick firing instantly), or the division itself would
/// not be finite. Guarantees the JSONL stream never carries `inf`/`NaN`.
fn rate(delta: u64, dt_secs: f64) -> Option<f64> {
    if delta == 0 || !dt_secs.is_finite() || dt_secs <= 0.0 {
        return None;
    }
    let r = delta as f64 / dt_secs;
    r.is_finite().then_some(r)
}

/// One `report` record: counter totals (with `/s` rates for counters that
/// moved this tick), gauges, and histogram means.
fn emit_report(tel: &Telemetry, prev: &MetricsSnapshot, snap: &MetricsSnapshot, dt_secs: f64) {
    let mut fields: Vec<(String, Field)> = Vec::new();
    for (name, &value) in &snap.counters {
        fields.push((name.clone(), Field::U64(value)));
        let before = prev.counters.get(name).copied().unwrap_or(0);
        if let Some(r) = rate(value.saturating_sub(before), dt_secs) {
            fields.push((format!("{name}/s"), Field::F64(r)));
        }
    }
    for (name, &value) in &snap.gauges {
        fields.push((name.clone(), Field::F64(value)));
    }
    for (name, hist) in &snap.histograms {
        if hist.count > 0 {
            fields.push((format!("{name}.mean"), Field::F64(hist.mean())));
        }
    }
    let borrowed: Vec<(&str, Field)> = fields
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    tel.sink().emit("report", "telemetry.report", &borrowed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_json, LogFormat};
    use std::io::Write;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf8")
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn final_report_includes_rates() {
        let tel = Arc::new(Telemetry::new(LogFormat::Text, true));
        tel.counter("r.count").add(10);
        let prev = tel.snapshot();
        tel.counter("r.count").add(40);
        tel.gauge("r.depth").set(2.0);
        let snap = tel.snapshot();
        // Smoke: emit_report must not panic and must handle new metrics
        // appearing between snapshots.
        emit_report(&tel, &prev, &snap, 2.0);
    }

    #[test]
    fn rate_guards_degenerate_ticks() {
        assert_eq!(rate(10, 2.0), Some(5.0));
        // Nothing moved: no rate, even with a healthy dt.
        assert_eq!(rate(0, 2.0), None);
        // Clock-equal ticks (dt == 0) must not divide.
        assert_eq!(rate(10, 0.0), None);
        // Clock going backwards or poisoned dt values.
        assert_eq!(rate(10, -1.0), None);
        assert_eq!(rate(10, f64::NAN), None);
        assert_eq!(rate(10, f64::INFINITY), None);
        // A denormal dt whose division overflows to +Inf is suppressed.
        assert_eq!(rate(u64::MAX, f64::MIN_POSITIVE), None);
    }

    #[test]
    fn zero_dt_report_emits_no_rates_and_no_nonfinite_json() {
        let buf = SharedBuf::default();
        let tel = Arc::new(Telemetry::to_writer(LogFormat::Json, Box::new(buf.clone())));
        tel.counter("z.count").add(5);
        let prev = tel.snapshot();
        tel.counter("z.count").add(5);
        let snap = tel.snapshot();
        emit_report(&tel, &prev, &snap, 0.0);
        let out = buf.contents();
        let line = out.lines().next().expect("one report line");
        let v = parse_json(line).expect("report is valid JSON");
        let fields = v.get("fields").expect("fields");
        assert!(fields.get("z.count").is_some());
        assert!(fields.get("z.count/s").is_none());
        assert!(!out.contains("inf") && !out.contains("NaN"), "{out}");
    }
}
