//! Zero-dependency telemetry for long password-guessing runs: a metrics
//! registry, span-based structured tracing, and a periodic progress
//! reporter.
//!
//! The paper's headline numbers (hit rate vs. repeat rate at large budgets,
//! the division-threshold trade-off of Algorithm 1) are properties of runs
//! that take hours; this crate makes those runs observable while they are
//! in flight instead of only at the end:
//!
//! * [`MetricsRegistry`] — lock-sharded named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s. Handles are cheap `Arc`s over atomics;
//!   hot paths never take a lock. [`MetricsRegistry::snapshot`] freezes
//!   everything into a [`MetricsSnapshot`] serializable to JSON.
//! * [`EventSink`] + [`Span`] — structured records in either human-readable
//!   text or JSONL (`{"ts_ms", "kind", "name", "fields"}`), selected by
//!   [`LogFormat`]; RAII spans time a scope into a histogram.
//! * [`Reporter`] — a background thread sampling the registry every N
//!   seconds and emitting derived rates (passwords/sec, tasks/sec, …).
//!
//! [`Telemetry`] bundles one registry with one sink; the rest of the
//! workspace threads `Option<&Telemetry>` through its options structs and
//! falls back to [`Telemetry::disabled`] (counts, but never prints).
//!
//! # Examples
//!
//! ```
//! use pagpass_telemetry::{LogFormat, Telemetry};
//!
//! let tel = Telemetry::new(LogFormat::Text, /* quiet = */ true);
//! let emitted = tel.counter("gen.passwords");
//! {
//!     let _span = tel.timer("gen.batch"); // records gen.batch.ms on drop
//!     emitted.add(256);
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counters["gen.passwords"], 256);
//! assert_eq!(snap.histograms["gen.batch.ms"].count, 1);
//! ```

mod expo;
mod json;
mod registry;
mod reporter;
mod ring;
mod trace;

use std::io::Write;
use std::sync::{Arc, OnceLock};

pub use expo::{prometheus_name, render_prometheus};
pub use json::{parse_json, write_json_f64, write_json_str, JsonValue};
pub use registry::{
    wall_clock_ms, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    DEPTH_BOUNDS, LATENCY_MS_BOUNDS,
};
pub use reporter::Reporter;
pub use ring::{next_span_id, next_trace_id, SpanRecord, SpanRing, TraceCtx};
pub use trace::{record_schema_version, EventSink, Field, LogFormat, Span, JSONL_SCHEMA_VERSION};

/// Spans retained by a [`Telemetry`]'s ring before the oldest are evicted.
const SPAN_RING_CAPACITY: usize = 512;

/// One registry plus one sink: everything a run needs to be observable.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    sink: Arc<EventSink>,
    spans: Arc<SpanRing>,
}

impl Telemetry {
    /// Telemetry writing events to stderr.
    #[must_use]
    pub fn new(format: LogFormat, quiet: bool) -> Telemetry {
        Telemetry {
            registry: MetricsRegistry::new(),
            sink: Arc::new(EventSink::stderr(format, quiet)),
            spans: Arc::new(SpanRing::new(SPAN_RING_CAPACITY)),
        }
    }

    /// Telemetry writing events to an arbitrary writer (tests).
    #[must_use]
    pub fn to_writer(format: LogFormat, out: Box<dyn Write + Send>) -> Telemetry {
        Telemetry {
            registry: MetricsRegistry::new(),
            sink: Arc::new(EventSink::to_writer(format, false, out)),
            spans: Arc::new(SpanRing::new(SPAN_RING_CAPACITY)),
        }
    }

    /// A shared silent instance. Instrumented code paths that were handed
    /// no telemetry use this: metric updates still happen (they are a few
    /// relaxed atomics) but nothing is ever printed and the registry is
    /// never read.
    #[must_use]
    pub fn disabled() -> &'static Telemetry {
        static DISABLED: OnceLock<Telemetry> = OnceLock::new();
        DISABLED.get_or_init(|| Telemetry::new(LogFormat::Text, true))
    }

    /// The metrics registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The event sink.
    #[must_use]
    pub fn sink(&self) -> &EventSink {
        &self.sink
    }

    /// Whether the sink drops all records.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.sink.is_quiet()
    }

    /// Counter handle (see [`MetricsRegistry::counter`]).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Gauge handle (see [`MetricsRegistry::gauge`]).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Latency histogram handle with the default millisecond buckets.
    #[must_use]
    pub fn histogram_ms(&self, name: &str) -> Histogram {
        self.registry.histogram(name, LATENCY_MS_BOUNDS)
    }

    /// Freezes every metric into a snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Emits one structured record through the sink.
    pub fn event(&self, kind: &str, name: &str, fields: &[(&str, Field)]) {
        self.sink.emit(kind, name, fields);
    }

    /// An RAII span: on drop, records `<name>.ms` into a histogram *and*
    /// emits a `span` record.
    #[must_use]
    pub fn span(&self, name: &str) -> Span<'_> {
        Span::new(self, name, true)
    }

    /// An RAII timer: like [`span`](Self::span) but silent — it only
    /// records the `<name>.ms` histogram. Use for per-task timings that
    /// would flood the event stream.
    #[must_use]
    pub fn timer(&self, name: &str) -> Span<'_> {
        Span::new(self, name, false)
    }

    /// An RAII traced span: silent like [`timer`](Self::timer), but
    /// carrying a [`TraceCtx`] — on drop the completed span also lands in
    /// this telemetry's bounded [`SpanRing`]. Parent child spans with
    /// [`Span::span_id`] + [`TraceCtx::child_of`].
    #[must_use]
    pub fn traced(&self, ctx: TraceCtx, name: &str) -> Span<'_> {
        Span::with_ctx(self, name, false, Some(ctx))
    }

    /// The bounded ring of completed traced spans.
    #[must_use]
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// A cheap cloneable recorder for completed spans measured outside an
    /// RAII scope (cross-thread intervals); see [`TraceRecorder::record`].
    #[must_use]
    pub fn trace_recorder(&self) -> TraceRecorder {
        TraceRecorder {
            ring: Arc::clone(&self.spans),
            sink: Arc::clone(&self.sink),
        }
    }
}

/// Records completed spans into a [`Telemetry`]'s span ring — and
/// optionally exports them as JSONL `span` records — without borrowing the
/// `Telemetry`. A recorder is two `Arc`s: clone it freely into responder
/// closures and worker threads whose lifetimes outlive the borrow.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    ring: Arc<SpanRing>,
    sink: Arc<EventSink>,
}

impl TraceRecorder {
    /// Records one completed span measured externally (`start_ms` wall
    /// clock, `dur_ms` duration), allocating and returning its span id.
    /// With `export`, the span is also emitted as a JSONL `span` record
    /// carrying its trace identity — the sampled-trace export path.
    pub fn record(
        &self,
        ctx: TraceCtx,
        name: &str,
        start_ms: u64,
        dur_ms: f64,
        export: bool,
    ) -> u64 {
        self.record_with_id(next_span_id(), ctx, name, start_ms, dur_ms, export)
    }

    /// Like [`record`](Self::record) but with a caller-allocated span id —
    /// used for root spans whose id was handed to children up front.
    pub fn record_with_id(
        &self,
        span_id: u64,
        ctx: TraceCtx,
        name: &str,
        start_ms: u64,
        dur_ms: f64,
        export: bool,
    ) -> u64 {
        self.ring.push(SpanRecord {
            trace_id: ctx.trace_id,
            span_id,
            parent_span_id: ctx.parent_span_id,
            name: name.to_owned(),
            start_ms,
            dur_ms,
        });
        if export {
            self.sink.emit(
                "span",
                name,
                &[
                    ("trace_id", Field::U64(ctx.trace_id)),
                    ("span_id", Field::U64(span_id)),
                    ("parent_span_id", Field::U64(ctx.parent_span_id)),
                    ("start_ms", Field::U64(start_ms)),
                    ("ms", Field::F64(dur_ms)),
                ],
            );
        }
        span_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_quiet_and_counts() {
        let tel = Telemetry::disabled();
        assert!(tel.is_quiet());
        tel.counter("lib.test.disabled").inc();
        assert!(tel.snapshot().counters["lib.test.disabled"] >= 1);
    }

    #[test]
    fn span_records_histogram() {
        let tel = Telemetry::new(LogFormat::Text, true);
        drop(tel.timer("phase.a"));
        drop(tel.span("phase.a"));
        let snap = tel.snapshot();
        assert_eq!(snap.histograms["phase.a.ms"].count, 2);
    }

    #[test]
    fn traced_spans_land_in_the_ring_with_parentage() {
        let tel = Telemetry::new(LogFormat::Text, true);
        let trace_id = next_trace_id();
        let root_id;
        {
            let root = tel.traced(TraceCtx::root(trace_id), "req");
            root_id = root.span_id();
            drop(tel.traced(TraceCtx::child_of(trace_id, root_id), "req.child"));
        }
        let spans = tel.spans().trace(trace_id);
        assert_eq!(spans.len(), 2);
        // The child completed (dropped) first; the root closed after it.
        assert_eq!(spans[0].name, "req.child");
        assert_eq!(spans[0].parent_span_id, root_id);
        assert_eq!(spans[1].name, "req");
        assert_eq!(spans[1].parent_span_id, 0);
        assert_eq!(tel.snapshot().histograms["req.child.ms"].count, 1);
    }

    #[test]
    fn trace_recorder_outlives_the_borrow_and_exports() {
        let recorder = {
            let tel = Telemetry::new(LogFormat::Text, true);
            tel.trace_recorder()
        };
        // The Telemetry is gone; the recorder still records safely.
        let id = recorder.record(TraceCtx::root(9), "late", 1_000, 2.5, false);
        assert_ne!(id, 0);
    }
}
