//! Zero-dependency telemetry for long password-guessing runs: a metrics
//! registry, span-based structured tracing, and a periodic progress
//! reporter.
//!
//! The paper's headline numbers (hit rate vs. repeat rate at large budgets,
//! the division-threshold trade-off of Algorithm 1) are properties of runs
//! that take hours; this crate makes those runs observable while they are
//! in flight instead of only at the end:
//!
//! * [`MetricsRegistry`] — lock-sharded named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s. Handles are cheap `Arc`s over atomics;
//!   hot paths never take a lock. [`MetricsRegistry::snapshot`] freezes
//!   everything into a [`MetricsSnapshot`] serializable to JSON.
//! * [`EventSink`] + [`Span`] — structured records in either human-readable
//!   text or JSONL (`{"ts_ms", "kind", "name", "fields"}`), selected by
//!   [`LogFormat`]; RAII spans time a scope into a histogram.
//! * [`Reporter`] — a background thread sampling the registry every N
//!   seconds and emitting derived rates (passwords/sec, tasks/sec, …).
//!
//! [`Telemetry`] bundles one registry with one sink; the rest of the
//! workspace threads `Option<&Telemetry>` through its options structs and
//! falls back to [`Telemetry::disabled`] (counts, but never prints).
//!
//! # Examples
//!
//! ```
//! use pagpass_telemetry::{LogFormat, Telemetry};
//!
//! let tel = Telemetry::new(LogFormat::Text, /* quiet = */ true);
//! let emitted = tel.counter("gen.passwords");
//! {
//!     let _span = tel.timer("gen.batch"); // records gen.batch.ms on drop
//!     emitted.add(256);
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counters["gen.passwords"], 256);
//! assert_eq!(snap.histograms["gen.batch.ms"].count, 1);
//! ```

mod json;
mod registry;
mod reporter;
mod trace;

use std::io::Write;
use std::sync::OnceLock;

pub use json::{parse_json, write_json_f64, write_json_str, JsonValue};
pub use registry::{
    wall_clock_ms, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    DEPTH_BOUNDS, LATENCY_MS_BOUNDS,
};
pub use reporter::Reporter;
pub use trace::{EventSink, Field, LogFormat, Span};

/// One registry plus one sink: everything a run needs to be observable.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    sink: EventSink,
}

impl Telemetry {
    /// Telemetry writing events to stderr.
    #[must_use]
    pub fn new(format: LogFormat, quiet: bool) -> Telemetry {
        Telemetry {
            registry: MetricsRegistry::new(),
            sink: EventSink::stderr(format, quiet),
        }
    }

    /// Telemetry writing events to an arbitrary writer (tests).
    #[must_use]
    pub fn to_writer(format: LogFormat, out: Box<dyn Write + Send>) -> Telemetry {
        Telemetry {
            registry: MetricsRegistry::new(),
            sink: EventSink::to_writer(format, false, out),
        }
    }

    /// A shared silent instance. Instrumented code paths that were handed
    /// no telemetry use this: metric updates still happen (they are a few
    /// relaxed atomics) but nothing is ever printed and the registry is
    /// never read.
    #[must_use]
    pub fn disabled() -> &'static Telemetry {
        static DISABLED: OnceLock<Telemetry> = OnceLock::new();
        DISABLED.get_or_init(|| Telemetry::new(LogFormat::Text, true))
    }

    /// The metrics registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The event sink.
    #[must_use]
    pub fn sink(&self) -> &EventSink {
        &self.sink
    }

    /// Whether the sink drops all records.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.sink.is_quiet()
    }

    /// Counter handle (see [`MetricsRegistry::counter`]).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Gauge handle (see [`MetricsRegistry::gauge`]).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Latency histogram handle with the default millisecond buckets.
    #[must_use]
    pub fn histogram_ms(&self, name: &str) -> Histogram {
        self.registry.histogram(name, LATENCY_MS_BOUNDS)
    }

    /// Freezes every metric into a snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Emits one structured record through the sink.
    pub fn event(&self, kind: &str, name: &str, fields: &[(&str, Field)]) {
        self.sink.emit(kind, name, fields);
    }

    /// An RAII span: on drop, records `<name>.ms` into a histogram *and*
    /// emits a `span` record.
    #[must_use]
    pub fn span(&self, name: &str) -> Span<'_> {
        Span::new(self, name, true)
    }

    /// An RAII timer: like [`span`](Self::span) but silent — it only
    /// records the `<name>.ms` histogram. Use for per-task timings that
    /// would flood the event stream.
    #[must_use]
    pub fn timer(&self, name: &str) -> Span<'_> {
        Span::new(self, name, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_quiet_and_counts() {
        let tel = Telemetry::disabled();
        assert!(tel.is_quiet());
        tel.counter("lib.test.disabled").inc();
        assert!(tel.snapshot().counters["lib.test.disabled"] >= 1);
    }

    #[test]
    fn span_records_histogram() {
        let tel = Telemetry::new(LogFormat::Text, true);
        drop(tel.timer("phase.a"));
        drop(tel.span("phase.a"));
        let snap = tel.snapshot();
        assert_eq!(snap.histograms["phase.a.ms"].count, 2);
    }
}
