//! Structured event tracing: a thread-safe sink emitting human-readable
//! progress lines or JSONL records, and RAII timer spans.
//!
//! Every record carries the same schema regardless of format:
//! `{"schema_version", "ts_ms", "kind", "name", "fields"}` — the record
//! format version ([`JSONL_SCHEMA_VERSION`]), wall-clock timestamp, a
//! coarse record kind (`progress`, `span`, `report`, `summary`, `warn`),
//! a dotted event name, and a flat map of typed fields. v1 records predate
//! the version field; [`record_schema_version`] treats its absence as 1.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{write_json_f64, write_json_str, JsonValue};
use crate::registry::wall_clock_ms;
use crate::ring::{next_span_id, SpanRecord, TraceCtx};

/// Version stamped into every JSONL record as `schema_version`.
///
/// History: v1 (unversioned) was `{"ts_ms", "kind", "name", "fields"}`;
/// v2 added this field. Parsers must stay tolerant of v1 records — see
/// [`record_schema_version`].
pub const JSONL_SCHEMA_VERSION: u64 = 2;

/// The schema version of one parsed JSONL record: the `schema_version`
/// field when present, else 1 (v1 records predate the field).
///
/// # Examples
///
/// ```
/// use pagpass_telemetry::{parse_json, record_schema_version};
///
/// let v1 = parse_json(r#"{"ts_ms":1,"kind":"progress","name":"x","fields":{}}"#).unwrap();
/// assert_eq!(record_schema_version(&v1), 1);
/// ```
#[must_use]
pub fn record_schema_version(record: &JsonValue) -> u64 {
    record
        .get("schema_version")
        .and_then(JsonValue::as_f64)
        .map_or(1, |v| v.max(0.0) as u64)
}

/// Output format of an [`EventSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Aligned human-readable lines: `[  12.3s] kind name k=v …`.
    #[default]
    Text,
    /// One JSON object per line (JSONL), machine-parseable.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s.to_lowercase().as_str() {
            "text" => Ok(LogFormat::Text),
            "json" | "jsonl" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (text|json)")),
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer (counts, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (losses, rates, milliseconds).
    F64(f64),
    /// Free text.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}
impl From<u32> for Field {
    fn from(v: u32) -> Field {
        Field::U64(u64::from(v))
    }
}
impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}
impl From<f32> for Field {
    fn from(v: f32) -> Field {
        Field::F64(f64::from(v))
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_owned())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl Field {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Field::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::F64(v) => write_json_f64(out, *v),
            Field::Str(s) => write_json_str(out, s),
            Field::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }

    fn write_text(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Field::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::F64(v) => {
                // Compact but informative: 4 significant decimals covers
                // losses and rates without drowning the line.
                let _ = write!(out, "{v:.4}");
            }
            Field::Str(s) => {
                let _ = write!(out, "{s:?}");
            }
            Field::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

/// Thread-safe event sink.
///
/// Writes are serialized by an internal mutex; I/O errors are deliberately
/// swallowed — telemetry must never take down the run it observes. A
/// `quiet` sink drops every record (metrics keep counting regardless,
/// since they live in the registry, not the sink).
pub struct EventSink {
    format: LogFormat,
    quiet: bool,
    start: Instant,
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("format", &self.format)
            .field("quiet", &self.quiet)
            .finish_non_exhaustive()
    }
}

impl EventSink {
    /// A sink writing to stderr.
    #[must_use]
    pub fn stderr(format: LogFormat, quiet: bool) -> EventSink {
        EventSink::to_writer(format, quiet, Box::new(std::io::stderr()))
    }

    /// A sink writing to an arbitrary writer (tests capture output this
    /// way).
    #[must_use]
    pub fn to_writer(format: LogFormat, quiet: bool, out: Box<dyn Write + Send>) -> EventSink {
        EventSink {
            format,
            quiet,
            start: Instant::now(),
            out: Mutex::new(out),
        }
    }

    /// Whether this sink drops all records.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// The sink's output format.
    #[must_use]
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// Emits one record.
    pub fn emit(&self, kind: &str, name: &str, fields: &[(&str, Field)]) {
        if self.quiet {
            return;
        }
        let line = match self.format {
            LogFormat::Text => self.render_text(kind, name, fields),
            LogFormat::Json => render_json(kind, name, fields),
        };
        // LINT-ALLOW: guard-blocking records from concurrent threads must
        // not interleave mid-line; writing under the sink lock is the
        // sink's contract, and the line is fully rendered before locking.
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        }
    }

    fn render_text(&self, kind: &str, name: &str, fields: &[(&str, Field)]) -> String {
        use std::fmt::Write as _;
        let mut line = String::with_capacity(96);
        let elapsed = self.start.elapsed().as_secs_f64();
        let _ = write!(line, "[{elapsed:9.1}s] {kind:<8} {name}");
        for (key, value) in fields {
            let _ = write!(line, "  {key}=");
            value.write_text(&mut line);
        }
        line.push('\n');
        line
    }
}

/// Renders the canonical JSONL record.
fn render_json(kind: &str, name: &str, fields: &[(&str, Field)]) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(128);
    let _ = write!(
        line,
        "{{\"schema_version\":{JSONL_SCHEMA_VERSION},\"ts_ms\":{},\"kind\":",
        wall_clock_ms()
    );
    write_json_str(&mut line, kind);
    line.push_str(",\"name\":");
    write_json_str(&mut line, name);
    line.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        write_json_str(&mut line, key);
        line.push(':');
        value.write_json(&mut line);
    }
    line.push_str("}}\n");
    line
}

/// An RAII timer. On drop it records its elapsed milliseconds into the
/// histogram `<name>.ms` and — unless created with
/// [`Telemetry::timer`](crate::Telemetry::timer) — emits a `span` record.
///
/// A span created with [`Telemetry::traced`](crate::Telemetry::traced)
/// additionally carries a [`TraceCtx`]: on drop it lands in the
/// telemetry's bounded span ring as a [`SpanRecord`], and its `span` event
/// (when emitted) carries `trace_id`/`span_id`/`parent_span_id` fields.
#[derive(Debug)]
pub struct Span<'a> {
    tel: &'a crate::Telemetry,
    name: String,
    start: Instant,
    start_wall_ms: u64,
    emit: bool,
    ctx: Option<TraceCtx>,
    span_id: u64,
}

impl<'a> Span<'a> {
    pub(crate) fn new(tel: &'a crate::Telemetry, name: &str, emit: bool) -> Span<'a> {
        Span::with_ctx(tel, name, emit, None)
    }

    pub(crate) fn with_ctx(
        tel: &'a crate::Telemetry,
        name: &str,
        emit: bool,
        ctx: Option<TraceCtx>,
    ) -> Span<'a> {
        Span {
            tel,
            name: name.to_owned(),
            start: Instant::now(),
            start_wall_ms: wall_clock_ms(),
            emit,
            ctx,
            span_id: next_span_id(),
        }
    }

    /// Milliseconds since the span started.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// This span's id, for parenting child spans
    /// ([`TraceCtx::child_of`]).
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// The trace context this span runs under, if any.
    #[must_use]
    pub fn trace_ctx(&self) -> Option<TraceCtx> {
        self.ctx
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let ms = self.elapsed_ms();
        self.tel
            .registry()
            .histogram(
                &format!("{}.ms", self.name),
                crate::registry::LATENCY_MS_BOUNDS,
            )
            .record(ms);
        if let Some(ctx) = self.ctx {
            self.tel.spans().push(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: self.span_id,
                parent_span_id: ctx.parent_span_id,
                name: self.name.clone(),
                start_ms: self.start_wall_ms,
                dur_ms: ms,
            });
        }
        if self.emit {
            match self.ctx {
                Some(ctx) => self.tel.sink().emit(
                    "span",
                    &self.name,
                    &[
                        ("trace_id", Field::U64(ctx.trace_id)),
                        ("span_id", Field::U64(self.span_id)),
                        ("parent_span_id", Field::U64(ctx.parent_span_id)),
                        ("ms", Field::F64(ms)),
                    ],
                ),
                None => self
                    .tel
                    .sink()
                    .emit("span", &self.name, &[("ms", Field::F64(ms))]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use std::sync::Arc;

    /// A writer that appends into a shared buffer.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn log_format_parses() {
        assert_eq!("text".parse::<LogFormat>().unwrap(), LogFormat::Text);
        assert_eq!("JSON".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("yaml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn json_records_have_the_schema() {
        let buf = SharedBuf::default();
        let sink = EventSink::to_writer(LogFormat::Json, false, Box::new(buf.clone()));
        sink.emit(
            "progress",
            "train.step",
            &[("step", 7u64.into()), ("loss", 1.25f64.into())],
        );
        let bytes = buf.0.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        let v = parse_json(line.trim()).unwrap();
        assert_eq!(
            v.get("schema_version").unwrap().as_f64(),
            Some(JSONL_SCHEMA_VERSION as f64)
        );
        assert_eq!(record_schema_version(&v), JSONL_SCHEMA_VERSION);
        assert_eq!(v.get("kind").unwrap().as_str(), Some("progress"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("train.step"));
        assert!(v.get("ts_ms").unwrap().as_f64().unwrap() > 0.0);
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("step").unwrap().as_f64(), Some(7.0));
        assert_eq!(fields.get("loss").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn v1_records_without_a_version_field_still_parse() {
        // A record written before schema_version existed: it must parse,
        // report version 1, and expose its fields unchanged.
        let line = r#"{"ts_ms":1700000000000,"kind":"summary","name":"dcgen.done","fields":{"emitted":100}}"#;
        let v = parse_json(line).expect("v1 record parses");
        assert_eq!(record_schema_version(&v), 1);
        assert_eq!(v.get("kind").unwrap().as_str(), Some("summary"));
        assert_eq!(
            v.get("fields").unwrap().get("emitted").unwrap().as_f64(),
            Some(100.0)
        );
        // And a malformed version field degrades to 0, not a panic.
        let odd = parse_json(r#"{"schema_version":-3,"fields":{}}"#).unwrap();
        assert_eq!(record_schema_version(&odd), 0);
    }

    #[test]
    fn traced_span_event_carries_trace_fields() {
        let buf = SharedBuf::default();
        let tel = crate::Telemetry::to_writer(LogFormat::Json, Box::new(buf.clone()));
        let ctx = TraceCtx::child_of(42, 7);
        let span_id;
        {
            let span = Span::with_ctx(&tel, "unit.traced", true, Some(ctx));
            span_id = span.span_id();
            assert_eq!(span.trace_ctx(), Some(ctx));
        }
        let bytes = buf.0.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        let v = parse_json(line.trim()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("span"));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("trace_id").unwrap().as_f64(), Some(42.0));
        assert_eq!(fields.get("parent_span_id").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            fields.get("span_id").unwrap().as_f64(),
            Some(span_id as f64)
        );
        // The completed span also landed in the ring.
        let ring = tel.spans().trace(42);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0].span_id, span_id);
        assert_eq!(ring[0].parent_span_id, 7);
        assert_eq!(ring[0].name, "unit.traced");
    }

    #[test]
    fn quiet_sink_emits_nothing() {
        let buf = SharedBuf::default();
        let sink = EventSink::to_writer(LogFormat::Text, true, Box::new(buf.clone()));
        sink.emit("progress", "x", &[("a", 1u64.into())]);
        assert!(buf.0.lock().unwrap().is_empty());
    }

    #[test]
    fn text_lines_are_readable() {
        let buf = SharedBuf::default();
        let sink = EventSink::to_writer(LogFormat::Text, false, Box::new(buf.clone()));
        sink.emit("summary", "dcgen.done", &[("emitted", 100u64.into())]);
        let bytes = buf.0.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        assert!(line.contains("summary"));
        assert!(line.contains("dcgen.done"));
        assert!(line.contains("emitted=100"));
    }
}
