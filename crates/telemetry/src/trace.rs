//! Structured event tracing: a thread-safe sink emitting human-readable
//! progress lines or JSONL records, and RAII timer spans.
//!
//! Every record carries the same schema regardless of format:
//! `{"ts_ms", "kind", "name", "fields"}` — wall-clock timestamp, a coarse
//! record kind (`progress`, `span`, `report`, `summary`, `warn`), a
//! dotted event name, and a flat map of typed fields.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{write_json_f64, write_json_str};
use crate::registry::wall_clock_ms;

/// Output format of an [`EventSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Aligned human-readable lines: `[  12.3s] kind name k=v …`.
    #[default]
    Text,
    /// One JSON object per line (JSONL), machine-parseable.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s.to_lowercase().as_str() {
            "text" => Ok(LogFormat::Text),
            "json" | "jsonl" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (text|json)")),
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer (counts, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (losses, rates, milliseconds).
    F64(f64),
    /// Free text.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}
impl From<u32> for Field {
    fn from(v: u32) -> Field {
        Field::U64(u64::from(v))
    }
}
impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}
impl From<f32> for Field {
    fn from(v: f32) -> Field {
        Field::F64(f64::from(v))
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_owned())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl Field {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Field::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::F64(v) => write_json_f64(out, *v),
            Field::Str(s) => write_json_str(out, s),
            Field::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }

    fn write_text(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Field::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::F64(v) => {
                // Compact but informative: 4 significant decimals covers
                // losses and rates without drowning the line.
                let _ = write!(out, "{v:.4}");
            }
            Field::Str(s) => {
                let _ = write!(out, "{s:?}");
            }
            Field::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

/// Thread-safe event sink.
///
/// Writes are serialized by an internal mutex; I/O errors are deliberately
/// swallowed — telemetry must never take down the run it observes. A
/// `quiet` sink drops every record (metrics keep counting regardless,
/// since they live in the registry, not the sink).
pub struct EventSink {
    format: LogFormat,
    quiet: bool,
    start: Instant,
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("format", &self.format)
            .field("quiet", &self.quiet)
            .finish_non_exhaustive()
    }
}

impl EventSink {
    /// A sink writing to stderr.
    #[must_use]
    pub fn stderr(format: LogFormat, quiet: bool) -> EventSink {
        EventSink::to_writer(format, quiet, Box::new(std::io::stderr()))
    }

    /// A sink writing to an arbitrary writer (tests capture output this
    /// way).
    #[must_use]
    pub fn to_writer(format: LogFormat, quiet: bool, out: Box<dyn Write + Send>) -> EventSink {
        EventSink {
            format,
            quiet,
            start: Instant::now(),
            out: Mutex::new(out),
        }
    }

    /// Whether this sink drops all records.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// The sink's output format.
    #[must_use]
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// Emits one record.
    pub fn emit(&self, kind: &str, name: &str, fields: &[(&str, Field)]) {
        if self.quiet {
            return;
        }
        let line = match self.format {
            LogFormat::Text => self.render_text(kind, name, fields),
            LogFormat::Json => render_json(kind, name, fields),
        };
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        }
    }

    fn render_text(&self, kind: &str, name: &str, fields: &[(&str, Field)]) -> String {
        use std::fmt::Write as _;
        let mut line = String::with_capacity(96);
        let elapsed = self.start.elapsed().as_secs_f64();
        let _ = write!(line, "[{elapsed:9.1}s] {kind:<8} {name}");
        for (key, value) in fields {
            let _ = write!(line, "  {key}=");
            value.write_text(&mut line);
        }
        line.push('\n');
        line
    }
}

/// Renders the canonical JSONL record.
fn render_json(kind: &str, name: &str, fields: &[(&str, Field)]) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(128);
    let _ = write!(line, "{{\"ts_ms\":{},\"kind\":", wall_clock_ms());
    write_json_str(&mut line, kind);
    line.push_str(",\"name\":");
    write_json_str(&mut line, name);
    line.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        write_json_str(&mut line, key);
        line.push(':');
        value.write_json(&mut line);
    }
    line.push_str("}}\n");
    line
}

/// An RAII timer. On drop it records its elapsed milliseconds into the
/// histogram `<name>.ms` and — unless created with
/// [`Telemetry::timer`](crate::Telemetry::timer) — emits a `span` record.
#[derive(Debug)]
pub struct Span<'a> {
    tel: &'a crate::Telemetry,
    name: String,
    start: Instant,
    emit: bool,
}

impl<'a> Span<'a> {
    pub(crate) fn new(tel: &'a crate::Telemetry, name: &str, emit: bool) -> Span<'a> {
        Span {
            tel,
            name: name.to_owned(),
            start: Instant::now(),
            emit,
        }
    }

    /// Milliseconds since the span started.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let ms = self.elapsed_ms();
        self.tel
            .registry()
            .histogram(
                &format!("{}.ms", self.name),
                crate::registry::LATENCY_MS_BOUNDS,
            )
            .record(ms);
        if self.emit {
            self.tel
                .sink()
                .emit("span", &self.name, &[("ms", Field::F64(ms))]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use std::sync::Arc;

    /// A writer that appends into a shared buffer.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn log_format_parses() {
        assert_eq!("text".parse::<LogFormat>().unwrap(), LogFormat::Text);
        assert_eq!("JSON".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("yaml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn json_records_have_the_schema() {
        let buf = SharedBuf::default();
        let sink = EventSink::to_writer(LogFormat::Json, false, Box::new(buf.clone()));
        sink.emit(
            "progress",
            "train.step",
            &[("step", 7u64.into()), ("loss", 1.25f64.into())],
        );
        let bytes = buf.0.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        let v = parse_json(line.trim()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("progress"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("train.step"));
        assert!(v.get("ts_ms").unwrap().as_f64().unwrap() > 0.0);
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("step").unwrap().as_f64(), Some(7.0));
        assert_eq!(fields.get("loss").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn quiet_sink_emits_nothing() {
        let buf = SharedBuf::default();
        let sink = EventSink::to_writer(LogFormat::Text, true, Box::new(buf.clone()));
        sink.emit("progress", "x", &[("a", 1u64.into())]);
        assert!(buf.0.lock().unwrap().is_empty());
    }

    #[test]
    fn text_lines_are_readable() {
        let buf = SharedBuf::default();
        let sink = EventSink::to_writer(LogFormat::Text, false, Box::new(buf.clone()));
        sink.emit("summary", "dcgen.done", &[("emitted", 100u64.into())]);
        let bytes = buf.0.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        assert!(line.contains("summary"));
        assert!(line.contains("dcgen.done"));
        assert!(line.contains("emitted=100"));
    }
}
