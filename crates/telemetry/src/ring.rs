//! Lock-sharded bounded ring buffer of completed spans.
//!
//! Request-scoped tracing needs somewhere cheap to put finished spans so a
//! live endpoint (`/statusz`) can show "the last N spans" without asking
//! the hot path to serialize anything. The ring is that somewhere: a fixed
//! capacity split across independently locked shards, written round-robin
//! so concurrent recorders rarely contend on the same shard, and snapshot
//! at read time into one list ordered by completion.
//!
//! The ring never grows: once a shard is full the oldest span in that
//! shard is evicted. Losing old spans is the point — this is a window, not
//! a log; the JSONL sink is the durable export path (sampled traces).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Independently locked shards; more than typical recorder concurrency so
/// round-robin writers rarely collide.
const RING_SHARDS: usize = 8;

/// Monotonic span-id allocator shared by every recorder in the process.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic trace-id allocator for requests that did not supply one.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh process-unique span id (never 0 — 0 means "no parent").
#[must_use]
pub fn next_span_id() -> u64 {
    // ORD: a pure id allocator; uniqueness comes from the atomic RMW,
    // no cross-variable ordering is needed.
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// A fresh process-unique trace id (never 0).
#[must_use]
pub fn next_trace_id() -> u64 {
    // ORD: same pure-allocator argument as `next_span_id`.
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Position of one span inside a request-scoped trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The trace every span of one request shares.
    pub trace_id: u64,
    /// Id of the enclosing span, or 0 for a trace's root span.
    pub parent_span_id: u64,
}

impl TraceCtx {
    /// Context for a trace's root span (no parent).
    #[must_use]
    pub fn root(trace_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id,
            parent_span_id: 0,
        }
    }

    /// Context for a child span under `parent_span_id`.
    #[must_use]
    pub fn child_of(trace_id: u64, parent_span_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id,
            parent_span_id,
        }
    }
}

/// One completed span as stored in the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique per process).
    pub span_id: u64,
    /// The enclosing span's id, or 0 for the root.
    pub parent_span_id: u64,
    /// Dotted span name (`serve.queue_wait`, …).
    pub name: String,
    /// Wall-clock start, milliseconds since the UNIX epoch.
    pub start_ms: u64,
    /// Duration in milliseconds.
    pub dur_ms: f64,
}

/// One shard: a bounded FIFO window of spans plus a push sequence number
/// so a snapshot can interleave shards in completion order.
#[derive(Debug, Default)]
struct Shard {
    spans: std::collections::VecDeque<(u64, SpanRecord)>,
}

/// Locks a shard, riding through poisoning: shard state is a `VecDeque`
/// that is valid at every instruction boundary.
fn lock(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The bounded, lock-sharded span ring. See the module docs.
#[derive(Debug)]
pub struct SpanRing {
    shards: Vec<Mutex<Shard>>,
    /// Round-robin write cursor.
    cursor: AtomicUsize,
    /// Global push sequence, for ordering snapshots across shards.
    pushed: AtomicU64,
    per_shard_cap: usize,
}

impl SpanRing {
    /// A ring holding at most (roughly) `capacity` spans, split evenly
    /// across the shards; `capacity` is clamped to at least one span per
    /// shard.
    #[must_use]
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing {
            shards: (0..RING_SHARDS).map(|_| Mutex::default()).collect(),
            cursor: AtomicUsize::new(0),
            pushed: AtomicU64::new(0),
            per_shard_cap: capacity.div_ceil(RING_SHARDS).max(1),
        }
    }

    /// Total spans the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * RING_SHARDS
    }

    /// Appends one completed span, evicting the oldest span in its shard
    /// when that shard is full.
    pub fn push(&self, record: SpanRecord) {
        // ORD: the cursor only spreads load; any interleaving is correct.
        let shard = self.cursor.fetch_add(1, Ordering::Relaxed) % RING_SHARDS;
        // ORD: the sequence number orders snapshots; the shard mutex is
        // the synchronizing operation for the record itself.
        let seq = self.pushed.fetch_add(1, Ordering::Relaxed);
        let mut guard = lock(&self.shards[shard]);
        if guard.spans.len() >= self.per_shard_cap {
            guard.spans.pop_front();
        }
        guard.spans.push_back((seq, record));
    }

    /// Spans currently held (across all shards).
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        for shard in &self.shards {
            n += lock(shard).spans.len();
        }
        n
    }

    /// Whether the ring holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every retained span, oldest first (by push order, which is
    /// completion order up to recorder concurrency).
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut all: Vec<(u64, SpanRecord)> = Vec::with_capacity(self.capacity());
        for shard in &self.shards {
            all.extend(lock(shard).spans.iter().cloned());
        }
        all.sort_by_key(|(seq, _)| *seq);
        all.into_iter().map(|(_, r)| r).collect()
    }

    /// The retained spans of one trace, oldest first.
    #[must_use]
    pub fn trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans = self.snapshot();
        spans.retain(|r| r.trace_id == trace_id);
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, name: &str) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id: next_span_id(),
            parent_span_id: 0,
            name: name.to_owned(),
            start_ms: 1_000,
            dur_ms: 1.5,
        }
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(next_trace_id(), 0);
    }

    #[test]
    fn trace_ctx_constructors() {
        assert_eq!(TraceCtx::root(7).parent_span_id, 0);
        let child = TraceCtx::child_of(7, 3);
        assert_eq!((child.trace_id, child.parent_span_id), (7, 3));
    }

    #[test]
    fn push_and_snapshot_preserve_order() {
        let ring = SpanRing::new(64);
        for i in 0..10u64 {
            ring.push(span(i, &format!("s{i}")));
        }
        assert_eq!(ring.len(), 10);
        let snap = ring.snapshot();
        let names: Vec<&str> = snap.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"]
        );
    }

    #[test]
    fn capacity_is_bounded_and_evicts_oldest() {
        let ring = SpanRing::new(8); // one span per shard
        assert_eq!(ring.capacity(), 8);
        for i in 0..100u64 {
            ring.push(span(i, "s"));
        }
        assert_eq!(ring.len(), 8);
        // Everything retained is from the most recent writes.
        assert!(ring.snapshot().iter().all(|r| r.trace_id >= 84));
    }

    #[test]
    fn trace_filters_by_id() {
        let ring = SpanRing::new(64);
        ring.push(span(1, "a"));
        ring.push(span(2, "b"));
        ring.push(span(1, "c"));
        let got = ring.trace(1);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|r| r.trace_id == 1));
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(32));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..200 {
                        ring.push(span(t * 1000 + i, "c"));
                    }
                });
            }
        });
        assert!(ring.len() <= ring.capacity());
    }
}
