//! Minimal JSON support for the telemetry layer: serialization helpers for
//! the JSONL event stream and snapshot files, plus a small recursive-descent
//! parser so records can be validated and round-tripped without pulling a
//! JSON dependency into this std-only crate.
//!
//! The parser accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null). It exists for telemetry's own output — compact,
//! machine-written records — not as a general-purpose JSON library.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number. Non-finite values have no JSON
/// representation and are written as `null`.
pub fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced for non-finite numbers on the write side).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64` (telemetry values fit comfortably).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup; `None` on non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message (with a byte offset) on malformed
/// input or trailing non-whitespace.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        // LINT-ALLOW: no-unwrap-in-lib the loop above only accepted ASCII
        // bytes, so the slice is valid UTF-8 by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    // LINT-ALLOW: no-unwrap-in-lib peek() returned Some, so
                    // at least one byte (hence one char) remains.
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_roundtrip() {
        let mut out = String::new();
        write_json_str(&mut out, "a\"b\\c\nd\te\u{1}f");
        let parsed = parse_json(&out).unwrap();
        assert_eq!(parsed, JsonValue::Str("a\"b\\c\nd\te\u{1}f".into()));
    }

    #[test]
    fn numbers_and_nonfinite() {
        let mut out = String::new();
        write_json_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
        out.clear();
        write_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        assert_eq!(parse_json("-2.5e3").unwrap().as_f64(), Some(-2500.0));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse_json(r#"{"a": [1, {"b": "x"}, true, null], "c": -4}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_f64), Some(-4.0));
        let JsonValue::Arr(items) = v.get("a").unwrap() else {
            panic!("expected array");
        };
        assert_eq!(items.len(), 4);
        assert_eq!(items[1].get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(items[3], JsonValue::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"abc").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn unicode_escapes_and_multibyte() {
        assert_eq!(
            parse_json("\"\\u00e9=\u{e9}\"").unwrap().as_str(),
            Some("\u{e9}=\u{e9}")
        );
    }
}
