//! Property-based tests for the tokenizer.

use pagpass_patterns::Pattern;
use pagpass_tokenizer::{Tokenizer, Vocab, VOCAB_SIZE};
use proptest::prelude::*;

/// Passwords over the 94-char alphabet, 1..=12 chars, runs <= 12 by length.
fn password() -> impl Strategy<Value = String> {
    let alphabet: Vec<char> = ('!'..='~').collect();
    proptest::collection::vec(proptest::sample::select(alphabet), 1..=12)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    /// encode_training -> decode_rule is the identity on password & pattern.
    #[test]
    fn training_roundtrip(pw in password()) {
        let tok = Tokenizer::new();
        let ids = tok.encode_training(&pw).unwrap();
        let decoded = tok.decode_rule(&ids).unwrap();
        prop_assert_eq!(&decoded.password, &pw);
        prop_assert_eq!(decoded.pattern, Some(Pattern::of_password(&pw).unwrap()));
        prop_assert!(decoded.terminated);
        // All ids are in range.
        prop_assert!(ids.iter().all(|&id| (id as usize) < VOCAB_SIZE));
    }

    /// Bare-password encoding roundtrips too.
    #[test]
    fn password_roundtrip(pw in password()) {
        let tok = Tokenizer::new();
        let ids = tok.encode_password(&pw).unwrap();
        prop_assert_eq!(tok.decode_password(&ids).unwrap(), pw);
    }

    /// Rule length is 3 + #segments + #chars and fits the context window.
    #[test]
    fn rule_length_formula(pw in password()) {
        let tok = Tokenizer::new();
        let ids = tok.encode_training(&pw).unwrap();
        let pat = Pattern::of_password(&pw).unwrap();
        prop_assert_eq!(ids.len(), 3 + pat.segment_count() + pw.chars().count());
        prop_assert!(ids.len() <= Tokenizer::max_rule_len(12));
    }

    /// The generation prefix is a strict prefix of the training rule.
    #[test]
    fn prefix_is_prefix_of_rule(pw in password()) {
        let tok = Tokenizer::new();
        let pat = Pattern::of_password(&pw).unwrap();
        let rule = tok.encode_rule(&pat, &pw).unwrap();
        let prefix = tok.encode_generation_prefix(&pat);
        prop_assert_eq!(&rule[..prefix.len()], &prefix[..]);
        prop_assert_eq!(*prefix.last().unwrap(), Vocab::SEP);
    }

    /// Decoding arbitrary in-range id soup never panics.
    #[test]
    fn decode_never_panics(ids in proptest::collection::vec(0u32..(VOCAB_SIZE as u32), 0..40)) {
        let tok = Tokenizer::new();
        let _ = tok.decode_rule(&ids);
        let _ = tok.decode_password(&ids);
        let _ = tok.render(&ids);
    }
}
