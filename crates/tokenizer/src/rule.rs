use pagpass_patterns::{Pattern, Segment};

use crate::{Token, TokenId, TokenizeError, Vocab};

/// Result of decoding a token sequence back into a rule.
///
/// Sequences produced by a model may be imperfect, so decoding is tolerant:
/// the pattern is `None` when the pattern section is empty or malformed, and
/// the password is whatever character tokens appeared between `<SEP>` and
/// `<EOS>` (or the end of the sequence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedRule {
    /// The pattern section, if it parsed into a valid pattern.
    pub pattern: Option<Pattern>,
    /// The password section.
    pub password: String,
    /// Whether the sequence was terminated by an `<EOS>` token.
    pub terminated: bool,
}

/// Encoder/decoder between passwords/rules and token-id sequences.
///
/// Construction is cheap; the tokenizer owns the fixed [`Vocab`].
///
/// # Examples
///
/// ```
/// use pagpass_tokenizer::{Tokenizer, Vocab};
///
/// # fn main() -> Result<(), pagpass_tokenizer::TokenizeError> {
/// let tok = Tokenizer::new();
/// let prefix = tok.encode_generation_prefix(&"L4N2".parse().unwrap());
/// assert_eq!(prefix[0], Vocab::BOS);
/// assert_eq!(*prefix.last().unwrap(), Vocab::SEP);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    vocab: Vocab,
}

impl Tokenizer {
    /// Creates a tokenizer over the fixed vocabulary.
    #[must_use]
    pub fn new() -> Tokenizer {
        Tokenizer {
            vocab: Vocab::new(),
        }
    }

    /// The underlying vocabulary.
    #[must_use]
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Encodes the full training rule of a password:
    /// `<BOS> pattern <SEP> password <EOS>` (paper Fig. 4, left).
    ///
    /// # Errors
    ///
    /// Returns [`TokenizeError::Pattern`] when the password's pattern cannot
    /// be extracted (out-of-alphabet characters or runs longer than 12).
    pub fn encode_training(&self, password: &str) -> Result<Vec<TokenId>, TokenizeError> {
        let pattern = Pattern::of_password(password)?;
        self.encode_rule(&pattern, password)
    }

    /// Encodes `<BOS> pattern <SEP> password <EOS>` with an explicit
    /// pattern. The password is *not* checked against the pattern; callers
    /// wanting strict rules should verify with [`Pattern::matches`].
    ///
    /// # Errors
    ///
    /// Returns [`TokenizeError::UnknownChar`] if the password contains a
    /// character outside the vocabulary.
    pub fn encode_rule(
        &self,
        pattern: &Pattern,
        password: &str,
    ) -> Result<Vec<TokenId>, TokenizeError> {
        let mut ids = Vec::with_capacity(3 + pattern.segment_count() + password.len());
        ids.push(Vocab::BOS);
        self.push_pattern(&mut ids, pattern);
        ids.push(Vocab::SEP);
        for c in password.chars() {
            ids.push(self.vocab.char_id(c).ok_or(TokenizeError::UnknownChar(c))?);
        }
        ids.push(Vocab::EOS);
        Ok(ids)
    }

    /// Encodes the generation-time prefix `<BOS> pattern <SEP>`
    /// (paper Fig. 4, right).
    #[must_use]
    pub fn encode_generation_prefix(&self, pattern: &Pattern) -> Vec<TokenId> {
        let mut ids = Vec::with_capacity(2 + pattern.segment_count());
        ids.push(Vocab::BOS);
        self.push_pattern(&mut ids, pattern);
        ids.push(Vocab::SEP);
        ids
    }

    /// Encodes a bare password (no pattern section), used by the PassGPT
    /// baseline whose rules are `<BOS> password <EOS>`.
    ///
    /// # Errors
    ///
    /// Returns [`TokenizeError::UnknownChar`] for out-of-vocabulary
    /// characters.
    pub fn encode_password(&self, password: &str) -> Result<Vec<TokenId>, TokenizeError> {
        let mut ids = Vec::with_capacity(password.len() + 2);
        ids.push(Vocab::BOS);
        for c in password.chars() {
            ids.push(self.vocab.char_id(c).ok_or(TokenizeError::UnknownChar(c))?);
        }
        ids.push(Vocab::EOS);
        Ok(ids)
    }

    /// Decodes a rule produced by [`encode_training`](Self::encode_training)
    /// or by model sampling.
    ///
    /// Tolerates model imperfections: pattern tokens after `<SEP>` are
    /// skipped, `<UNK>`/`<PAD>` are ignored, and a missing `<EOS>` only
    /// clears [`DecodedRule::terminated`].
    ///
    /// # Errors
    ///
    /// Returns [`TokenizeError::UnknownId`] if any id is outside the
    /// vocabulary, and [`TokenizeError::MalformedRule`] when the sequence
    /// has no `<SEP>` at all (so there is no password section).
    pub fn decode_rule(&self, ids: &[TokenId]) -> Result<DecodedRule, TokenizeError> {
        let mut segments: Vec<Segment> = Vec::new();
        let mut password = String::new();
        let mut seen_sep = false;
        let mut terminated = false;
        for &id in ids {
            let token = self
                .vocab
                .token_of(id)
                .ok_or(TokenizeError::UnknownId(id))?;
            match token {
                Token::Bos | Token::Unk | Token::Pad => {}
                Token::Sep => seen_sep = true,
                Token::Eos => {
                    terminated = true;
                    break;
                }
                Token::Pattern(seg) if !seen_sep => segments.push(seg),
                Token::Pattern(_) => {} // stray pattern token in the password section
                Token::Char(c) if seen_sep => password.push(c),
                Token::Char(_) => {} // stray character in the pattern section
            }
        }
        if !seen_sep {
            return Err(TokenizeError::MalformedRule("no <SEP> separator"));
        }
        Ok(DecodedRule {
            pattern: Pattern::from_segments(segments).ok(),
            password,
            terminated,
        })
    }

    /// Decodes a bare password sequence (PassGPT style,
    /// `<BOS> password <EOS>`): character tokens up to the first `<EOS>`.
    ///
    /// # Errors
    ///
    /// Returns [`TokenizeError::UnknownId`] for out-of-vocabulary ids.
    pub fn decode_password(&self, ids: &[TokenId]) -> Result<String, TokenizeError> {
        let mut password = String::new();
        for &id in ids {
            match self
                .vocab
                .token_of(id)
                .ok_or(TokenizeError::UnknownId(id))?
            {
                Token::Eos => break,
                Token::Char(c) => password.push(c),
                _ => {}
            }
        }
        Ok(password)
    }

    /// Renders ids as a human-readable rule string, e.g.
    /// `<BOS> L4 N3 S1 <SEP> P a s s 1 2 3 $ <EOS>`.
    #[must_use]
    pub fn render(&self, ids: &[TokenId]) -> String {
        ids.iter()
            .map(|&id| match self.vocab.token_of(id) {
                Some(t) => t.to_string(),
                None => format!("<?{id}>"),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Longest rule length for passwords of at most `max_password_len`
    /// characters: `<BOS>` + at most `max_password_len` pattern segments +
    /// `<SEP>` + password + `<EOS>`.
    ///
    /// For the paper's 12-character cap this is 27, comfortably inside the
    /// 32-token context window.
    #[must_use]
    pub fn max_rule_len(max_password_len: usize) -> usize {
        3 + 2 * max_password_len
    }

    fn push_pattern(&self, ids: &mut Vec<TokenId>, pattern: &Pattern) {
        for &seg in pattern.segments() {
            // Every valid segment is in the vocabulary; `<UNK>` is the
            // unreachable out-of-vocabulary fallback.
            ids.push(self.vocab.segment_id(seg).unwrap_or(Vocab::UNK));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_rule_layout_matches_the_paper() {
        let tok = Tokenizer::new();
        let ids = tok.encode_training("Pass123$").unwrap();
        assert_eq!(
            tok.render(&ids),
            "<BOS> L4 N3 S1 <SEP> P a s s 1 2 3 $ <EOS>"
        );
        assert_eq!(ids[0], Vocab::BOS);
        assert_eq!(ids[4], Vocab::SEP);
        assert_eq!(*ids.last().unwrap(), Vocab::EOS);
    }

    #[test]
    fn rule_roundtrip() {
        let tok = Tokenizer::new();
        for pw in ["Pass123$", "letmein", "1234", "!!!a9", "A1b2C3d4E5f6"] {
            let ids = tok.encode_training(pw).unwrap();
            let decoded = tok.decode_rule(&ids).unwrap();
            assert_eq!(decoded.password, pw);
            assert_eq!(decoded.pattern, Some(Pattern::of_password(pw).unwrap()));
            assert!(decoded.terminated);
        }
    }

    #[test]
    fn generation_prefix_has_no_password_section() {
        let tok = Tokenizer::new();
        let p: Pattern = "L4N3S1".parse().unwrap();
        let ids = tok.encode_generation_prefix(&p);
        assert_eq!(tok.render(&ids), "<BOS> L4 N3 S1 <SEP>");
    }

    #[test]
    fn bare_password_roundtrip() {
        let tok = Tokenizer::new();
        let ids = tok.encode_password("abc!9").unwrap();
        assert_eq!(tok.render(&ids), "<BOS> a b c ! 9 <EOS>");
        assert_eq!(tok.decode_password(&ids).unwrap(), "abc!9");
    }

    #[test]
    fn encoding_rejects_out_of_vocab_chars() {
        let tok = Tokenizer::new();
        assert!(matches!(
            tok.encode_password("has space"),
            Err(TokenizeError::UnknownChar(' '))
        ));
        assert!(matches!(
            tok.encode_training("caf\u{e9}"),
            Err(TokenizeError::Pattern(_))
        ));
    }

    #[test]
    fn decode_is_tolerant_to_model_noise() {
        let tok = Tokenizer::new();
        let v = tok.vocab();
        // <BOS> L1 <SEP> a <PAD> b   (no <EOS>)
        let seg = Segment::new(pagpass_patterns::CharClass::Letter, 1).unwrap();
        let ids = vec![
            Vocab::BOS,
            v.segment_id(seg).unwrap(),
            Vocab::SEP,
            v.char_id('a').unwrap(),
            Vocab::PAD,
            v.char_id('b').unwrap(),
        ];
        let decoded = tok.decode_rule(&ids).unwrap();
        assert_eq!(decoded.password, "ab");
        assert!(!decoded.terminated);
        assert_eq!(decoded.pattern.unwrap().to_string(), "L1");
    }

    #[test]
    fn decode_requires_a_separator() {
        let tok = Tokenizer::new();
        let ids = vec![Vocab::BOS, Vocab::EOS];
        assert!(matches!(
            tok.decode_rule(&ids),
            Err(TokenizeError::MalformedRule(_))
        ));
    }

    #[test]
    fn decode_rejects_unknown_ids() {
        let tok = Tokenizer::new();
        assert!(matches!(
            tok.decode_rule(&[Vocab::BOS, 999, Vocab::SEP]),
            Err(TokenizeError::UnknownId(999))
        ));
        assert!(matches!(
            tok.decode_password(&[999]),
            Err(TokenizeError::UnknownId(999))
        ));
    }

    #[test]
    fn stray_tokens_in_wrong_sections_are_skipped() {
        let tok = Tokenizer::new();
        let v = tok.vocab();
        let seg = Segment::new(pagpass_patterns::CharClass::Digit, 2).unwrap();
        // char token before <SEP>, pattern token after <SEP>
        let ids = vec![
            Vocab::BOS,
            v.char_id('x').unwrap(),
            v.segment_id(seg).unwrap(),
            Vocab::SEP,
            v.segment_id(seg).unwrap(),
            v.char_id('7').unwrap(),
            Vocab::EOS,
        ];
        let decoded = tok.decode_rule(&ids).unwrap();
        assert_eq!(decoded.password, "7");
        assert_eq!(decoded.pattern.unwrap().to_string(), "N2");
    }

    #[test]
    fn max_rule_len_fits_the_32_token_window() {
        assert_eq!(Tokenizer::max_rule_len(12), 27);
        assert!(Tokenizer::max_rule_len(12) <= 32);
    }

    #[test]
    fn paper_fig5_example_shape() {
        // Fig. 5 encodes <BOS> L4 N3 S1 <SEP> P a s s 1 2 3 $ <EOS> as a
        // 14-element id list; exact indexes differ because the paper never
        // fixes its vocabulary order, but the length and boundaries must
        // agree.
        let tok = Tokenizer::new();
        let ids = tok.encode_training("Pass123$").unwrap();
        assert_eq!(ids.len(), 14);
    }
}
