use std::collections::HashMap;
use std::fmt;

use pagpass_patterns::{CharClass, Segment, MAX_SEGMENT_LEN};
use serde::{Deserialize, Serialize};

/// Index of a token in the vocabulary.
///
/// Kept at `u32` so id buffers interoperate directly with the embedding
/// lookups of the `pagpass-nn` substrate.
pub type TokenId = u32;

/// Number of special tokens (`<BOS>`, `<SEP>`, `<EOS>`, `<UNK>`, `<PAD>`).
pub const NUM_SPECIAL_TOKENS: usize = 5;

/// Number of pattern tokens (`L1..L12`, `N1..N12`, `S1..S12`).
pub const NUM_PATTERN_TOKENS: usize = 3 * MAX_SEGMENT_LEN;

/// Number of character tokens (printable ASCII minus space).
pub const NUM_CHAR_TOKENS: usize = pagpass_patterns::ALPHABET_SIZE;

/// Total vocabulary size: `5 + 36 + 94 = 135`.
pub const VOCAB_SIZE: usize = NUM_SPECIAL_TOKENS + NUM_PATTERN_TOKENS + NUM_CHAR_TOKENS;

/// A single vocabulary entry.
///
/// # Examples
///
/// ```
/// use pagpass_tokenizer::{Token, Vocab};
///
/// let vocab = Vocab::new();
/// let id = vocab.id_of(Token::Char('a')).unwrap();
/// assert_eq!(vocab.token_of(id), Some(Token::Char('a')));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Token {
    /// `<BOS>` — beginning of a rule.
    Bos,
    /// `<SEP>` — separator between pattern and password.
    Sep,
    /// `<EOS>` — end of a rule.
    Eos,
    /// `<UNK>` — out-of-vocabulary placeholder.
    Unk,
    /// `<PAD>` — batch padding.
    Pad,
    /// A pattern segment token such as `L4`.
    Pattern(Segment),
    /// A password character token.
    Char(char),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Bos => write!(f, "<BOS>"),
            Token::Sep => write!(f, "<SEP>"),
            Token::Eos => write!(f, "<EOS>"),
            Token::Unk => write!(f, "<UNK>"),
            Token::Pad => write!(f, "<PAD>"),
            Token::Pattern(seg) => write!(f, "{seg}"),
            Token::Char(c) => write!(f, "{c}"),
        }
    }
}

/// The fixed PagPassGPT vocabulary with bidirectional token ↔ id maps.
///
/// Id layout is deterministic:
///
/// | ids        | tokens                                        |
/// |------------|-----------------------------------------------|
/// | 0–4        | `<BOS>`, `<SEP>`, `<EOS>`, `<UNK>`, `<PAD>`   |
/// | 5–16       | `L1..L12`                                     |
/// | 17–28      | `N1..N12`                                     |
/// | 29–40      | `S1..S12`                                     |
/// | 41–134     | characters: `a..z`, `A..Z`, `0..9`, specials  |
#[derive(Debug, Clone)]
pub struct Vocab {
    tokens: Vec<Token>,
    ids: HashMap<Token, TokenId>,
}

impl Vocab {
    /// Id of `<BOS>`.
    pub const BOS: TokenId = 0;
    /// Id of `<SEP>`.
    pub const SEP: TokenId = 1;
    /// Id of `<EOS>`.
    pub const EOS: TokenId = 2;
    /// Id of `<UNK>`.
    pub const UNK: TokenId = 3;
    /// Id of `<PAD>`.
    pub const PAD: TokenId = 4;

    /// Builds the fixed vocabulary.
    #[must_use]
    pub fn new() -> Vocab {
        let mut tokens = Vec::with_capacity(VOCAB_SIZE);
        tokens.extend([Token::Bos, Token::Sep, Token::Eos, Token::Unk, Token::Pad]);
        for class in CharClass::ALL {
            // 1..=12 are all valid segment lengths; the `VOCAB_SIZE`
            // debug assertion below would catch any silently skipped one.
            for len in 1..=MAX_SEGMENT_LEN {
                if let Ok(seg) = Segment::new(class, len) {
                    tokens.push(Token::Pattern(seg));
                }
            }
        }
        for class in CharClass::ALL {
            tokens.extend(class.chars().chars().map(Token::Char));
        }
        debug_assert_eq!(tokens.len(), VOCAB_SIZE);
        let ids = tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as TokenId))
            .collect();
        Vocab { tokens, ids }
    }

    /// Number of tokens (always [`VOCAB_SIZE`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Always `false`; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Looks up the id of a token.
    #[must_use]
    pub fn id_of(&self, token: Token) -> Option<TokenId> {
        self.ids.get(&token).copied()
    }

    /// Looks up the token with a given id.
    #[must_use]
    pub fn token_of(&self, id: TokenId) -> Option<Token> {
        self.tokens.get(id as usize).copied()
    }

    /// Id of a character token, or `None` if outside the alphabet.
    #[must_use]
    pub fn char_id(&self, c: char) -> Option<TokenId> {
        self.id_of(Token::Char(c))
    }

    /// Id of a pattern-segment token.
    #[must_use]
    pub fn segment_id(&self, seg: Segment) -> Option<TokenId> {
        self.id_of(Token::Pattern(seg))
    }

    /// Ids of every character token belonging to `class`, in vocabulary
    /// order. These are the candidate sets D&C-GEN restricts to when the
    /// pattern demands a letter / digit / special next.
    #[must_use]
    pub fn class_char_ids(&self, class: CharClass) -> Vec<TokenId> {
        // Every class character is in the vocabulary by construction, so
        // the filter never drops one.
        class
            .chars()
            .chars()
            .filter_map(|c| self.char_id(c))
            .collect()
    }

    /// Whether `id` denotes a password character.
    #[must_use]
    pub fn is_char(&self, id: TokenId) -> bool {
        matches!(self.token_of(id), Some(Token::Char(_)))
    }

    /// Whether `id` denotes a pattern segment.
    #[must_use]
    pub fn is_pattern(&self, id: TokenId) -> bool {
        matches!(self.token_of(id), Some(Token::Pattern(_)))
    }

    /// Iterates over all tokens in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, Token)> + '_ {
        self.tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| (i as TokenId, t))
    }
}

impl Default for Vocab {
    fn default() -> Vocab {
        Vocab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_has_exactly_135_tokens() {
        let v = Vocab::new();
        assert_eq!(v.len(), 135);
        assert_eq!(v.len(), VOCAB_SIZE);
        assert!(!v.is_empty());
    }

    #[test]
    fn special_token_ids_are_fixed() {
        let v = Vocab::new();
        assert_eq!(v.id_of(Token::Bos), Some(Vocab::BOS));
        assert_eq!(v.id_of(Token::Sep), Some(Vocab::SEP));
        assert_eq!(v.id_of(Token::Eos), Some(Vocab::EOS));
        assert_eq!(v.id_of(Token::Unk), Some(Vocab::UNK));
        assert_eq!(v.id_of(Token::Pad), Some(Vocab::PAD));
    }

    #[test]
    fn every_id_roundtrips() {
        let v = Vocab::new();
        for (id, token) in v.iter() {
            assert_eq!(v.id_of(token), Some(id));
            assert_eq!(v.token_of(id), Some(token));
        }
        assert_eq!(v.token_of(VOCAB_SIZE as TokenId), None);
    }

    #[test]
    fn pattern_tokens_cover_all_classes_and_lengths() {
        let v = Vocab::new();
        let mut count = 0;
        for class in CharClass::ALL {
            for len in 1..=MAX_SEGMENT_LEN {
                let seg = Segment::new(class, len).unwrap();
                let id = v.segment_id(seg).unwrap();
                assert!(v.is_pattern(id));
                count += 1;
            }
        }
        assert_eq!(count, NUM_PATTERN_TOKENS);
    }

    #[test]
    fn class_char_ids_sizes() {
        let v = Vocab::new();
        assert_eq!(v.class_char_ids(CharClass::Letter).len(), 52);
        assert_eq!(v.class_char_ids(CharClass::Digit).len(), 10);
        assert_eq!(v.class_char_ids(CharClass::Special).len(), 32);
        for class in CharClass::ALL {
            for id in v.class_char_ids(class) {
                assert!(v.is_char(id));
            }
        }
    }

    #[test]
    fn char_coverage_is_the_94_char_alphabet() {
        let v = Vocab::new();
        assert!(v.char_id('a').is_some());
        assert_eq!(v.char_id(' '), None);
        assert_eq!(v.char_id('\u{e9}'), None);
        let char_count = v
            .iter()
            .filter(|(_, t)| matches!(t, Token::Char(_)))
            .count();
        assert_eq!(char_count, NUM_CHAR_TOKENS);
    }

    #[test]
    fn display_forms() {
        let v = Vocab::new();
        assert_eq!(Token::Bos.to_string(), "<BOS>");
        let seg = Segment::new(CharClass::Letter, 4).unwrap();
        assert_eq!(Token::Pattern(seg).to_string(), "L4");
        assert_eq!(Token::Char('!').to_string(), "!");
        let _ = v; // vocab construction exercised above
    }
}
