//! The PagPassGPT tokenizer: the paper's fixed vocabulary plus rule
//! building, encoding, and decoding (paper §III-B1, Figs. 4–5).
//!
//! A *rule* is the training-time serialization of a password:
//!
//! ```text
//! <BOS> || pattern || <SEP> || password || <EOS>
//! ```
//!
//! where the pattern is the PCFG structure of the password (e.g. `L4N3S1`
//! for `Pass123$`), encoded as one token per segment. At generation time the
//! model is primed with the shorter prefix `<BOS> || pattern || <SEP>` and
//! predicts the password tokens auto-regressively.
//!
//! The vocabulary contains three groups:
//!
//! * 5 special tokens: `<BOS>`, `<SEP>`, `<EOS>`, `<UNK>`, `<PAD>`;
//! * 36 pattern tokens: `L1..L12`, `N1..N12`, `S1..S12`;
//! * 94 character tokens: every printable ASCII character except space.
//!
//! That is 135 tokens in total. (The paper reports "totaling 136 tokens",
//! but its own enumeration — 94 + 5 + 36 — sums to 135; we follow the
//! enumeration.)
//!
//! # Examples
//!
//! ```
//! use pagpass_tokenizer::Tokenizer;
//!
//! # fn main() -> Result<(), pagpass_tokenizer::TokenizeError> {
//! let tok = Tokenizer::new();
//! let ids = tok.encode_training("Pass123$")?;
//! // <BOS> L4 N3 S1 <SEP> P a s s 1 2 3 $ <EOS>
//! assert_eq!(ids.len(), 14);
//! let decoded = tok.decode_rule(&ids)?;
//! assert_eq!(decoded.password, "Pass123$");
//! assert_eq!(decoded.pattern.unwrap().to_string(), "L4N3S1");
//! # Ok(())
//! # }
//! ```

mod error;
mod rule;
mod vocab;

pub use error::TokenizeError;
pub use rule::{DecodedRule, Tokenizer};
pub use vocab::{
    Token, TokenId, Vocab, NUM_CHAR_TOKENS, NUM_PATTERN_TOKENS, NUM_SPECIAL_TOKENS, VOCAB_SIZE,
};
