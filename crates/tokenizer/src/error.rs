use std::error::Error;
use std::fmt;

use pagpass_patterns::PatternError;

use crate::TokenId;

/// Errors produced while encoding or decoding rules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TokenizeError {
    /// Pattern extraction of the password failed.
    Pattern(PatternError),
    /// A character has no token in the vocabulary.
    UnknownChar(char),
    /// An id outside the vocabulary was decoded.
    UnknownId(TokenId),
    /// A decoded rule was structurally malformed (e.g. missing `<SEP>`).
    MalformedRule(&'static str),
}

impl fmt::Display for TokenizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenizeError::Pattern(e) => write!(f, "pattern extraction failed: {e}"),
            TokenizeError::UnknownChar(c) => write!(f, "character {c:?} is not in the vocabulary"),
            TokenizeError::UnknownId(id) => write!(f, "token id {id} is outside the vocabulary"),
            TokenizeError::MalformedRule(what) => write!(f, "malformed rule: {what}"),
        }
    }
}

impl Error for TokenizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TokenizeError::Pattern(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PatternError> for TokenizeError {
    fn from(e: PatternError) -> TokenizeError {
        TokenizeError::Pattern(e)
    }
}
