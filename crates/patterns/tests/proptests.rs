//! Property-based tests for the pattern algebra.

use pagpass_patterns::{CharClass, Pattern, PatternDistribution};
use proptest::prelude::*;

/// Strategy producing passwords drawn from the 94-character alphabet with
/// runs no longer than 12 (so extraction always succeeds).
fn valid_password() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), 1usize..=4).prop_map(|(b, l)| {
                let chars = CharClass::Letter.chars().as_bytes();
                String::from_utf8(vec![chars[b as usize % chars.len()]; l]).unwrap()
            }),
            (any::<u8>(), 1usize..=4).prop_map(|(b, l)| {
                let chars = CharClass::Digit.chars().as_bytes();
                String::from_utf8(vec![chars[b as usize % chars.len()]; l]).unwrap()
            }),
            (any::<u8>(), 1usize..=4).prop_map(|(b, l)| {
                let chars = CharClass::Special.chars().as_bytes();
                String::from_utf8(vec![chars[b as usize % chars.len()]; l]).unwrap()
            }),
        ],
        1..=3,
    )
    .prop_map(|parts| parts.concat())
    .prop_filter("runs must stay <= 12", |s| Pattern::of_password(s).is_ok())
}

proptest! {
    /// Extraction then `matches` is a tautology.
    #[test]
    fn extracted_pattern_matches_its_password(pw in valid_password()) {
        let p = Pattern::of_password(&pw).unwrap();
        prop_assert!(p.matches(&pw));
    }

    /// Extraction, Display, and parse agree.
    #[test]
    fn display_parse_roundtrip(pw in valid_password()) {
        let p = Pattern::of_password(&pw).unwrap();
        let reparsed: Pattern = p.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, p);
    }

    /// Pattern length equals password length; segment classes alternate.
    #[test]
    fn structural_invariants(pw in valid_password()) {
        let p = Pattern::of_password(&pw).unwrap();
        prop_assert_eq!(p.char_len(), pw.chars().count());
        prop_assert!(p.segments().windows(2).all(|w| w[0].class() != w[1].class()));
        prop_assert_eq!(p.position_classes().count(), p.char_len());
    }

    /// `class_at` agrees with `position_classes`.
    #[test]
    fn class_at_agrees_with_iterator(pw in valid_password()) {
        let p = Pattern::of_password(&pw).unwrap();
        for (i, class) in p.position_classes().enumerate() {
            prop_assert_eq!(p.class_at(i), Some(class));
        }
        prop_assert_eq!(p.class_at(p.char_len()), None);
    }

    /// A password matches exactly its own pattern among any candidates.
    #[test]
    fn matches_is_exact(pw1 in valid_password(), pw2 in valid_password()) {
        let p1 = Pattern::of_password(&pw1).unwrap();
        let p2 = Pattern::of_password(&pw2).unwrap();
        prop_assert_eq!(p1.matches(&pw2), p1 == p2);
    }

    /// Distribution probabilities are a valid probability mass function.
    #[test]
    fn distribution_normalizes(pws in proptest::collection::vec(valid_password(), 1..40)) {
        let dist = PatternDistribution::from_passwords(pws.iter().map(String::as_str));
        let sum: f64 = dist.ranked().iter().map(|e| e.probability).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(dist.total() as usize, pws.len());
        let count_sum: u64 = dist.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(count_sum, dist.total());
    }

    /// Search space is at least the number of positions' minimum choices.
    #[test]
    fn search_space_lower_bound(pw in valid_password()) {
        let p = Pattern::of_password(&pw).unwrap();
        prop_assert!(p.search_space() >= 10f64.powi(p.char_len() as i32).min(10.0));
    }
}
