use std::fmt;

use serde::{Deserialize, Serialize};

use crate::PatternError;

/// The 52 letter characters, in vocabulary order.
pub const LETTER_CHARS: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// The 10 digit characters.
pub const DIGIT_CHARS: &str = "0123456789";

/// The 32 special characters: all printable ASCII punctuation.
///
/// Together with [`LETTER_CHARS`] and [`DIGIT_CHARS`] these are exactly the
/// 94 printable ASCII characters excluding the space character, matching the
/// paper's data-cleaning rule and tokenizer vocabulary.
pub const SPECIAL_CHARS: &str = "!\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~";

/// Total alphabet size: `52 + 10 + 32 = 94` printable ASCII characters.
pub const ALPHABET_SIZE: usize = 94;

/// One of the three PCFG character classes.
///
/// Every printable ASCII character except the space belongs to exactly one
/// class. The class symbols follow the paper: `L` for letters, `N` for
/// numbers (digits), `S` for special characters.
///
/// # Examples
///
/// ```
/// use pagpass_patterns::CharClass;
///
/// assert_eq!(CharClass::of('a'), Some(CharClass::Letter));
/// assert_eq!(CharClass::of('7'), Some(CharClass::Digit));
/// assert_eq!(CharClass::of('$'), Some(CharClass::Special));
/// assert_eq!(CharClass::of(' '), None);
/// assert_eq!(CharClass::Letter.alphabet_size(), 52);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CharClass {
    /// An uppercase or lowercase ASCII letter (`a-z`, `A-Z`), symbol `L`.
    Letter,
    /// An ASCII digit (`0-9`), symbol `N`.
    Digit,
    /// One of the 32 printable ASCII punctuation characters, symbol `S`.
    Special,
}

impl CharClass {
    /// All classes, in the order used throughout the crate.
    pub const ALL: [CharClass; 3] = [CharClass::Letter, CharClass::Digit, CharClass::Special];

    /// Classifies a character, returning `None` for anything outside the
    /// 94-character alphabet (space, control characters, non-ASCII).
    #[must_use]
    pub fn of(c: char) -> Option<CharClass> {
        match c {
            'a'..='z' | 'A'..='Z' => Some(CharClass::Letter),
            '0'..='9' => Some(CharClass::Digit),
            c if c.is_ascii_graphic() => Some(CharClass::Special),
            _ => None,
        }
    }

    /// The symbol used in pattern notation: `L`, `N`, or `S`.
    #[must_use]
    pub fn symbol(self) -> char {
        match self {
            CharClass::Letter => 'L',
            CharClass::Digit => 'N',
            CharClass::Special => 'S',
        }
    }

    /// Parses a pattern symbol back into a class.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::UnknownClassSymbol`] if `symbol` is not one of
    /// `L`, `N`, `S`.
    pub fn from_symbol(symbol: char) -> Result<CharClass, PatternError> {
        match symbol {
            'L' => Ok(CharClass::Letter),
            'N' => Ok(CharClass::Digit),
            'S' => Ok(CharClass::Special),
            other => Err(PatternError::UnknownClassSymbol(other)),
        }
    }

    /// The characters belonging to this class, in vocabulary order.
    #[must_use]
    pub fn chars(self) -> &'static str {
        match self {
            CharClass::Letter => LETTER_CHARS,
            CharClass::Digit => DIGIT_CHARS,
            CharClass::Special => SPECIAL_CHARS,
        }
    }

    /// Number of characters in this class: 52, 10, or 32.
    ///
    /// These are the candidate counts `c` that D&C-GEN uses when splitting a
    /// task on the next token (paper §III-C1).
    #[must_use]
    pub fn alphabet_size(self) -> usize {
        self.chars().len()
    }

    /// Whether `c` belongs to this class.
    #[must_use]
    pub fn contains(self, c: char) -> bool {
        CharClass::of(c) == Some(self)
    }
}

impl fmt::Display for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_the_printable_ascii_alphabet() {
        let mut total = 0usize;
        for c in (0u8..=127).map(char::from) {
            let class = CharClass::of(c);
            if c == ' ' || !c.is_ascii_graphic() {
                assert_eq!(class, None, "{c:?} should be outside the alphabet");
            } else {
                total += 1;
                let class = class.expect("printable non-space char must classify");
                assert!(class.chars().contains(c), "{c:?} missing from {class:?}");
            }
        }
        assert_eq!(total, ALPHABET_SIZE);
    }

    #[test]
    fn class_sizes_match_the_paper() {
        assert_eq!(CharClass::Letter.alphabet_size(), 52);
        assert_eq!(CharClass::Digit.alphabet_size(), 10);
        assert_eq!(CharClass::Special.alphabet_size(), 32);
        assert_eq!(
            CharClass::ALL
                .iter()
                .map(|c| c.alphabet_size())
                .sum::<usize>(),
            ALPHABET_SIZE
        );
    }

    #[test]
    fn class_alphabets_are_disjoint() {
        for a in CharClass::ALL {
            for b in CharClass::ALL {
                if a != b {
                    assert!(!a.chars().chars().any(|c| b.chars().contains(c)));
                }
            }
        }
    }

    #[test]
    fn symbol_roundtrip() {
        for class in CharClass::ALL {
            assert_eq!(CharClass::from_symbol(class.symbol()), Ok(class));
        }
        assert!(matches!(
            CharClass::from_symbol('X'),
            Err(PatternError::UnknownClassSymbol('X'))
        ));
    }

    #[test]
    fn display_matches_symbol() {
        assert_eq!(CharClass::Letter.to_string(), "L");
        assert_eq!(CharClass::Digit.to_string(), "N");
        assert_eq!(CharClass::Special.to_string(), "S");
    }

    #[test]
    fn contains_agrees_with_of() {
        for c in "aZ3$ ~\u{e9}".chars() {
            for class in CharClass::ALL {
                assert_eq!(class.contains(c), CharClass::of(c) == Some(class));
            }
        }
    }
}
