//! PCFG pattern algebra for the PagPassGPT reproduction.
//!
//! The PagPassGPT paper (DSN 2024) represents the *structure* of a password
//! with the classic PCFG notation of Weir et al. (S&P 2009): a password is
//! split into maximal runs of characters of the same class — letters (`L`),
//! digits (`N`), or special characters (`S`) — and each run is written as the
//! class symbol followed by the run length. `Pass123$` therefore has the
//! pattern `L4N3S1`.
//!
//! This crate provides:
//!
//! * [`CharClass`] — the three character classes and the 94-character
//!   printable-ASCII alphabet (space excluded) they partition,
//! * [`Segment`] — one `class × length` run,
//! * [`Pattern`] — a sequence of segments with extraction
//!   ([`Pattern::of_password`]), parsing ([`str::parse`]), matching and
//!   search-space accounting,
//! * [`PatternDistribution`] — empirical pattern statistics over a corpus,
//!   the prior `Pr(P)` used by both the PCFG baseline and D&C-GEN.
//!
//! # Examples
//!
//! ```
//! use pagpass_patterns::Pattern;
//!
//! # fn main() -> Result<(), pagpass_patterns::PatternError> {
//! let pattern = Pattern::of_password("Pass123$")?;
//! assert_eq!(pattern.to_string(), "L4N3S1");
//! assert_eq!(pattern.char_len(), 8);
//! assert!(pattern.matches("word456!"));
//! assert!(!pattern.matches("word45!6"));
//!
//! let parsed: Pattern = "L4N3S1".parse()?;
//! assert_eq!(parsed, pattern);
//! # Ok(())
//! # }
//! ```

mod class;
mod distribution;
mod error;
mod pattern;

pub use class::{CharClass, ALPHABET_SIZE, DIGIT_CHARS, LETTER_CHARS, SPECIAL_CHARS};
pub use distribution::{PatternCount, PatternDistribution};
pub use error::PatternError;
pub use pattern::{Pattern, Segment, MAX_SEGMENT_LEN};
