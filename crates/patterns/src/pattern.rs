use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{CharClass, PatternError};

/// Largest representable segment length.
///
/// The paper's vocabulary contains exactly 36 pattern tokens (`L1..L12`,
/// `N1..N12`, `S1..S12`), so a single run may be at most 12 characters —
/// consistent with the data cleaning step that keeps passwords of 4–12
/// characters.
pub const MAX_SEGMENT_LEN: usize = 12;

/// One maximal run of same-class characters, e.g. `L4` or `S1`.
///
/// # Examples
///
/// ```
/// use pagpass_patterns::{CharClass, Segment};
///
/// let seg = Segment::new(CharClass::Letter, 4).unwrap();
/// assert_eq!(seg.to_string(), "L4");
/// assert_eq!(seg.len().get(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Segment {
    class: CharClass,
    len: u8,
}

impl Segment {
    /// Creates a segment of `len` characters of `class`.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::MissingLength`] for `len == 0` and
    /// [`PatternError::SegmentTooLong`] for `len > 12`.
    pub fn new(class: CharClass, len: usize) -> Result<Segment, PatternError> {
        if len == 0 {
            return Err(PatternError::MissingLength);
        }
        if len > MAX_SEGMENT_LEN {
            return Err(PatternError::SegmentTooLong(len));
        }
        Ok(Segment {
            class,
            len: len as u8,
        })
    }

    /// The character class of this run.
    #[must_use]
    pub fn class(self) -> CharClass {
        self.class
    }

    /// The run length (between 1 and 12).
    #[must_use]
    pub fn len(self) -> std::num::NonZeroU8 {
        // Invariant upheld by `new`; the fallback is unreachable.
        std::num::NonZeroU8::new(self.len).unwrap_or(std::num::NonZeroU8::MIN)
    }

    /// Number of distinct strings matching this segment,
    /// `alphabet_size ^ len` as an `f64`.
    #[must_use]
    pub fn search_space(self) -> f64 {
        (self.class.alphabet_size() as f64).powi(i32::from(self.len))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.symbol(), self.len)
    }
}

/// A full PCFG pattern: the sequence of maximal same-class runs of a
/// password, e.g. `L4N3S1` for `Pass123$`.
///
/// Patterns are ordered and hashable so they can serve as map keys in
/// distribution statistics.
///
/// # Examples
///
/// ```
/// use pagpass_patterns::Pattern;
///
/// # fn main() -> Result<(), pagpass_patterns::PatternError> {
/// let p = Pattern::of_password("abc123!")?;
/// assert_eq!(p.to_string(), "L3N3S1");
/// assert_eq!(p.segment_count(), 3);
/// assert_eq!(p.char_len(), 7);
/// // 52^3 letter choices, 10^3 digits, 32 specials:
/// assert_eq!(p.search_space(), 52f64.powi(3) * 1000.0 * 32.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pattern {
    segments: Vec<Segment>,
}

impl Pattern {
    /// Extracts the pattern of a password by splitting it into maximal
    /// same-class runs.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Empty`] for an empty password,
    /// [`PatternError::UnsupportedChar`] if any character falls outside the
    /// 94-character alphabet, and [`PatternError::SegmentTooLong`] if a run
    /// exceeds 12 characters.
    pub fn of_password(password: &str) -> Result<Pattern, PatternError> {
        let mut segments: Vec<Segment> = Vec::new();
        let mut run_class: Option<CharClass> = None;
        let mut run_len = 0usize;
        for c in password.chars() {
            let class = CharClass::of(c).ok_or(PatternError::UnsupportedChar(c))?;
            match run_class {
                Some(current) if current == class => run_len += 1,
                Some(current) => {
                    segments.push(Segment::new(current, run_len)?);
                    run_class = Some(class);
                    run_len = 1;
                }
                None => {
                    run_class = Some(class);
                    run_len = 1;
                }
            }
        }
        match run_class {
            Some(class) => segments.push(Segment::new(class, run_len)?),
            None => return Err(PatternError::Empty),
        }
        Ok(Pattern { segments })
    }

    /// Builds a pattern from explicit segments.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Empty`] for no segments and
    /// [`PatternError::AdjacentSameClass`] if two consecutive segments share
    /// a class (runs must be maximal for extraction and parsing to agree).
    pub fn from_segments(segments: Vec<Segment>) -> Result<Pattern, PatternError> {
        if segments.is_empty() {
            return Err(PatternError::Empty);
        }
        if segments.windows(2).any(|w| w[0].class() == w[1].class()) {
            return Err(PatternError::AdjacentSameClass);
        }
        Ok(Pattern { segments })
    }

    /// The segments of this pattern in order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments; the paper buckets patterns into *categories* by
    /// this count (Fig. 8/9 report hit rate per category).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total password length described by this pattern.
    #[must_use]
    pub fn char_len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| usize::from(s.len().get()))
            .sum()
    }

    /// Iterator over the character class at each password position.
    ///
    /// Useful for per-position constrained sampling: position `i` of a
    /// conforming password must draw from `class_at(i).chars()`.
    pub fn position_classes(&self) -> impl Iterator<Item = CharClass> + '_ {
        self.segments
            .iter()
            .flat_map(|s| std::iter::repeat_n(s.class(), usize::from(s.len().get())))
    }

    /// The character class required at position `index`, or `None` past the
    /// end of the pattern.
    #[must_use]
    pub fn class_at(&self, index: usize) -> Option<CharClass> {
        let mut pos = index;
        for seg in &self.segments {
            let len = usize::from(seg.len().get());
            if pos < len {
                return Some(seg.class());
            }
            pos -= len;
        }
        None
    }

    /// Whether `password` conforms to this pattern.
    ///
    /// Equivalent to `Pattern::of_password(password) == Ok(self)` but without
    /// allocation.
    #[must_use]
    pub fn matches(&self, password: &str) -> bool {
        let mut classes = self.position_classes();
        for c in password.chars() {
            match (classes.next(), CharClass::of(c)) {
                (Some(expected), Some(actual)) if expected == actual => {}
                _ => return false,
            }
        }
        // Also require maximality implicitly: conforming position classes of
        // a maximal-run pattern guarantee the password's own pattern equals
        // `self`, as long as all positions were consumed.
        classes.next().is_none()
    }

    /// Number of distinct passwords conforming to this pattern (as `f64`,
    /// since it overflows `u64` for long letter runs).
    ///
    /// D&C-GEN caps a pattern's quota at this value (paper §III-C3,
    /// optimization 2).
    #[must_use]
    pub fn search_space(&self) -> f64 {
        self.segments.iter().map(|s| s.search_space()).product()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for seg in &self.segments {
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

impl FromStr for Pattern {
    type Err = PatternError;

    /// Parses notation like `L4N3S1`.
    fn from_str(s: &str) -> Result<Pattern, PatternError> {
        if s.is_empty() {
            return Err(PatternError::Empty);
        }
        let mut segments = Vec::new();
        let mut chars = s.chars().peekable();
        while let Some(symbol) = chars.next() {
            let class = CharClass::from_symbol(symbol)?;
            let mut len = 0usize;
            let mut saw_digit = false;
            while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                chars.next();
                saw_digit = true;
                len = len * 10 + len_digit(d, len)?;
            }
            if !saw_digit {
                return Err(PatternError::MissingLength);
            }
            segments.push(Segment::new(class, len)?);
        }
        Pattern::from_segments(segments)
    }
}

/// Guards against absurd lengths overflowing during parse.
fn len_digit(d: u32, acc: usize) -> Result<usize, PatternError> {
    if acc > MAX_SEGMENT_LEN {
        return Err(PatternError::SegmentTooLong(acc * 10));
    }
    Ok(d as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_the_paper_examples() {
        assert_eq!(
            Pattern::of_password("Pass123$").unwrap().to_string(),
            "L4N3S1"
        );
        assert_eq!(
            Pattern::of_password("abc123!").unwrap().to_string(),
            "L3N3S1"
        );
        assert_eq!(
            Pattern::of_password("password123").unwrap().to_string(),
            "L8N3"
        );
    }

    #[test]
    fn single_class_passwords() {
        assert_eq!(Pattern::of_password("letmein").unwrap().to_string(), "L7");
        assert_eq!(Pattern::of_password("1234").unwrap().to_string(), "N4");
        assert_eq!(Pattern::of_password("!!!").unwrap().to_string(), "S3");
    }

    #[test]
    fn case_does_not_split_letter_runs() {
        assert_eq!(Pattern::of_password("PaSsWoRd").unwrap().to_string(), "L8");
    }

    #[test]
    fn rejects_unsupported_characters() {
        assert_eq!(
            Pattern::of_password("has space"),
            Err(PatternError::UnsupportedChar(' '))
        );
        assert_eq!(
            Pattern::of_password("caf\u{e9}"),
            Err(PatternError::UnsupportedChar('\u{e9}'))
        );
        assert_eq!(Pattern::of_password(""), Err(PatternError::Empty));
    }

    #[test]
    fn rejects_oversized_runs() {
        let long = "a".repeat(13);
        assert_eq!(
            Pattern::of_password(&long),
            Err(PatternError::SegmentTooLong(13))
        );
        // 12 is fine.
        assert_eq!(
            Pattern::of_password(&"a".repeat(12)).unwrap().to_string(),
            "L12"
        );
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["L4N3S1", "L12", "N1S1N1S1N1S1", "S12", "L8N3"] {
            let p: Pattern = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(matches!("".parse::<Pattern>(), Err(PatternError::Empty)));
        assert!(matches!(
            "L".parse::<Pattern>(),
            Err(PatternError::MissingLength)
        ));
        assert!(matches!(
            "L0".parse::<Pattern>(),
            Err(PatternError::MissingLength)
        ));
        assert!(matches!(
            "X4".parse::<Pattern>(),
            Err(PatternError::UnknownClassSymbol('X'))
        ));
        assert!(matches!(
            "L13".parse::<Pattern>(),
            Err(PatternError::SegmentTooLong(13))
        ));
        assert!(matches!(
            "L2L3".parse::<Pattern>(),
            Err(PatternError::AdjacentSameClass)
        ));
    }

    #[test]
    fn matches_requires_exact_structure() {
        let p: Pattern = "L5N2".parse().unwrap();
        assert!(p.matches("hello42"));
        assert!(!p.matches("hello4"));
        assert!(!p.matches("hello421"));
        assert!(!p.matches("hell642"));
        assert!(!p.matches("hello4!"));
        // The digit run in "hellx99" is at the right place but "hell99x" is not.
        assert!(!p.matches("hell99x"));
    }

    #[test]
    fn class_at_walks_segments() {
        let p: Pattern = "L2N1S3".parse().unwrap();
        let classes: Vec<_> = (0..7).map(|i| p.class_at(i)).collect();
        assert_eq!(
            classes,
            vec![
                Some(CharClass::Letter),
                Some(CharClass::Letter),
                Some(CharClass::Digit),
                Some(CharClass::Special),
                Some(CharClass::Special),
                Some(CharClass::Special),
                None
            ]
        );
    }

    #[test]
    fn search_space_accounts_every_position() {
        let p: Pattern = "N3".parse().unwrap();
        assert_eq!(p.search_space(), 1000.0);
        let p: Pattern = "L1N1S1".parse().unwrap();
        assert_eq!(p.search_space(), 52.0 * 10.0 * 32.0);
    }

    #[test]
    fn segment_accessors() {
        let seg = Segment::new(CharClass::Special, 7).unwrap();
        assert_eq!(seg.class(), CharClass::Special);
        assert_eq!(seg.len().get(), 7);
        assert_eq!(seg.search_space(), 32f64.powi(7));
        assert!(Segment::new(CharClass::Letter, 0).is_err());
        assert!(Segment::new(CharClass::Letter, 13).is_err());
    }
}
