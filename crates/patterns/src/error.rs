use std::error::Error;
use std::fmt;

/// Errors produced while extracting or parsing PCFG patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternError {
    /// A password contained a character outside the 94-character alphabet
    /// (space, control, or non-ASCII characters).
    UnsupportedChar(char),
    /// The password (or pattern) was empty.
    Empty,
    /// A segment length exceeded [`MAX_SEGMENT_LEN`](crate::MAX_SEGMENT_LEN),
    /// which has no token in the paper's 136-token vocabulary.
    SegmentTooLong(usize),
    /// A pattern string used a class symbol other than `L`, `N`, `S`.
    UnknownClassSymbol(char),
    /// A pattern string had a class symbol without a following length, or a
    /// zero length.
    MissingLength,
    /// Two consecutive segments of the same class, e.g. `L2L3`; a valid PCFG
    /// pattern uses *maximal* runs so adjacent segments differ in class.
    AdjacentSameClass,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::UnsupportedChar(c) => {
                write!(f, "character {c:?} is outside the 94-character alphabet")
            }
            PatternError::Empty => write!(f, "empty password or pattern"),
            PatternError::SegmentTooLong(len) => {
                write!(f, "segment length {len} exceeds the maximum of 12")
            }
            PatternError::UnknownClassSymbol(c) => {
                write!(
                    f,
                    "unknown character-class symbol {c:?}, expected L, N, or S"
                )
            }
            PatternError::MissingLength => write!(f, "class symbol without a positive length"),
            PatternError::AdjacentSameClass => {
                write!(f, "adjacent segments share a class; runs must be maximal")
            }
        }
    }
}

impl Error for PatternError {}
