use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::Pattern;

/// A pattern together with its empirical count and probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternCount {
    /// The pattern.
    pub pattern: Pattern,
    /// Number of corpus passwords with this pattern.
    pub count: u64,
    /// `count / total`, the empirical prior `Pr(P)`.
    pub probability: f64,
}

/// Empirical distribution of PCFG patterns over a password corpus.
///
/// This is the prior `Pr(P)` that PagPassGPT's D&C-GEN uses to split the
/// total guessing budget across patterns (Algorithm 1, input `S_p`), that the
/// PCFG baseline uses to order its grammar, and that the evaluation uses for
/// the pattern-distance metric (Eq. 7).
///
/// Passwords whose pattern cannot be extracted (out-of-alphabet characters,
/// oversized runs) are skipped and counted in [`skipped`](Self::skipped).
///
/// # Examples
///
/// ```
/// use pagpass_patterns::PatternDistribution;
///
/// let dist = PatternDistribution::from_passwords(
///     ["abc123", "xyz789", "hello!", "1234"].iter().copied(),
/// );
/// assert_eq!(dist.total(), 4);
/// let top = dist.top(1);
/// assert_eq!(top[0].pattern.to_string(), "L3N3");
/// assert_eq!(top[0].count, 2);
/// assert!((top[0].probability - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PatternDistribution {
    counts: HashMap<Pattern, u64>,
    total: u64,
    skipped: u64,
}

impl PatternDistribution {
    /// Creates an empty distribution.
    #[must_use]
    pub fn new() -> PatternDistribution {
        PatternDistribution::default()
    }

    /// Builds a distribution by extracting the pattern of every password.
    pub fn from_passwords<'a, I>(passwords: I) -> PatternDistribution
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut dist = PatternDistribution::new();
        for pw in passwords {
            dist.observe_password(pw);
        }
        dist
    }

    /// Records one password; unextractable passwords increment
    /// [`skipped`](Self::skipped) instead.
    pub fn observe_password(&mut self, password: &str) {
        match Pattern::of_password(password) {
            Ok(pattern) => self.observe(pattern),
            Err(_) => self.skipped += 1,
        }
    }

    /// Records one already-extracted pattern.
    pub fn observe(&mut self, pattern: Pattern) {
        *self.counts.entry(pattern).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total number of observed (extractable) passwords.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of passwords skipped because pattern extraction failed.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Number of distinct patterns observed.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Empirical probability of `pattern` (0.0 if unseen or empty corpus).
    #[must_use]
    pub fn probability(&self, pattern: &Pattern) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(pattern).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Raw count of `pattern`.
    #[must_use]
    pub fn count(&self, pattern: &Pattern) -> u64 {
        *self.counts.get(pattern).unwrap_or(&0)
    }

    /// All patterns with counts and probabilities, sorted by descending
    /// count; ties break lexicographically on the pattern for determinism.
    #[must_use]
    pub fn ranked(&self) -> Vec<PatternCount> {
        let mut entries: Vec<PatternCount> = self
            .counts
            .iter()
            .map(|(pattern, &count)| PatternCount {
                pattern: pattern.clone(),
                count,
                probability: count as f64 / self.total.max(1) as f64,
            })
            .collect();
        entries.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.pattern.cmp(&b.pattern))
        });
        entries
    }

    /// The `k` most frequent patterns.
    #[must_use]
    pub fn top(&self, k: usize) -> Vec<PatternCount> {
        let mut ranked = self.ranked();
        ranked.truncate(k);
        ranked
    }

    /// Groups patterns by segment count: `by_segments()[&3]` holds the ranked
    /// patterns with three segments. This is the paper's *category* notion
    /// (Fig. 8/9).
    #[must_use]
    pub fn by_segments(&self) -> HashMap<usize, Vec<PatternCount>> {
        let mut map: HashMap<usize, Vec<PatternCount>> = HashMap::new();
        for entry in self.ranked() {
            map.entry(entry.pattern.segment_count())
                .or_default()
                .push(entry);
        }
        map
    }

    /// Iterator over `(pattern, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Pattern, u64)> {
        self.counts.iter().map(|(p, &c)| (p, c))
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &PatternDistribution) {
        for (pattern, count) in &other.counts {
            *self.counts.entry(pattern.clone()).or_insert(0) += count;
        }
        self.total += other.total;
        self.skipped += other.skipped;
    }
}

impl Extend<Pattern> for PatternDistribution {
    fn extend<T: IntoIterator<Item = Pattern>>(&mut self, iter: T) {
        for p in iter {
            self.observe(p);
        }
    }
}

impl FromIterator<Pattern> for PatternDistribution {
    fn from_iter<T: IntoIterator<Item = Pattern>>(iter: T) -> PatternDistribution {
        let mut dist = PatternDistribution::new();
        dist.extend(iter);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> PatternDistribution {
        PatternDistribution::from_passwords(
            ["abc123", "dog456", "cat789", "hello!", "1234", "bad pw"]
                .iter()
                .copied(),
        )
    }

    #[test]
    fn counts_and_probabilities() {
        let d = dist();
        assert_eq!(d.total(), 5);
        assert_eq!(d.skipped(), 1);
        assert_eq!(d.distinct(), 3);
        let l3n3: Pattern = "L3N3".parse().unwrap();
        assert_eq!(d.count(&l3n3), 3);
        assert!((d.probability(&l3n3) - 0.6).abs() < 1e-12);
        let unseen: Pattern = "S4".parse().unwrap();
        assert_eq!(d.count(&unseen), 0);
        assert_eq!(d.probability(&unseen), 0.0);
    }

    #[test]
    fn ranked_is_sorted_and_normalized() {
        let d = dist();
        let ranked = d.ranked();
        assert!(ranked.windows(2).all(|w| w[0].count >= w[1].count));
        let sum: f64 = ranked.iter().map(|e| e.probability).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn by_segments_buckets_categories() {
        let d = dist();
        let buckets = d.by_segments();
        assert_eq!(buckets[&1].len(), 1); // N4
        assert_eq!(buckets[&2].len(), 2); // L3N3, L5S1
        assert!(!buckets.contains_key(&3));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = dist();
        let b = dist();
        a.merge(&b);
        assert_eq!(a.total(), 10);
        assert_eq!(a.skipped(), 2);
        let l3n3: Pattern = "L3N3".parse().unwrap();
        assert_eq!(a.count(&l3n3), 6);
    }

    #[test]
    fn empty_distribution_is_harmless() {
        let d = PatternDistribution::new();
        assert_eq!(d.total(), 0);
        assert_eq!(d.ranked().len(), 0);
        assert_eq!(d.probability(&"L1".parse().unwrap()), 0.0);
    }

    #[test]
    fn collect_from_patterns() {
        let d: PatternDistribution = ["L3N3", "L3N3", "S1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(d.total(), 3);
        assert_eq!(d.count(&"L3N3".parse().unwrap()), 2);
    }
}
