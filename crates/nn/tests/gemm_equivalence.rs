//! Bitwise equivalence of the cache-blocked GEMM kernels against the naive
//! reference loops, at every thread count.
//!
//! The golden-output regression (`crates/core/tests/golden_dcgen.rs`) only
//! exercises the shapes one tiny model happens to produce. These tests pin
//! the stronger claim the kernels are built on: for *any* shape — including
//! 1×1, primes that defeat the 4-wide micro-kernel's main loop, and far
//! fewer rows than worker threads — `KernelMode::Blocked` on pools of 1, 2
//! and 4 threads produces outputs that compare `==` (bit-identical, not
//! approximately equal) to `KernelMode::Naive`.
//!
//! `KernelMode` is process-global, so every test that flips it serializes on
//! [`mode_guard`] and restores `Blocked` before releasing it. Tests that do
//! not flip the mode are correct under either mode and need no guard.

use std::sync::{Mutex, MutexGuard, OnceLock};

use pagpass_nn::gradcheck::GradCheck;
use pagpass_nn::{pool, set_kernel_mode, KernelMode, Mat, Rng, SelfAttention, ThreadPool};

/// Serializes tests that flip the process-global [`KernelMode`].
fn mode_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shapes chosen to stress every edge of the blocked kernels: the 1×1
/// degenerate case, single-row/column operands, primes that leave a 1–3
/// element tail after the unroll-by-4, k larger than one cache tile, and
/// row counts smaller than the 4-thread pools used below.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 5, 1),
    (3, 1, 7),
    (2, 3, 4),
    (5, 7, 3),
    (13, 11, 17),
    (31, 29, 37),
    (2, 97, 53),
    (3, 150, 129),
    (64, 67, 65),
    (130, 131, 67),
];

fn pools() -> Vec<ThreadPool> {
    vec![ThreadPool::new(1), ThreadPool::new(2), ThreadPool::new(4)]
}

#[test]
fn matmul_blocked_is_bit_identical_to_naive_at_any_thread_count() {
    let _guard = mode_guard();
    let mut rng = Rng::seed_from(41);
    for &(m, k, n) in SHAPES {
        let a = Mat::randn(m, k, 1.0, &mut rng);
        let b = Mat::randn(k, n, 1.0, &mut rng);

        set_kernel_mode(KernelMode::Naive);
        let mut want = Mat::zeros(m, n);
        a.matmul_into(&b, &mut want);
        set_kernel_mode(KernelMode::Blocked);

        for pool in pools() {
            let mut got = Mat::zeros(m, n);
            a.matmul_into_on(&b, &mut got, &pool);
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "matmul {m}x{k}·{k}x{n} diverged on a {}-thread pool",
                pool.threads()
            );
        }
    }
}

#[test]
fn t_accum_blocked_is_bit_identical_to_naive_at_any_thread_count() {
    let _guard = mode_guard();
    let mut rng = Rng::seed_from(42);
    for &(r, m, n) in SHAPES {
        // x is r×m, dy is r×n, out accumulates xᵀ·dy into m×n. Start from a
        // nonzero out so the accumulate (not overwrite) semantics are pinned.
        let x = Mat::randn(r, m, 1.0, &mut rng);
        let dy = Mat::randn(r, n, 1.0, &mut rng);
        let seed_out = Mat::randn(m, n, 0.5, &mut rng);

        set_kernel_mode(KernelMode::Naive);
        let mut want = seed_out.clone();
        x.matmul_t_accum(&dy, &mut want);
        set_kernel_mode(KernelMode::Blocked);

        for pool in pools() {
            let mut got = seed_out.clone();
            x.matmul_t_accum_on(&dy, &mut got, &pool);
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "t_accum {r}x{m}ᵀ·{r}x{n} diverged on a {}-thread pool",
                pool.threads()
            );
        }
    }
}

#[test]
fn bt_blocked_is_bit_identical_to_naive_at_any_thread_count() {
    let _guard = mode_guard();
    let mut rng = Rng::seed_from(43);
    for &(m, k, n) in SHAPES {
        let a = Mat::randn(m, k, 1.0, &mut rng);
        let b = Mat::randn(n, k, 1.0, &mut rng);

        set_kernel_mode(KernelMode::Naive);
        let want = a.matmul_bt(&b);
        set_kernel_mode(KernelMode::Blocked);

        for pool in pools() {
            let got = a.matmul_bt_on(&b, &pool);
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "matmul_bt {m}x{k}·({n}x{k})ᵀ diverged on a {}-thread pool",
                pool.threads()
            );
        }
    }
}

/// `max |x−y|` scaled by the largest magnitude in `want` — the right
/// yardstick for reassociation drift, since elementwise relative error is
/// meaningless where a random sum cancels toward zero.
fn drift(want: &Mat, got: &Mat) -> f32 {
    let scale = want.as_slice().iter().fold(1e-30f32, |m, v| m.max(v.abs()));
    want.as_slice()
        .iter()
        .zip(got.as_slice())
        .fold(0.0f32, |m, (w, g)| m.max((w - g).abs()))
        / scale
}

#[test]
fn fast_matmul_is_thread_invariant_and_tracks_the_reference() {
    // The training kernels (`matmul_fast`, `matmul_bt_packed`,
    // `matmul_t_accum_fast`) are allowed to reassociate the reduction (and
    // use FMA), so they are *not* bitwise-comparable to the naive loops —
    // but they must still be bit-identical across thread counts, and in
    // Naive mode they must route to the reference loop exactly.
    let _guard = mode_guard();
    let mut rng = Rng::seed_from(46);
    for &(m, k, n) in SHAPES {
        let a = Mat::randn(m, k, 1.0, &mut rng);
        let b = Mat::randn(k, n, 1.0, &mut rng);

        set_kernel_mode(KernelMode::Naive);
        let mut want = Mat::zeros(m, n);
        a.matmul_into(&b, &mut want);
        let naive_arm = a.matmul_fast(&b);
        assert_eq!(
            want.as_slice(),
            naive_arm.as_slice(),
            "Naive-mode matmul_fast must be the reference loop exactly"
        );
        set_kernel_mode(KernelMode::Blocked);

        let first = a.matmul_fast_on(&b, &pools()[0]);
        assert!(
            drift(&want, &first) < 1e-4,
            "matmul_fast {m}x{k}·{k}x{n} drifted {} from the reference",
            drift(&want, &first)
        );
        for pool in &pools()[1..] {
            let got = a.matmul_fast_on(&b, pool);
            assert_eq!(
                first.as_slice(),
                got.as_slice(),
                "matmul_fast {m}x{k}·{k}x{n} is thread-count dependent"
            );
        }
    }
}

#[test]
fn fast_t_accum_is_thread_invariant_and_tracks_the_reference() {
    let _guard = mode_guard();
    let mut rng = Rng::seed_from(47);
    for &(r, m, n) in SHAPES {
        let x = Mat::randn(r, m, 1.0, &mut rng);
        let dy = Mat::randn(r, n, 1.0, &mut rng);
        let seed_out = Mat::randn(m, n, 0.5, &mut rng);

        set_kernel_mode(KernelMode::Naive);
        let mut want = seed_out.clone();
        x.matmul_t_accum(&dy, &mut want);
        let mut naive_arm = seed_out.clone();
        x.matmul_t_accum_fast(&dy, &mut naive_arm);
        assert_eq!(
            want.as_slice(),
            naive_arm.as_slice(),
            "Naive-mode matmul_t_accum_fast must be the reference loop exactly"
        );
        set_kernel_mode(KernelMode::Blocked);

        let mut first = seed_out.clone();
        x.matmul_t_accum_fast_on(&dy, &mut first, &pools()[0]);
        assert!(
            drift(&want, &first) < 1e-4,
            "t_accum_fast {r}x{m}ᵀ·{r}x{n} drifted {} from the reference",
            drift(&want, &first)
        );
        for pool in &pools()[1..] {
            let mut got = seed_out.clone();
            x.matmul_t_accum_fast_on(&dy, &mut got, pool);
            assert_eq!(
                first.as_slice(),
                got.as_slice(),
                "t_accum_fast {r}x{m}ᵀ·{r}x{n} is thread-count dependent"
            );
        }
    }
}

#[test]
fn bt_packed_is_thread_invariant_and_tracks_the_reference() {
    let _guard = mode_guard();
    let mut rng = Rng::seed_from(48);
    for &(m, k, n) in SHAPES {
        let a = Mat::randn(m, k, 1.0, &mut rng);
        let b = Mat::randn(n, k, 1.0, &mut rng);

        set_kernel_mode(KernelMode::Naive);
        let want = a.matmul_bt(&b);
        let naive_arm = a.matmul_bt_packed(&b);
        assert_eq!(
            want.as_slice(),
            naive_arm.as_slice(),
            "Naive-mode matmul_bt_packed must be the dot-form reference exactly"
        );
        set_kernel_mode(KernelMode::Blocked);

        let first = a.matmul_bt_packed_on(&b, &pools()[0]);
        assert!(
            drift(&want, &first) < 1e-4,
            "bt_packed {m}x{k}·({n}x{k})ᵀ drifted {} from the reference",
            drift(&want, &first)
        );
        for pool in &pools()[1..] {
            let got = a.matmul_bt_packed_on(&b, pool);
            assert_eq!(
                first.as_slice(),
                got.as_slice(),
                "bt_packed {m}x{k}·({n}x{k})ᵀ is thread-count dependent"
            );
        }
    }
}

#[test]
fn global_mode_dispatch_matches_explicit_pool() {
    // The public `matmul_into` under the default Blocked mode routes through
    // the global pool; it must agree with an explicit pool bit-for-bit.
    let _guard = mode_guard();
    set_kernel_mode(KernelMode::Blocked);
    let mut rng = Rng::seed_from(44);
    let a = Mat::randn(37, 53, 1.0, &mut rng);
    let b = Mat::randn(53, 29, 1.0, &mut rng);
    let mut via_global = Mat::zeros(37, 29);
    a.matmul_into(&b, &mut via_global);
    let pool = ThreadPool::new(3);
    let mut via_explicit = Mat::zeros(37, 29);
    a.matmul_into_on(&b, &mut via_explicit, &pool);
    assert_eq!(via_global.as_slice(), via_explicit.as_slice());
}

#[test]
fn zero_skip_is_preserved_so_inf_rows_stay_confined() {
    // The naive loops skip `a[i][k] == 0.0` instead of accumulating
    // `0.0 * b`, which matters when b holds non-finite values
    // (0·inf = NaN). The blocked kernels must skip identically: with one
    // all-zero column of `a` paired against an all-inf row of `b`, every
    // kernel in every mode must produce the same fully finite output.
    let _guard = mode_guard();
    let mut rng = Rng::seed_from(45);
    let (m, k, n) = (9, 13, 11);
    let mut a = Mat::randn(m, k, 1.0, &mut rng);
    let mut b = Mat::randn(k, n, 1.0, &mut rng);
    let poisoned = 5;
    for i in 0..m {
        a.set(i, poisoned, 0.0);
    }
    for j in 0..n {
        b.set(poisoned, j, f32::INFINITY);
    }

    set_kernel_mode(KernelMode::Naive);
    let mut want = Mat::zeros(m, n);
    a.matmul_into(&b, &mut want);
    set_kernel_mode(KernelMode::Blocked);
    assert!(
        want.as_slice().iter().all(|v| v.is_finite()),
        "naive kernel lost its zero-skip"
    );

    for pool in pools() {
        let mut got = Mat::zeros(m, n);
        a.matmul_into_on(&b, &mut got, &pool);
        assert_eq!(want.as_slice(), got.as_slice());
    }

    // Same discipline for the transposed-accumulate kernel: a zero column
    // of x must skip the matching inf row of dy.
    let mut x = Mat::randn(m, k, 1.0, &mut rng);
    let mut dy = Mat::randn(m, n, 1.0, &mut rng);
    for i in 0..m {
        x.set(i, poisoned, 0.0);
    }
    for j in 0..n {
        dy.set(3, j, f32::INFINITY);
    }
    x.set(3, poisoned, 0.0); // already zero via the column loop; explicit for clarity

    set_kernel_mode(KernelMode::Naive);
    let mut want_t = Mat::zeros(k, n);
    x.matmul_t_accum(&dy, &mut want_t);
    set_kernel_mode(KernelMode::Blocked);
    assert!(want_t.row(poisoned).iter().all(|v| v.is_finite()));

    for pool in pools() {
        let mut got_t = Mat::zeros(k, n);
        x.matmul_t_accum_on(&dy, &mut got_t, &pool);
        assert_eq!(want_t.as_slice(), got_t.as_slice());
    }
}

#[test]
fn gradcheck_passes_with_a_multithreaded_global_pool() {
    // Finite-difference gradcheck through attention (the heaviest GEMM
    // consumer) with the global pool asked to run 4 threads. `configure` is
    // first-writer-wins, so if another test already initialized the pool we
    // still run the check — the kernels are bit-exact at any width, which
    // is exactly the property that makes this safe.
    let threads = pool::configure(4);
    assert!(threads >= 1);
    let mut attn = SelfAttention::new(8, 2, &mut Rng::seed_from(7));
    let x = Mat::randn(6, 8, 1.0, &mut Rng::seed_from(8));
    let report = GradCheck {
        samples_per_param: 10,
        seed: 2,
        ..GradCheck::default()
    }
    .run(&mut attn, &|a, f| a.visit_params(f), &mut |a| {
        let y = a.forward(&x, 2, 3);
        let mut loss = 0.0;
        let mut d = Mat::zeros(y.rows(), y.cols());
        for (i, (dv, &yv)) in d.as_mut_slice().iter_mut().zip(y.as_slice()).enumerate() {
            let w = (i as f32).sin();
            *dv = w;
            loss += yv * w;
        }
        let _ = a.backward(&d);
        loss
    });
    assert!(report.max_rel < 1e-2, "{report:?}");
}
