//! Property-based tests for the nn substrate's algebra and numerics.

use pagpass_nn::{softmax_in_place, Gpt, GptConfig, Mat, Rng};
use proptest::prelude::*;

fn small_mat(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f32..3.0, r * c)
            .prop_map(move |data| Mat::from_rows(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matmul distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes(seed in 0u64..1000, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        let mut rng = Rng::seed_from(seed);
        let a = Mat::randn(m, k, 1.0, &mut rng);
        let b = Mat::randn(m, k, 1.0, &mut rng);
        let c = Mat::randn(k, n, 1.0, &mut rng);
        let mut ab = a.clone();
        ab.add_assign(&b);
        let lhs = ab.matmul(&c);
        let mut rhs = a.matmul(&c);
        rhs.add_assign(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// `A·Bᵀ` equals transposing manually.
    #[test]
    fn matmul_bt_consistent(seed in 0u64..1000, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        let mut rng = Rng::seed_from(seed);
        let a = Mat::randn(m, k, 1.0, &mut rng);
        let b = Mat::randn(n, k, 1.0, &mut rng);
        let mut bt = Mat::zeros(k, n);
        for i in 0..n {
            for j in 0..k {
                bt.set(j, i, b.get(i, j));
            }
        }
        let fast = a.matmul_bt(&b);
        let slow = a.matmul(&bt);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Softmax output is a probability vector and order-preserving.
    #[test]
    fn softmax_properties(mut v in proptest::collection::vec(-20.0f32..20.0, 1..16)) {
        let original = v.clone();
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
        for i in 0..v.len() {
            for j in 0..v.len() {
                if original[i] > original[j] {
                    prop_assert!(v[i] >= v[j]);
                }
            }
        }
    }

    /// Scaling then adding matches fused arithmetic on raw data.
    #[test]
    fn mat_linear_ops(m in small_mat(5), s in -2.0f32..2.0) {
        let mut scaled = m.clone();
        scaled.scale(s);
        for (a, b) in scaled.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b * s).abs() < 1e-5);
        }
        let mut summed = m.clone();
        summed.add_assign(&m);
        for (a, b) in summed.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - 2.0 * b).abs() < 1e-5);
        }
    }

    /// Serialization roundtrips preserve next-token logits bit-for-bit.
    #[test]
    fn gpt_serialization_roundtrip(seed in 0u64..100) {
        let mut model = Gpt::new(
            GptConfig { vocab_size: 11, ctx_len: 8, dim: 8, n_layers: 1, n_heads: 2 },
            &mut Rng::seed_from(seed),
        );
        let restored = Gpt::from_bytes(model.to_bytes()).unwrap();
        prop_assert_eq!(model.next_token_logits(&[1, 2, 3]), restored.next_token_logits(&[1, 2, 3]));
    }

    /// Decode is prefix-consistent: feeding the same prefix twice yields
    /// identical logits regardless of what other batches ran before.
    #[test]
    fn decode_is_stateless_across_sessions(seed in 0u64..100, toks in proptest::collection::vec(0u32..11, 1..6)) {
        let model = Gpt::new(
            GptConfig { vocab_size: 11, ctx_len: 8, dim: 8, n_layers: 1, n_heads: 2 },
            &mut Rng::seed_from(seed),
        );
        let a = model.next_token_logits(&toks);
        let _ = model.next_token_logits(&[5, 5, 5]);
        let b = model.next_token_logits(&toks);
        prop_assert_eq!(a, b);
    }
}
