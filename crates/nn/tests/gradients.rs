//! Finite-difference verification of every hand-written backward pass.
//!
//! These tests are the load-bearing correctness proof for the substrate: if
//! they pass, the training loop optimizes the true cross-entropy gradient.

use pagpass_nn::gradcheck::GradCheck;
use pagpass_nn::{Embedding, Gpt, GptConfig, LayerNorm, Linear, Mat, Mlp, Rng, SelfAttention};

/// A loss that weighs each output element differently, so gradient errors
/// cannot cancel: loss = Σ y_i · w_i with w_i = sin(i).
fn weighted_loss(y: &Mat) -> (f32, Mat) {
    let mut d = Mat::zeros(y.rows(), y.cols());
    let mut loss = 0.0;
    for (i, (dv, &yv)) in d.as_mut_slice().iter_mut().zip(y.as_slice()).enumerate() {
        let w = (i as f32).sin();
        *dv = w;
        loss += yv * w;
    }
    (loss, d)
}

#[test]
fn linear_gradients() {
    let mut layer = Linear::new(5, 4, &mut Rng::seed_from(1));
    let x = Mat::randn(6, 5, 1.0, &mut Rng::seed_from(2));
    let report = GradCheck::default().run(&mut layer, &|l, f| l.visit_params(f), &mut |l| {
        let y = l.forward(&x);
        let (loss, d) = weighted_loss(&y);
        let _ = l.backward(&d);
        loss
    });
    assert!(report.checked >= 8);
    assert_eq!(report.failures, 0, "{report:?}");
}

#[test]
fn layernorm_gradients() {
    let mut ln = LayerNorm::new(8);
    // Non-trivial gamma/beta so their gradients are exercised.
    let mut rng = Rng::seed_from(3);
    let x = Mat::randn(5, 8, 2.0, &mut rng);
    let report = GradCheck {
        samples_per_param: 8,
        seed: 1,
        ..GradCheck::default()
    }
    .run(&mut ln, &|l, f| l.visit_params(f), &mut |l| {
        let y = l.forward(&x);
        let (loss, d) = weighted_loss(&y);
        let _ = l.backward(&d);
        loss
    });
    assert!(report.max_rel < 5e-3, "{report:?}");
}

#[test]
fn layernorm_input_gradient() {
    // Check dX by wrapping the input as the "parameter" of a tiny adapter.
    struct WithInput {
        ln: LayerNorm,
        x: pagpass_nn::Param,
    }
    let mut model = WithInput {
        ln: LayerNorm::new(6),
        x: pagpass_nn::Param::new(Mat::randn(4, 6, 1.5, &mut Rng::seed_from(4)), false),
    };
    let report = GradCheck::default().run(&mut model, &|m, f| f(&mut m.x), &mut |m| {
        m.x.zero_grad();
        let y = m.ln.forward(&m.x.value);
        let (loss, d) = weighted_loss(&y);
        let dx = m.ln.backward(&d);
        m.x.grad.add_assign(&dx);
        loss
    });
    assert!(report.max_rel < 5e-3, "{report:?}");
}

#[test]
fn mlp_gradients() {
    let mut mlp = Mlp::new(6, &mut Rng::seed_from(5));
    let x = Mat::randn(4, 6, 1.0, &mut Rng::seed_from(6));
    let report = GradCheck::default().run(&mut mlp, &|m, f| m.visit_params(f), &mut |m| {
        let y = m.forward(&x);
        let (loss, d) = weighted_loss(&y);
        let _ = m.backward(&d);
        loss
    });
    assert!(report.max_rel < 1e-2, "{report:?}");
}

#[test]
fn attention_gradients() {
    let mut attn = SelfAttention::new(8, 2, &mut Rng::seed_from(7));
    let x = Mat::randn(6, 8, 1.0, &mut Rng::seed_from(8));
    let report = GradCheck {
        samples_per_param: 10,
        seed: 2,
        ..GradCheck::default()
    }
    .run(&mut attn, &|a, f| a.visit_params(f), &mut |a| {
        let y = a.forward(&x, 2, 3);
        let (loss, d) = weighted_loss(&y);
        let _ = a.backward(&d);
        loss
    });
    assert!(report.max_rel < 1e-2, "{report:?}");
}

#[test]
fn attention_input_gradient() {
    struct WithInput {
        attn: SelfAttention,
        x: pagpass_nn::Param,
    }
    let mut model = WithInput {
        attn: SelfAttention::new(8, 2, &mut Rng::seed_from(9)),
        x: pagpass_nn::Param::new(Mat::randn(8, 8, 1.0, &mut Rng::seed_from(10)), false),
    };
    let report = GradCheck::default().run(&mut model, &|m, f| f(&mut m.x), &mut |m| {
        m.x.zero_grad();
        let y = m.attn.forward(&m.x.value, 2, 4);
        let (loss, d) = weighted_loss(&y);
        let dx = m.attn.backward(&d);
        m.x.grad.add_assign(&dx);
        loss
    });
    assert!(report.max_rel < 1e-2, "{report:?}");
}

#[test]
fn embedding_gradients() {
    let mut emb = Embedding::new(7, 5, &mut Rng::seed_from(11));
    let ids = [0u32, 3, 3, 6, 1];
    let report = GradCheck::default().run(&mut emb, &|e, f| e.visit_params(f), &mut |e| {
        let y = e.forward(&ids);
        let (loss, d) = weighted_loss(&y);
        e.backward(&d);
        loss
    });
    assert!(report.max_rel < 5e-3, "{report:?}");
}

#[test]
fn full_gpt_cross_entropy_gradients() {
    // The decisive test: the whole model, through the fused softmax
    // cross-entropy, matches finite differences.
    let mut model = Gpt::new(
        GptConfig {
            vocab_size: 9,
            ctx_len: 6,
            dim: 8,
            n_layers: 2,
            n_heads: 2,
        },
        &mut Rng::seed_from(12),
    );
    // GPT-2 init keeps embeddings at std 0.02, which puts LayerNorm in a
    // violently curved regime where finite differences are meaningless;
    // scale to O(0.1) activations for a well-conditioned check.
    model.visit_params(&mut |p| p.value.scale(5.0));
    let tokens: Vec<u32> = vec![1, 4, 2, 8, 0, 3, 5, 1, 7, 2, 4, 6]; // b=2, t=6
    let report = GradCheck {
        eps: 5e-3,
        samples_per_param: 6,
        seed: 3,
        ..GradCheck::default()
    }
    .run(&mut model, &|m, f| m.visit_params(f), &mut |m| {
        m.compute_grads(&tokens, 2, 6, None)
    });
    assert!(report.checked > 50);
    assert_eq!(report.failures, 0, "{report:?}");
}

#[test]
fn full_gpt_gradients_with_ignore_index() {
    let mut model = Gpt::new(
        GptConfig {
            vocab_size: 9,
            ctx_len: 5,
            dim: 8,
            n_layers: 1,
            n_heads: 2,
        },
        &mut Rng::seed_from(13),
    );
    model.visit_params(&mut |p| p.value.scale(5.0));
    let tokens: Vec<u32> = vec![1, 4, 2, 8, 8, 3, 5, 1, 8, 8]; // 8 = PAD
    let report = GradCheck {
        eps: 5e-3,
        samples_per_param: 6,
        seed: 4,
        ..GradCheck::default()
    }
    .run(&mut model, &|m, f| m.visit_params(f), &mut |m| {
        m.compute_grads(&tokens, 2, 5, Some(8))
    });
    assert_eq!(report.failures, 0, "{report:?}");
}
