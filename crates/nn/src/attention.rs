use serde::{Deserialize, Serialize};

use crate::layers::QLinear;
use crate::mat::{axpy, dot};
use crate::sampling::{softmax_in_place, softmax_in_place_fast};
use crate::{Linear, Mat, Param, Rng};

/// Causal multi-head self-attention with manual backprop and KV-cached
/// incremental decoding — the core of the GPT-2 block (paper §III-B).
///
/// Training uses [`forward`](Self::forward)/[`backward`](Self::backward)
/// over whole sequences; generation uses [`step`](Self::step), which
/// processes one token per sequence against a [`KvCache`] so sampling a
/// token costs `O(T)` instead of `O(T²)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelfAttention {
    /// Fused query/key/value projection, `dim → 3·dim`.
    pub qkv: Linear,
    /// Output projection, `dim → dim`.
    pub proj: Linear,
    n_heads: usize,
    #[serde(skip)]
    cache: Option<TrainCache>,
}

#[derive(Debug, Clone)]
struct TrainCache {
    b: usize,
    t: usize,
    q: Mat,
    k: Mat,
    v: Mat,
    /// Softmax probabilities, one `t × t` matrix per `(batch, head)`.
    probs: Vec<Mat>,
}

impl SelfAttention {
    /// Creates an attention layer over `dim` features with `n_heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `n_heads`.
    #[must_use]
    pub fn new(dim: usize, n_heads: usize, rng: &mut Rng) -> SelfAttention {
        assert!(
            dim.is_multiple_of(n_heads),
            "dim must be divisible by n_heads"
        );
        SelfAttention {
            qkv: Linear::new(dim, 3 * dim, rng),
            proj: Linear::new(dim, dim, rng),
            n_heads,
            cache: None,
        }
    }

    /// Number of attention heads.
    #[must_use]
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    fn dim(&self) -> usize {
        self.proj.in_dim()
    }

    /// Training forward pass over `b` sequences of `t` tokens
    /// (`x` is `(b·t) × dim`), caching activations for `backward`.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != b * t`.
    #[must_use]
    pub fn forward(&mut self, x: &Mat, b: usize, t: usize) -> Mat {
        assert_eq!(x.rows(), b * t, "x must hold b*t rows");
        let c = self.dim();
        let h = self.n_heads;
        let d = c / h;
        let scale = 1.0 / (d as f32).sqrt();

        let qkv = self.qkv.forward(x);
        let (mut q, mut k, mut v) = (
            Mat::zeros(b * t, c),
            Mat::zeros(b * t, c),
            Mat::zeros(b * t, c),
        );
        for r in 0..b * t {
            let row = qkv.row(r);
            q.row_mut(r).copy_from_slice(&row[0..c]);
            k.row_mut(r).copy_from_slice(&row[c..2 * c]);
            v.row_mut(r).copy_from_slice(&row[2 * c..3 * c]);
        }

        // Each head is a pair of small GEMMs over contiguous t×d packs
        // instead of per-element dot loops: packing costs O(t·d) copies and
        // buys the cache-blocked kernels' throughput on the O(t²·d) math.
        // Masked score entries are set to -inf before softmax exactly like
        // the loop form did, and the resulting zeros above the diagonal make
        // the P·V product skip them via the kernels' zero-skip rule.
        let mut out = Mat::zeros(b * t, c);
        let mut probs = Vec::with_capacity(b * h);
        for bi in 0..b {
            for hi in 0..h {
                let col = hi * d;
                let q_h = pack_head(&q, bi * t, t, col, d);
                let k_h = pack_head(&k, bi * t, t, col, d);
                let v_h = pack_head(&v, bi * t, t, col, d);
                let mut p = q_h.matmul_bt_packed(&k_h);
                p.scale(scale);
                for i in 0..t {
                    let prow = p.row_mut(i);
                    // Causal mask: positions after i get -inf before softmax.
                    for pj in prow.iter_mut().skip(i + 1) {
                        *pj = f32::NEG_INFINITY;
                    }
                    softmax_in_place(prow);
                }
                let out_h = p.matmul_fast(&v_h);
                unpack_head(&mut out, &out_h, bi * t, col);
                probs.push(p);
            }
        }
        let y = self.proj.forward(&out);
        self.cache = Some(TrainCache {
            b,
            t,
            q,
            k,
            v,
            probs,
        });
        y
    }

    /// Backward pass; returns `dX` and accumulates projection gradients.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`forward`](Self::forward).
    #[must_use]
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let cache = self
            .cache
            .take()
            // LINT-ALLOW: no-unwrap-in-lib trainer API contract: forward
            // always precedes backward, documented as a panic above
            .expect("backward requires a cached forward");
        let TrainCache {
            b,
            t,
            q,
            k,
            v,
            probs,
        } = cache;
        let c = self.dim();
        let h = self.n_heads;
        let d = c / h;
        let scale = 1.0 / (d as f32).sqrt();

        let dout = self.proj.backward(dy);
        let mut dq = Mat::zeros(b * t, c);
        let mut dk = Mat::zeros(b * t, c);
        let mut dv = Mat::zeros(b * t, c);

        // Mirror of the packed-GEMM forward: every per-head product is a
        // small GEMM over contiguous t×d packs. `dp`'s above-diagonal
        // entries come out of the GEMM as garbage (the forward never
        // computed those scores); the softmax-backward loop overwrites them
        // with the zeros the math requires, and the zero-skip rule then
        // drops them from the dQ/dK products.
        for bi in 0..b {
            for hi in 0..h {
                let col = hi * d;
                let p = &probs[bi * h + hi];
                let q_h = pack_head(&q, bi * t, t, col, d);
                let k_h = pack_head(&k, bi * t, t, col, d);
                let v_h = pack_head(&v, bi * t, t, col, d);
                let do_h = pack_head(&dout, bi * t, t, col, d);
                // dp[i][j] = dout_i · v_j; dv_j = Σ_i p[i][j] dout_i
                let mut dp = do_h.matmul_bt_packed(&v_h);
                let mut dv_h = Mat::zeros(t, d);
                p.matmul_t_accum_fast(&do_h, &mut dv_h);
                // Softmax backward per row: ds = p ∘ (dp - Σ dp∘p)
                for i in 0..t {
                    let pi = p.row(i);
                    let dpi = dp.row_mut(i);
                    let mut dot_dp_p = 0.0f32;
                    for j in 0..=i {
                        dot_dp_p += dpi[j] * pi[j];
                    }
                    for j in 0..=i {
                        dpi[j] = pi[j] * (dpi[j] - dot_dp_p) * scale;
                    }
                    for dpj in dpi.iter_mut().skip(i + 1) {
                        *dpj = 0.0;
                    }
                }
                // dq_i = Σ_j ds[i][j] k_j ; dk_j = Σ_i ds[i][j] q_i
                let dq_h = dp.matmul_fast(&k_h);
                let mut dk_h = Mat::zeros(t, d);
                dp.matmul_t_accum_fast(&q_h, &mut dk_h);
                unpack_head(&mut dq, &dq_h, bi * t, col);
                unpack_head(&mut dk, &dk_h, bi * t, col);
                unpack_head(&mut dv, &dv_h, bi * t, col);
            }
        }

        // Reassemble the fused qkv gradient and push through the projection.
        let mut dqkv = Mat::zeros(b * t, 3 * c);
        for r in 0..b * t {
            let row = dqkv.row_mut(r);
            row[0..c].copy_from_slice(dq.row(r));
            row[c..2 * c].copy_from_slice(dk.row(r));
            row[2 * c..3 * c].copy_from_slice(dv.row(r));
        }
        self.qkv.backward(&dqkv)
    }

    /// Incremental decode step: `x` holds one token activation per sequence
    /// (`batch × dim` at position `cache.len()`); appends K/V to `cache` and
    /// returns the attended output (`batch × dim`).
    ///
    /// # Panics
    ///
    /// Panics if the cache belongs to a different batch size or is full.
    #[must_use]
    pub fn step(&self, x: &Mat, cache: &mut KvCache) -> Mat {
        self.step_with(None, x, cache)
    }

    /// [`step`](Self::step) with the two projections optionally swapped for
    /// their packed int8 twins. The attention math between them —
    /// scores, softmax, weighted value sum — is the same f32 code either
    /// way; only the `qkv` and output projections change.
    ///
    /// # Panics
    ///
    /// Panics if the cache belongs to a different batch size or is full.
    #[must_use]
    pub fn step_with(&self, quant: Option<&QSelfAttention>, x: &Mat, cache: &mut KvCache) -> Mat {
        let c = self.dim();
        let h = self.n_heads;
        let d = c / h;
        let scale = 1.0 / (d as f32).sqrt();
        let b = cache.batch;
        assert_eq!(x.rows(), b, "batch size must match the cache");
        assert!(cache.len < cache.ctx, "KV cache is full");

        let qkv = match quant {
            Some(q) => q.qkv.apply(x),
            None => self.qkv.apply(x),
        };
        let t_new = cache.len;
        for bi in 0..b {
            let row = qkv.row(bi);
            cache.k_row_mut(bi, t_new).copy_from_slice(&row[c..2 * c]);
            cache
                .v_row_mut(bi, t_new)
                .copy_from_slice(&row[2 * c..3 * c]);
        }

        let mut out = Mat::zeros(b, c);
        let mut scores = vec![0.0f32; t_new + 1];
        for bi in 0..b {
            let qrow = &qkv.row(bi)[0..c];
            for hi in 0..h {
                let col = hi * d;
                let qh = &qrow[col..col + d];
                for (j, s) in scores.iter_mut().enumerate() {
                    *s = dot(qh, &cache.k_row(bi, j)[col..col + d]) * scale;
                }
                // The quantized arm softmaxes through `fast_exp`: bounded
                // by that mode's accuracy budget, pinned by its goldens.
                // The f32 arm must keep libm `exp` bits exactly.
                if quant.is_some() {
                    softmax_in_place_fast(&mut scores);
                } else {
                    softmax_in_place(&mut scores);
                }
                let orow = &mut out.row_mut(bi)[col..col + d];
                for (j, &p) in scores.iter().enumerate() {
                    axpy(orow, p, &cache.v_row(bi, j)[col..col + d]);
                }
            }
        }
        match quant {
            Some(q) => q.proj.apply(&out),
            None => self.proj.apply(&out),
        }
    }

    /// Packs both projections for quantized decode.
    #[must_use]
    pub fn quantize(&self) -> QSelfAttention {
        QSelfAttention {
            qkv: self.qkv.quantize(),
            proj: self.proj.quantize(),
        }
    }

    /// Visits all parameters (optimizer hook).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.qkv.visit_params(f);
        self.proj.visit_params(f);
    }
}

/// [`SelfAttention`]'s quantized twin: both projections packed once; heads,
/// masking, and the KV cache stay in f32 on the [`SelfAttention`] that built
/// it.
#[derive(Debug, Clone)]
pub struct QSelfAttention {
    /// Packed fused query/key/value projection.
    pub qkv: QLinear,
    /// Packed output projection.
    pub proj: QLinear,
}

/// Copies the `d` head columns starting at `col` of rows `[row0, row0+t)`
/// into a contiguous `t×d` matrix so the per-head attention products can
/// run through the cache-blocked GEMM kernels.
fn pack_head(src: &Mat, row0: usize, t: usize, col: usize, d: usize) -> Mat {
    let mut out = Mat::zeros(t, d);
    for i in 0..t {
        out.row_mut(i)
            .copy_from_slice(&src.row(row0 + i)[col..col + d]);
    }
    out
}

/// Writes a packed `t×d` head matrix back into `dst`'s head columns.
fn unpack_head(dst: &mut Mat, src: &Mat, row0: usize, col: usize) {
    let d = src.cols();
    for i in 0..src.rows() {
        dst.row_mut(row0 + i)[col..col + d].copy_from_slice(src.row(i));
    }
}

/// Per-layer key/value cache for batched incremental decoding.
///
/// Stores keys and values for `batch` parallel sequences up to `ctx`
/// positions. One cache belongs to one attention layer; [`crate::Gpt`]
/// bundles one per layer.
#[derive(Debug, Clone)]
pub struct KvCache {
    batch: usize,
    ctx: usize,
    dim: usize,
    len: usize,
    k: Vec<f32>,
    v: Vec<f32>,
}

impl KvCache {
    /// Creates an empty cache for `batch` sequences of up to `ctx` tokens
    /// with `dim` features.
    #[must_use]
    pub fn new(batch: usize, ctx: usize, dim: usize) -> KvCache {
        KvCache {
            batch,
            ctx,
            dim,
            len: 0,
            k: vec![0.0; batch * ctx * dim],
            v: vec![0.0; batch * ctx * dim],
        }
    }

    /// Number of cached positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions are cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of parallel sequences.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Maximum number of positions.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ctx
    }

    /// Marks one more position as filled (call after every layer has
    /// appended its K/V for the current position).
    ///
    /// # Panics
    ///
    /// Panics if the cache is already full.
    pub fn advance(&mut self) {
        assert!(self.len < self.ctx, "KV cache is full");
        self.len += 1;
    }

    /// Resets to empty without deallocating.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Rewinds the cache to its first `len` positions.
    ///
    /// K/V rows past `len` are left in place but become unreachable:
    /// [`step`](SelfAttention::step) writes position `t` at row `t`, so a
    /// later re-fill overwrites them before they are read again. Because a
    /// cached K/V row is a pure function of the token/position embeddings
    /// and the rows before it, rewinding and re-feeding different tokens
    /// yields bit-identical state to a fresh decode of the new sequence.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current length (truncation only moves
    /// backwards; use [`advance`](Self::advance) to grow).
    pub fn truncate_to(&mut self, len: usize) {
        assert!(
            len <= self.len,
            "cannot truncate a KV cache forward ({} -> {len})",
            self.len
        );
        self.len = len;
    }

    /// Replicates a single-sequence cache across `batch` parallel rows.
    ///
    /// Every output row holds the same K/V values, which is exactly what
    /// feeding the same prefix to each row of a batch-`batch` decode
    /// produces — the attention step is row-independent — so broadcasting
    /// is bit-identical to priming each row separately.
    ///
    /// # Panics
    ///
    /// Panics if this cache holds more than one sequence.
    #[must_use]
    pub fn broadcast(&self, batch: usize) -> KvCache {
        assert_eq!(self.batch, 1, "broadcast requires a single-sequence cache");
        let mut out = KvCache::new(batch, self.ctx, self.dim);
        out.len = self.len;
        let filled = self.len * self.dim;
        for b in 0..batch {
            let o = b * self.ctx * self.dim;
            out.k[o..o + filled].copy_from_slice(&self.k[..filled]);
            out.v[o..o + filled].copy_from_slice(&self.v[..filled]);
        }
        out
    }

    fn k_row(&self, b: usize, t: usize) -> &[f32] {
        let o = (b * self.ctx + t) * self.dim;
        &self.k[o..o + self.dim]
    }

    fn k_row_mut(&mut self, b: usize, t: usize) -> &mut [f32] {
        let o = (b * self.ctx + t) * self.dim;
        &mut self.k[o..o + self.dim]
    }

    fn v_row(&self, b: usize, t: usize) -> &[f32] {
        let o = (b * self.ctx + t) * self.dim;
        &self.v[o..o + self.dim]
    }

    fn v_row_mut(&mut self, b: usize, t: usize) -> &mut [f32] {
        let o = (b * self.ctx + t) * self.dim;
        &mut self.v[o..o + self.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = Rng::seed_from(1);
        let mut attn = SelfAttention::new(8, 2, &mut rng);
        let x = Mat::randn(6, 8, 1.0, &mut rng);
        let y1 = attn.forward(&x, 2, 3);
        let y2 = attn.forward(&x, 2, 3);
        assert_eq!((y1.rows(), y1.cols()), (6, 8));
        assert_eq!(y1.as_slice(), y2.as_slice());
    }

    #[test]
    fn causality_later_tokens_do_not_affect_earlier_outputs() {
        let mut rng = Rng::seed_from(2);
        let mut attn = SelfAttention::new(8, 2, &mut rng);
        let x1 = Mat::randn(4, 8, 1.0, &mut rng);
        let mut x2 = x1.clone();
        // Perturb only the last token.
        for v in x2.row_mut(3) {
            *v += 1.0;
        }
        let y1 = attn.forward(&x1, 1, 4);
        let y2 = attn.forward(&x2, 1, 4);
        for r in 0..3 {
            for (a, b) in y1.row(r).iter().zip(y2.row(r)) {
                assert!((a - b).abs() < 1e-6, "row {r} changed");
            }
        }
        // The last row must change (sanity that attention is not constant).
        let changed = y1
            .row(3)
            .iter()
            .zip(y2.row(3))
            .any(|(a, b)| (a - b).abs() > 1e-4);
        assert!(changed);
    }

    #[test]
    fn sequences_in_a_batch_are_independent() {
        let mut rng = Rng::seed_from(3);
        let mut attn = SelfAttention::new(8, 2, &mut rng);
        let a = Mat::randn(3, 8, 1.0, &mut rng);
        let b = Mat::randn(3, 8, 1.0, &mut rng);
        // Batch [a; b] vs [a; a]: first sequence's output must be identical.
        let mut ab = Mat::zeros(6, 8);
        let mut aa = Mat::zeros(6, 8);
        for r in 0..3 {
            ab.row_mut(r).copy_from_slice(a.row(r));
            aa.row_mut(r).copy_from_slice(a.row(r));
            ab.row_mut(3 + r).copy_from_slice(b.row(r));
            aa.row_mut(3 + r).copy_from_slice(a.row(r));
        }
        let y_ab = attn.forward(&ab, 2, 3);
        let y_aa = attn.forward(&aa, 2, 3);
        for r in 0..3 {
            for (x, y) in y_ab.row(r).iter().zip(y_aa.row(r)) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn step_matches_full_forward() {
        let mut rng = Rng::seed_from(4);
        let mut attn = SelfAttention::new(8, 2, &mut rng);
        let t = 5;
        let x = Mat::randn(t, 8, 1.0, &mut rng);
        let full = attn.forward(&x, 1, t);
        let mut cache = KvCache::new(1, t, 8);
        for i in 0..t {
            let xi = Mat::from_rows(1, 8, x.row(i).to_vec());
            let yi = attn.step(&xi, &mut cache);
            cache.advance();
            for (a, b) in yi.row(0).iter().zip(full.row(i)) {
                assert!((a - b).abs() < 1e-4, "position {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn batched_step_matches_single_steps() {
        let mut rng = Rng::seed_from(5);
        let attn = SelfAttention::new(8, 2, &mut Rng::seed_from(40));
        let xs: Vec<Mat> = (0..3).map(|_| Mat::randn(1, 8, 1.0, &mut rng)).collect();
        // Batched.
        let mut batched = Mat::zeros(3, 8);
        for (i, x) in xs.iter().enumerate() {
            batched.row_mut(i).copy_from_slice(x.row(0));
        }
        let mut cache_b = KvCache::new(3, 4, 8);
        let yb = attn.step(&batched, &mut cache_b);
        // Individually.
        for (i, x) in xs.iter().enumerate() {
            let mut cache_1 = KvCache::new(1, 4, 8);
            let y1 = attn.step(x, &mut cache_1);
            for (a, b) in y1.row(0).iter().zip(yb.row(i)) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn kv_cache_lifecycle() {
        let mut c = KvCache::new(2, 3, 4);
        assert!(c.is_empty());
        assert_eq!(c.batch(), 2);
        assert_eq!(c.capacity(), 3);
        c.advance();
        c.advance();
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "full")]
    fn kv_cache_overflow_panics() {
        let mut c = KvCache::new(1, 1, 4);
        c.advance();
        c.advance();
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn dim_must_divide_heads() {
        let _ = SelfAttention::new(7, 2, &mut Rng::seed_from(0));
    }
}
