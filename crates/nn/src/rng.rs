use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic random-number generator used for weight initialization and
/// sampling.
///
/// A thin wrapper over [`rand::rngs::StdRng`] adding the Gaussian draws the
/// substrate needs (via Box–Muller, so no extra dependency) while keeping
/// the full [`RngCore`] interface available.
///
/// # Examples
///
/// ```
/// use pagpass_nn::Rng;
///
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
    /// Spare Gaussian value from the last Box–Muller pair.
    spare: Option<f32>,
}

impl Rng {
    /// Creates an RNG from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Rng {
        Rng {
            inner: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// A uniform draw in `[0, 1)`.
    #[must_use]
    pub fn uniform(&mut self) -> f32 {
        // 24 high bits give a uniformly distributed f32 in [0, 1).
        (self.inner.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A standard-normal draw (Box–Muller).
    #[must_use]
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1 = self.uniform();
            if u1 <= f32::EPSILON {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[must_use]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.inner.next_u64() % bound as u64) as usize
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

impl RngCore for Rng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.below(17), b.below(17));
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::seed_from(2);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed_from(3);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::seed_from(4);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        let _ = Rng::seed_from(0).below(0);
    }
}
