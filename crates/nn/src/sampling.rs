use crate::fastmath::fast_exp;
use crate::Rng;

/// In-place numerically-stable softmax over a slice.
///
/// `-inf` entries (masked positions) get probability exactly 0.
///
/// # Examples
///
/// ```
/// use pagpass_nn::softmax_in_place;
///
/// let mut v = [0.0, 0.0, f32::NEG_INFINITY];
/// softmax_in_place(&mut v);
/// assert!((v[0] - 0.5).abs() < 1e-6);
/// assert_eq!(v[2], 0.0);
/// ```
pub fn softmax_in_place(logits: &mut [f32]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // Fully masked row: leave a uniform distribution rather than NaNs.
        let p = 1.0 / logits.len() as f32;
        logits.fill(p);
        return;
    }
    let mut sum = 0.0f32;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in logits.iter_mut() {
        *v /= sum;
    }
}

/// [`softmax_in_place`] with libm `exp` swapped for
/// [`fast_exp`](crate::fast_exp) — same max-subtraction, accumulation, and
/// normalization order, so the result is a deterministic function of the
/// input bits. Quantized-decode only: ~5e-5 relative error per entry, far
/// inside that mode's accuracy budget, where the f32 path must keep libm
/// bits exactly.
pub fn softmax_in_place_fast(logits: &mut [f32]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        let p = 1.0 / logits.len() as f32;
        logits.fill(p);
        return;
    }
    let mut sum = 0.0f32;
    for v in logits.iter_mut() {
        // `-inf - max` stays `-inf`; the clamp inside `fast_exp` turns it
        // into e^-87 ≈ 1.6e-38 rather than exactly 0 — close enough for
        // masked attention scores, which this mode never exposes as exact
        // zeros anyway.
        *v = fast_exp(*v - max);
        sum += *v;
    }
    for v in logits.iter_mut() {
        *v /= sum;
    }
}

/// Index of the largest element (first on ties).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Samples an index from unnormalized logits with `temperature`.
///
/// `temperature == 0.0` degenerates to [`argmax`]. The slice is consumed as
/// scratch space (softmax is applied in place).
///
/// # Panics
///
/// Panics on an empty slice or negative temperature.
#[must_use]
pub fn sample_categorical(logits: &mut [f32], temperature: f32, rng: &mut Rng) -> usize {
    assert!(!logits.is_empty(), "cannot sample from empty logits");
    assert!(temperature >= 0.0, "temperature must be non-negative");
    if temperature == 0.0 {
        return argmax(logits);
    }
    if temperature != 1.0 {
        for v in logits.iter_mut() {
            if *v != f32::NEG_INFINITY {
                *v /= temperature;
            }
        }
    }
    softmax_in_place(logits);
    sample_from_probs(logits, rng)
}

/// Samples an index from logits restricted to `allowed` indices; everything
/// else is masked out. Used for PassGPT's guided generation, where the
/// pattern forces the next token's character class, and for D&C-GEN leaf
/// sampling.
///
/// # Panics
///
/// Panics if `allowed` is empty or contains out-of-range indices.
#[must_use]
pub fn sample_masked(
    logits: &mut [f32],
    allowed: &[u32],
    temperature: f32,
    rng: &mut Rng,
) -> usize {
    assert!(!allowed.is_empty(), "allowed set must be non-empty");
    let mut mask = vec![true; logits.len()];
    for &a in allowed {
        mask[a as usize] = false;
    }
    for (v, &m) in logits.iter_mut().zip(&mask) {
        if m {
            *v = f32::NEG_INFINITY;
        }
    }
    // If the model itself assigned -inf to every allowed token, fall back to
    // a uniform choice over the allowed set (never over masked tokens).
    if logits.iter().all(|&v| v == f32::NEG_INFINITY) {
        for &a in allowed {
            logits[a as usize] = 0.0;
        }
    }
    sample_categorical(logits, temperature, rng)
}

/// Samples with top-`k` truncation: only the `k` highest logits stay
/// eligible. `k == 0` (or `k >= len`) disables truncation.
///
/// # Panics
///
/// Panics on an empty slice or negative temperature.
#[must_use]
pub fn sample_top_k(logits: &mut [f32], k: usize, temperature: f32, rng: &mut Rng) -> usize {
    assert!(!logits.is_empty(), "cannot sample from empty logits");
    if k > 0 && k < logits.len() {
        let mut sorted: Vec<f32> = logits.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let cutoff = sorted[k - 1];
        for v in logits.iter_mut() {
            if *v < cutoff {
                *v = f32::NEG_INFINITY;
            }
        }
    }
    sample_categorical(logits, temperature, rng)
}

/// Nucleus (top-`p`) sampling: the smallest set of tokens whose cumulative
/// probability reaches `p` stays eligible. `p >= 1.0` disables truncation.
///
/// # Panics
///
/// Panics on an empty slice, negative temperature, or `p <= 0`.
#[must_use]
pub fn sample_top_p(logits: &mut [f32], p: f32, temperature: f32, rng: &mut Rng) -> usize {
    assert!(!logits.is_empty(), "cannot sample from empty logits");
    assert!(p > 0.0, "nucleus mass must be positive");
    if p < 1.0 {
        let mut probs = logits.to_vec();
        softmax_in_place(&mut probs);
        let mut order: Vec<usize> = (0..probs.len()).collect();
        order.sort_by(|&a, &b| {
            probs[b]
                .partial_cmp(&probs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut cum = 0.0f32;
        let mut keep = vec![false; probs.len()];
        for &i in &order {
            keep[i] = true;
            cum += probs[i];
            if cum >= p {
                break;
            }
        }
        for (v, &kept) in logits.iter_mut().zip(&keep) {
            if !kept {
                *v = f32::NEG_INFINITY;
            }
        }
    }
    sample_categorical(logits, temperature, rng)
}

/// Draws an index from an already-normalized probability vector.
fn sample_from_probs(probs: &[f32], rng: &mut Rng) -> usize {
    let u = rng.uniform();
    let mut acc = 0.0f32;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    // Floating-point slack: fall back to the last non-zero entry.
    probs
        .iter()
        .rposition(|&p| p > 0.0)
        .unwrap_or(probs.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut v = [1.0, 2.0, 3.0, 4.0];
        softmax_in_place(&mut v);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut v = [1000.0, 1001.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|p| p.is_finite()));
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn zero_temperature_is_argmax() {
        let mut rng = Rng::seed_from(1);
        let mut logits = [0.1, 9.0, 0.2];
        assert_eq!(sample_categorical(&mut logits, 0.0, &mut rng), 1);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = Rng::seed_from(2);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let mut logits = [0.0f32, (2.0f32).ln(), (4.0f32).ln()]; // probs 1/7, 2/7, 4/7
            counts[sample_categorical(&mut logits, 1.0, &mut rng)] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / 30_000.0).collect();
        assert!((freq[0] - 1.0 / 7.0).abs() < 0.02, "{freq:?}");
        assert!((freq[2] - 4.0 / 7.0).abs() < 0.02, "{freq:?}");
    }

    #[test]
    fn masked_sampling_only_returns_allowed() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..200 {
            let mut logits = vec![5.0f32; 10];
            let got = sample_masked(&mut logits, &[2, 7], 1.0, &mut rng);
            assert!(got == 2 || got == 7);
        }
    }

    #[test]
    fn masked_sampling_with_all_logits_low_still_works() {
        let mut rng = Rng::seed_from(4);
        let mut logits = vec![f32::NEG_INFINITY; 4];
        logits[1] = f32::NEG_INFINITY; // allowed but masked-out by the model
        let got = sample_masked(&mut logits, &[1], 1.0, &mut rng);
        assert_eq!(
            got, 1,
            "fully-masked rows fall back to uniform over the slice"
        );
    }

    #[test]
    fn temperature_sharpens() {
        let mut rng = Rng::seed_from(5);
        let mut hits = 0;
        for _ in 0..1000 {
            let mut logits = [0.0f32, 1.0];
            if sample_categorical(&mut logits, 0.1, &mut rng) == 1 {
                hits += 1;
            }
        }
        assert!(
            hits > 990,
            "low temperature should be near-deterministic, got {hits}"
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_logits_panic() {
        let _ = sample_categorical(&mut [], 1.0, &mut Rng::seed_from(0));
    }

    #[test]
    fn top_k_restricts_to_the_k_best() {
        let mut rng = Rng::seed_from(6);
        for _ in 0..300 {
            let mut logits = [0.0f32, 3.0, 2.0, 1.0, -1.0];
            let got = sample_top_k(&mut logits, 2, 1.0, &mut rng);
            assert!(got == 1 || got == 2, "got {got}");
        }
        // k = 0 disables truncation: all indices reachable.
        let mut seen = [false; 3];
        for _ in 0..500 {
            let mut logits = [0.0f32; 3];
            seen[sample_top_k(&mut logits, 0, 1.0, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn top_p_keeps_the_nucleus() {
        let mut rng = Rng::seed_from(7);
        // Probabilities ~ [0.64, 0.23, 0.09, 0.03]; p=0.7 keeps first two.
        for _ in 0..300 {
            let mut logits = [4.0f32, 3.0, 2.0, 1.0];
            let got = sample_top_p(&mut logits, 0.7, 1.0, &mut rng);
            assert!(got <= 1, "got {got}");
        }
        // p = 1 keeps everything reachable.
        let mut seen = [false; 3];
        for _ in 0..500 {
            let mut logits = [0.0f32; 3];
            seen[sample_top_p(&mut logits, 1.0, 1.0, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn top_p_zero_panics() {
        let _ = sample_top_p(&mut [0.0], 0.0, 1.0, &mut Rng::seed_from(0));
    }
}
