use serde::{Deserialize, Serialize};

use crate::qmat::QMat;
use crate::{Mat, Param, Rng};

/// A fully-connected layer `y = x·W + b` with manual backprop.
///
/// `W` is stored `in × out` so the forward pass is a plain row-major matmul.
/// The layer caches its input on `forward`; `backward` consumes that cache.
///
/// # Examples
///
/// ```
/// use pagpass_nn::{Linear, Mat, Rng};
///
/// let mut layer = Linear::new(4, 2, &mut Rng::seed_from(0));
/// let x = Mat::zeros(3, 4);
/// let y = layer.forward(&x);
/// assert_eq!((y.rows(), y.cols()), (3, 2));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `in × out`, weight-decayed.
    pub w: Param,
    /// Bias row, `1 × out`, not decayed.
    pub b: Param,
    #[serde(skip)]
    cached_x: Option<Mat>,
}

impl Linear {
    /// Creates a layer with `N(0, 0.02²)` weights and zero bias (GPT-2
    /// initialization).
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Linear {
        Linear {
            w: Param::new(Mat::randn(in_dim, out_dim, 0.02, rng), true),
            b: Param::new(Mat::zeros(1, out_dim), false),
            cached_x: None,
        }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimensionality.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass, caching the input for `backward`.
    ///
    /// Runs the reassociating training GEMM ([`Mat::matmul_fast`]) — the
    /// training loss tolerates last-bit differences from [`Linear::apply`], whose
    /// association order the golden sampling tests pin.
    #[must_use]
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let mut y = x.matmul_fast(&self.w.value);
        self.add_bias(&mut y);
        self.cached_x = Some(x.clone());
        y
    }

    /// Inference-only forward pass (no caching).
    #[must_use]
    pub fn apply(&self, x: &Mat) -> Mat {
        let mut y = x.matmul(&self.w.value);
        self.add_bias(&mut y);
        y
    }

    fn add_bias(&self, y: &mut Mat) {
        let b = self.b.value.row(0);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (o, &bias) in row.iter_mut().zip(b) {
                *o += bias;
            }
        }
    }

    /// Packs the weight into int8 blocks for quantized decode. The bias
    /// stays f32 — it is added after dequantization either way, so
    /// quantizing it would add error for zero speedup.
    #[must_use]
    pub fn quantize(&self) -> QLinear {
        QLinear {
            w: QMat::pack(&self.w.value),
            b: self.b.value.row(0).to_vec(),
        }
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dX`.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`forward`](Self::forward).
    #[must_use]
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let x = self
            .cached_x
            .take()
            // LINT-ALLOW: no-unwrap-in-lib trainer API contract: forward
            // always precedes backward, documented as a panic above
            .expect("backward requires a cached forward");
        x.matmul_t_accum_fast(dy, &mut self.w.grad);
        let db = self.b.grad.row_mut(0);
        for r in 0..dy.rows() {
            for (g, &d) in db.iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
        // The packed kernel reassociates the dX sum for ~2× throughput;
        // gradients tolerate that, the forward path would not.
        dy.matmul_bt_packed(&self.w.value)
    }

    /// Visits both parameters (optimizer hook).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// [`Linear`]'s pack-once quantized twin for the decode path: int8 block
/// weights ([`QMat`]) with the bias kept f32. Built by [`Linear::quantize`]
/// at session-prepare time; holds no gradient state and cannot train.
#[derive(Debug, Clone)]
pub struct QLinear {
    /// Packed weight, logically `in × out`.
    pub w: QMat,
    /// Bias, length `out`, applied in f32 exactly like [`Linear::apply`].
    pub b: Vec<f32>,
}

impl QLinear {
    /// Quantized forward pass: int8 matmul, then the same f32 bias adds in
    /// the same order as [`Linear::apply`].
    #[must_use]
    pub fn apply(&self, x: &Mat) -> Mat {
        let mut y = self.w.matmul(x);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (o, &bias) in row.iter_mut().zip(&self.b) {
                *o += bias;
            }
        }
        y
    }
}

/// A token/position embedding table with manual backprop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    /// The table, `vocab × dim`; not weight-decayed.
    pub table: Param,
    #[serde(skip)]
    cached_ids: Option<Vec<u32>>,
}

impl Embedding {
    /// Creates a table with `N(0, 0.02²)` rows.
    #[must_use]
    pub fn new(vocab: usize, dim: usize, rng: &mut Rng) -> Embedding {
        Embedding {
            table: Param::new(Mat::randn(vocab, dim, 0.02, rng), false),
            cached_ids: None,
        }
    }

    /// Looks up each id, producing `ids.len() × dim`, and caches the ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    #[must_use]
    pub fn forward(&mut self, ids: &[u32]) -> Mat {
        let out = self.apply(ids);
        self.cached_ids = Some(ids.to_vec());
        out
    }

    /// Inference-only lookup (no caching).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    #[must_use]
    pub fn apply(&self, ids: &[u32]) -> Mat {
        let dim = self.table.value.cols();
        let mut out = Mat::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            out.row_mut(r)
                .copy_from_slice(self.table.value.row(id as usize));
        }
        out
    }

    /// Scatters `dy` rows back into the table gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`forward`](Self::forward).
    pub fn backward(&mut self, dy: &Mat) {
        let ids = self
            .cached_ids
            .take()
            // LINT-ALLOW: no-unwrap-in-lib trainer API contract: forward
            // always precedes backward, documented as a panic above
            .expect("backward requires a cached forward");
        assert_eq!(ids.len(), dy.rows());
        for (r, &id) in ids.iter().enumerate() {
            crate::mat::axpy(self.table.grad.row_mut(id as usize), 1.0, dy.row(r));
        }
    }

    /// Visits the table parameter (optimizer hook).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

/// Layer normalization with learned gain and bias.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Per-feature gain, initialized to 1; not decayed.
    pub gamma: Param,
    /// Per-feature bias, initialized to 0; not decayed.
    pub beta: Param,
    eps: f32,
    #[serde(skip)]
    cache: Option<LnCache>,
}

#[derive(Debug, Clone)]
struct LnCache {
    xhat: Mat,
    rstd: Vec<f32>,
}

impl LayerNorm {
    /// Creates a LayerNorm over `dim` features.
    #[must_use]
    pub fn new(dim: usize) -> LayerNorm {
        LayerNorm {
            gamma: Param::new(Mat::from_rows(1, dim, vec![1.0; dim]), false),
            beta: Param::new(Mat::zeros(1, dim), false),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Forward pass, caching normalized activations for `backward`.
    #[must_use]
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let (y, xhat, rstd) = self.compute(x);
        self.cache = Some(LnCache { xhat, rstd });
        y
    }

    /// Inference-only forward pass. Per-element math is exactly
    /// [`forward`](Self::forward)'s — `((x - mean) · rstd) · γ + β` with the
    /// same serial mean/variance folds — but skips materializing the
    /// normalized activations and rstd vector that only backward needs, so
    /// decode pays one output allocation instead of three.
    #[must_use]
    pub fn apply(&self, x: &Mat) -> Mat {
        let dim = x.cols();
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        let mut y = Mat::zeros(x.rows(), dim);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / dim as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
            let rstd = 1.0 / (var + self.eps).sqrt();
            let yr = y.row_mut(r);
            for i in 0..dim {
                yr[i] = (row[i] - mean) * rstd * gamma[i] + beta[i];
            }
        }
        y
    }

    /// [`apply`](Self::apply) with the mean and variance folded in eight
    /// parallel lanes instead of one serial chain, letting the reductions
    /// vectorize. Reassociating f32 sums changes low bits, so this is the
    /// quantized decode path's variant — that mode's golden files pin the
    /// lane order chosen here, and the f32 path keeps the serial fold.
    #[must_use]
    pub fn apply_fast(&self, x: &Mat) -> Mat {
        const LANES: usize = 8;
        let dim = x.cols();
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        let mut y = Mat::zeros(x.rows(), dim);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mut acc = [0.0f32; LANES];
            for chunk in row.chunks_exact(LANES) {
                for (a, &v) in acc.iter_mut().zip(chunk) {
                    *a += v;
                }
            }
            for (a, &v) in acc.iter_mut().zip(row.chunks_exact(LANES).remainder()) {
                *a += v;
            }
            let mean = acc.iter().sum::<f32>() / dim as f32;
            let mut acc = [0.0f32; LANES];
            for chunk in row.chunks_exact(LANES) {
                for (a, &v) in acc.iter_mut().zip(chunk) {
                    *a += (v - mean) * (v - mean);
                }
            }
            for (a, &v) in acc.iter_mut().zip(row.chunks_exact(LANES).remainder()) {
                *a += (v - mean) * (v - mean);
            }
            let var = acc.iter().sum::<f32>() / dim as f32;
            let rstd = 1.0 / (var + self.eps).sqrt();
            let yr = y.row_mut(r);
            for i in 0..dim {
                yr[i] = (row[i] - mean) * rstd * gamma[i] + beta[i];
            }
        }
        y
    }

    fn compute(&self, x: &Mat) -> (Mat, Mat, Vec<f32>) {
        let dim = x.cols();
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        let mut y = Mat::zeros(x.rows(), dim);
        let mut xhat = Mat::zeros(x.rows(), dim);
        let mut rstds = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / dim as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
            let rstd = 1.0 / (var + self.eps).sqrt();
            rstds.push(rstd);
            let xh = xhat.row_mut(r);
            let yr = y.row_mut(r);
            for i in 0..dim {
                xh[i] = (row[i] - mean) * rstd;
                yr[i] = xh[i] * gamma[i] + beta[i];
            }
        }
        (y, xhat, rstds)
    }

    /// Backward pass: accumulates `dγ`, `dβ` and returns `dX`.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`forward`](Self::forward).
    #[must_use]
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let cache = self
            .cache
            .take()
            // LINT-ALLOW: no-unwrap-in-lib trainer API contract: forward
            // always precedes backward, documented as a panic above
            .expect("backward requires a cached forward");
        let dim = dy.cols();
        let gamma = self.gamma.value.row(0);
        let mut dx = Mat::zeros(dy.rows(), dim);
        for r in 0..dy.rows() {
            let dyr = dy.row(r);
            let xh = cache.xhat.row(r);
            // Parameter gradients.
            {
                let dgamma = self.gamma.grad.row_mut(0);
                let dbeta = self.beta.grad.row_mut(0);
                for i in 0..dim {
                    dgamma[i] += dyr[i] * xh[i];
                    dbeta[i] += dyr[i];
                }
            }
            // Input gradient:
            // dx = rstd * (dxhat - mean(dxhat) - xhat * mean(dxhat ∘ xhat))
            let mut mean_dxhat = 0.0f32;
            let mut mean_dxhat_xhat = 0.0f32;
            for i in 0..dim {
                let dxhat = dyr[i] * gamma[i];
                mean_dxhat += dxhat;
                mean_dxhat_xhat += dxhat * xh[i];
            }
            mean_dxhat /= dim as f32;
            mean_dxhat_xhat /= dim as f32;
            let rstd = cache.rstd[r];
            let dxr = dx.row_mut(r);
            for i in 0..dim {
                let dxhat = dyr[i] * gamma[i];
                dxr[i] = rstd * (dxhat - mean_dxhat - xh[i] * mean_dxhat_xhat);
            }
        }
        dx
    }

    /// Visits both parameters (optimizer hook).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// GELU activation (tanh approximation), applied element-wise.
///
/// # Examples
///
/// ```
/// assert_eq!(pagpass_nn::gelu(0.0), 0.0);
/// assert!((pagpass_nn::gelu(100.0) - 100.0).abs() < 1e-3);
/// ```
#[must_use]
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + gelu_inner_tanh(x))
}

/// `tanh(sqrt(2/π)·(x + 0.044715·x³))` — the expensive inner factor shared
/// by [`gelu`] and [`gelu_grad`]. Split out so the MLP can compute it once
/// on the forward pass and reuse the cached value in backward; the
/// expression is byte-for-byte the one the fused forms evaluated, so
/// caching never changes a bit.
fn gelu_inner_tanh(x: f32) -> f32 {
    const K: f32 = 0.797_884_6; // sqrt(2/pi)
    (K * (x + 0.044_715 * x * x * x)).tanh()
}

/// Derivative of [`gelu`] given `x` and the precomputed
/// [`gelu_inner_tanh`] value `t`.
fn gelu_grad_with(x: f32, t: f32) -> f32 {
    const K: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * K * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Derivative of [`gelu`].
///
/// # Examples
///
/// ```
/// let x = 0.7f32;
/// let numeric = (pagpass_nn::gelu(x + 1e-3) - pagpass_nn::gelu(x - 1e-3)) / 2e-3;
/// assert!((pagpass_nn::gelu_grad(x) - numeric).abs() < 1e-3);
/// ```
#[must_use]
pub fn gelu_grad(x: f32) -> f32 {
    gelu_grad_with(x, gelu_inner_tanh(x))
}

/// The transformer MLP sub-block: `fc2(gelu(fc1(x)))` with a 4× hidden
/// expansion, as in GPT-2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Expansion projection `dim → 4·dim`.
    pub fc1: Linear,
    /// Contraction projection `4·dim → dim`.
    pub fc2: Linear,
    #[serde(skip)]
    cached: Option<MlpCache>,
}

/// Forward activations the MLP keeps for backward: the fc1 pre-activation
/// and the gelu inner tanh of each of its elements. Caching the tanh halves
/// the activation cost of a train step — `tanh` dominates the elementwise
/// work, and recomputing it in backward would double it for bits that are
/// guaranteed identical.
#[derive(Debug, Clone)]
struct MlpCache {
    h: Mat,
    tanh: Vec<f32>,
}

impl Mlp {
    /// Creates the two projections.
    #[must_use]
    pub fn new(dim: usize, rng: &mut Rng) -> Mlp {
        Mlp {
            fc1: Linear::new(dim, 4 * dim, rng),
            fc2: Linear::new(4 * dim, dim, rng),
            cached: None,
        }
    }

    /// Forward pass with caching.
    #[must_use]
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let h = self.fc1.forward(x);
        let mut a = h.clone();
        let mut tanh = Vec::with_capacity(a.as_slice().len());
        for v in a.as_mut_slice() {
            let x = *v;
            let t = gelu_inner_tanh(x);
            tanh.push(t);
            // Same expression as `gelu` with the tanh factored out, so the
            // activation bits match `apply` exactly.
            *v = 0.5 * x * (1.0 + t);
        }
        self.cached = Some(MlpCache { h, tanh });
        self.fc2.forward(&a)
    }

    /// Inference-only forward pass.
    #[must_use]
    pub fn apply(&self, x: &Mat) -> Mat {
        self.apply_with(None, x)
    }

    /// Inference-only forward pass that swaps the two projections for their
    /// quantized twins when `q` is present. The quantized arm also runs the
    /// GELU through [`gelu_fast`](crate::gelu_fast) — libm `tanh` on the
    /// 4×-expanded hidden row would rival the int8 matvecs it sits between,
    /// and the ~5e-5 approximation error vanishes under that mode's
    /// accuracy budget. The f32 arm keeps libm bits exactly.
    #[must_use]
    pub fn apply_with(&self, q: Option<&QMlp>, x: &Mat) -> Mat {
        let mut a = match q {
            Some(q) => q.fc1.apply(x),
            None => self.fc1.apply(x),
        };
        match q {
            Some(_) => {
                for v in a.as_mut_slice() {
                    *v = crate::fastmath::gelu_fast(*v);
                }
            }
            None => {
                for v in a.as_mut_slice() {
                    *v = gelu(*v);
                }
            }
        }
        match q {
            Some(q) => q.fc2.apply(&a),
            None => self.fc2.apply(&a),
        }
    }

    /// Packs both projections for quantized decode.
    #[must_use]
    pub fn quantize(&self) -> QMlp {
        QMlp {
            fc1: self.fc1.quantize(),
            fc2: self.fc2.quantize(),
        }
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`forward`](Self::forward).
    #[must_use]
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let MlpCache { h, tanh } = self
            .cached
            .take()
            // LINT-ALLOW: no-unwrap-in-lib trainer API contract: forward
            // always precedes backward, documented as a panic above
            .expect("backward requires a cached forward");
        let mut da = self.fc2.backward(dy);
        for ((g, &pre), &t) in da.as_mut_slice().iter_mut().zip(h.as_slice()).zip(&tanh) {
            *g *= gelu_grad_with(pre, t);
        }
        self.fc1.backward(&da)
    }

    /// Visits all parameters (optimizer hook).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

/// [`Mlp`]'s quantized twin: both projections packed, GELU untouched.
#[derive(Debug, Clone)]
pub struct QMlp {
    /// Packed expansion projection.
    pub fc1: QLinear,
    /// Packed contraction projection.
    pub fc2: QLinear,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = Rng::seed_from(1);
        let mut l = Linear::new(2, 2, &mut rng);
        l.w.value = Mat::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        l.b.value = Mat::from_rows(1, 2, vec![0.5, -0.5]);
        let x = Mat::from_rows(1, 2, vec![1.0, 1.0]);
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
        assert_eq!(l.apply(&x).as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn linear_bias_gradient_is_column_sum() {
        let mut rng = Rng::seed_from(2);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Mat::zeros(4, 3);
        let _ = l.forward(&x);
        let dy = Mat::from_rows(4, 2, vec![1.0; 8]);
        let _ = l.backward(&dy);
        assert_eq!(l.b.grad.as_slice(), &[4.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "cached forward")]
    fn linear_backward_without_forward_panics() {
        let mut l = Linear::new(1, 1, &mut Rng::seed_from(0));
        let _ = l.backward(&Mat::zeros(1, 1));
    }

    #[test]
    fn embedding_lookup_and_scatter() {
        let mut rng = Rng::seed_from(3);
        let mut e = Embedding::new(5, 3, &mut rng);
        let out = e.forward(&[1, 1, 4]);
        assert_eq!(out.row(0), e.table.value.row(1));
        assert_eq!(out.row(2), e.table.value.row(4));
        let dy = Mat::from_rows(3, 3, vec![1.0; 9]);
        e.backward(&dy);
        // Row 1 was used twice, so its gradient is 2.0 everywhere.
        assert_eq!(e.table.grad.row(1), &[2.0, 2.0, 2.0]);
        assert_eq!(e.table.grad.row(4), &[1.0, 1.0, 1.0]);
        assert_eq!(e.table.grad.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let mut ln = LayerNorm::new(8);
        let x = Mat::from_rows(2, 8, (0..16).map(|i| i as f32).collect());
        let y = ln.forward(&x);
        for r in 0..2 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
        assert_eq!(ln.apply(&x).as_slice(), y.as_slice());
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(100.0) - 100.0).abs() < 1e-3);
        assert!(gelu(-100.0).abs() < 1e-3);
        // Numerical derivative check across a range.
        for i in -20..=20 {
            let x = i as f32 * 0.25;
            let h = 1e-3;
            let num = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!((num - gelu_grad(x)).abs() < 1e-2, "x={x}");
        }
    }

    #[test]
    fn mlp_shapes() {
        let mut rng = Rng::seed_from(4);
        let mut mlp = Mlp::new(6, &mut rng);
        let x = Mat::randn(5, 6, 1.0, &mut rng);
        let y = mlp.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 6));
        let dx = mlp.backward(&Mat::zeros(5, 6));
        assert_eq!((dx.rows(), dx.cols()), (5, 6));
        let y2 = mlp.apply(&x);
        for (a, b) in y.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn quantized_linear_tracks_f32_apply() {
        let mut rng = Rng::seed_from(8);
        let l = Linear::new(48, 20, &mut rng);
        let q = l.quantize();
        let x = Mat::randn(3, 48, 1.0, &mut rng);
        let exact = l.apply(&x);
        let approx = q.apply(&x);
        let norm = exact.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, e) in approx.as_slice().iter().zip(exact.as_slice()) {
            assert!((a - e).abs() <= norm * 0.05 + 1e-3, "{a} vs {e}");
        }
    }

    #[test]
    fn quantized_mlp_tracks_f32_apply() {
        let mut rng = Rng::seed_from(9);
        let mlp = Mlp::new(16, &mut rng);
        let q = mlp.quantize();
        let x = Mat::randn(2, 16, 1.0, &mut rng);
        let exact = mlp.apply(&x);
        let approx = mlp.apply_with(Some(&q), &x);
        let norm = exact.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, e) in approx.as_slice().iter().zip(exact.as_slice()) {
            assert!((a - e).abs() <= norm * 0.1 + 1e-2, "{a} vs {e}");
        }
    }

    #[test]
    fn visit_params_counts() {
        let mut rng = Rng::seed_from(5);
        let mut count = 0;
        Linear::new(2, 2, &mut rng).visit_params(&mut |_| count += 1);
        assert_eq!(count, 2);
        count = 0;
        Mlp::new(2, &mut rng).visit_params(&mut |_| count += 1);
        assert_eq!(count, 4);
        count = 0;
        LayerNorm::new(2).visit_params(&mut |_| count += 1);
        assert_eq!(count, 2);
        count = 0;
        Embedding::new(2, 2, &mut rng).visit_params(&mut |_| count += 1);
        assert_eq!(count, 1);
    }
}
