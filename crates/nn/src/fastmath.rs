//! Fast deterministic transcendental approximations for the quantized
//! decode path.
//!
//! `--kernel quantized` already trades bounded accuracy for speed on every
//! matmul; these functions extend the same trade to the element-wise
//! transcendentals between them, where libm `tanh`/`exp` calls otherwise
//! rival the int8 kernels on decode-sized matvecs. Relative error stays
//! around `5e-5` — two orders of magnitude below the int8 quantization
//! noise the mode's accuracy budget (`crates/eval`) already absorbs.
//!
//! Everything here is plain scalar f32 arithmetic in a fixed order: no
//! tables, no cpuid dispatch, no libm. Results are bitwise reproducible
//! across platforms, thread counts, and the SIMD/portable kernel split,
//! which is what lets the quantized golden files pin them. The f32 decode
//! path never calls into this module — pinned-kernel bits are untouched.

/// `e^x` by range reduction to `2^n · e^r`, `|r| ≤ ln2/2`, with a
/// degree-4 polynomial for `e^r`. Relative error ≤ ~5e-5 over the clamped
/// domain; inputs outside `[-87, 87]` saturate toward `0` / `e^87` instead
/// of denormalizing or overflowing.
#[must_use]
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    // ln2 split so `r = x - n·ln2` keeps full precision: the high part has
    // an exact short mantissa, the low part restores the remainder.
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let x = x.clamp(-87.0, 87.0);
    let t = x * std::f32::consts::LOG2_E;
    // Round to nearest (halves away from zero) without `roundf`.
    let n = (t + 0.5f32.copysign(t)) as i32;
    let nf = n as f32;
    let r = (x - nf * LN2_HI) - nf * LN2_LO;
    // Horner Taylor for e^r on |r| ≤ 0.347.
    let p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0))));
    // |n| ≤ 126 after the clamp, so the biased exponent stays normal.
    f32::from_bits(((n + 127) << 23) as u32) * p
}

/// `tanh(x)` as `(e^{2x} - 1) / (e^{2x} + 1)` over [`fast_exp`].
/// Inherits its ~5e-5 relative error; saturates cleanly to ±1.
#[must_use]
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    let e = fast_exp(2.0 * x);
    (e - 1.0) / (e + 1.0)
}

/// GELU with the same tanh-form shape as [`crate::gelu`], evaluated through
/// [`fast_tanh`]. Used by the quantized MLP only.
#[must_use]
#[inline]
pub fn gelu_fast(x: f32) -> f32 {
    const K: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + fast_tanh(K * (x + 0.044_715 * x * x * x)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_exp_tracks_libm() {
        let mut x = -20.0f32;
        while x <= 20.0 {
            let exact = x.exp();
            let approx = fast_exp(x);
            assert!(
                (approx - exact).abs() <= exact * 1e-4 + 1e-30,
                "exp({x}): {approx} vs {exact}"
            );
            x += 0.037;
        }
        assert_eq!(fast_exp(-200.0), fast_exp(-87.0));
        assert!(fast_exp(-87.0) > 0.0);
        assert!(fast_exp(200.0).is_finite());
    }

    #[test]
    fn fast_tanh_tracks_libm_and_saturates() {
        let mut x = -10.0f32;
        while x <= 10.0 {
            let exact = x.tanh();
            let approx = fast_tanh(x);
            assert!(
                (approx - exact).abs() <= 1e-4,
                "tanh({x}): {approx} vs {exact}"
            );
            x += 0.013;
        }
        assert!((fast_tanh(50.0) - 1.0).abs() < 1e-6);
        assert!((fast_tanh(-50.0) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_fast_tracks_gelu() {
        let mut x = -8.0f32;
        while x <= 8.0 {
            let exact = crate::gelu(x);
            let approx = gelu_fast(x);
            assert!(
                (approx - exact).abs() <= 1e-4 * x.abs().max(1.0),
                "gelu({x}): {approx} vs {exact}"
            );
            x += 0.011;
        }
        assert_eq!(gelu_fast(0.0), 0.0);
    }

    #[test]
    fn fast_exp_is_deterministic() {
        // Same bits on every call — the golden files rely on it.
        for x in [-5.5f32, -0.1, 0.0, 0.3, 4.2, 86.9] {
            assert_eq!(fast_exp(x).to_bits(), fast_exp(x).to_bits());
        }
    }
}
