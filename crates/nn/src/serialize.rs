use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Gpt, GptConfig, Rng};

/// File magic for serialized weights (`PAGNN` + format version 1).
const MAGIC: &[u8; 8] = b"PAGNN\0\0\x01";

/// Errors produced while loading serialized weights.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a PAGNN weight file or uses a different version.
    BadMagic,
    /// The stored tensor sizes do not match the stored configuration.
    Corrupt(&'static str),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => write!(f, "not a PAGNN weight file (bad magic)"),
            LoadError::Corrupt(what) => write!(f, "corrupt weight file: {what}"),
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> LoadError {
        LoadError::Io(e)
    }
}

impl Gpt {
    /// Serializes configuration and weights to a compact binary buffer.
    #[must_use]
    pub fn to_bytes(&mut self) -> Bytes {
        let config = self.config();
        let mut buf = BytesMut::with_capacity(64 + self.num_params() * 4);
        buf.put_slice(MAGIC);
        for v in [config.vocab_size, config.ctx_len, config.dim, config.n_layers, config.n_heads] {
            buf.put_u32_le(v as u32);
        }
        self.visit_params(&mut |p| {
            buf.put_u32_le(p.len() as u32);
            for &x in p.value.as_slice() {
                buf.put_f32_le(x);
            }
        });
        buf.freeze()
    }

    /// Reconstructs a model from [`to_bytes`](Self::to_bytes) output.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::BadMagic`] for foreign data and
    /// [`LoadError::Corrupt`] when tensor sizes disagree with the stored
    /// configuration.
    pub fn from_bytes(mut data: Bytes) -> Result<Gpt, LoadError> {
        if data.remaining() < MAGIC.len() + 20 || &data.copy_to_bytes(8)[..] != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let mut dims = [0usize; 5];
        for d in &mut dims {
            *d = data.get_u32_le() as usize;
        }
        let config = GptConfig {
            vocab_size: dims[0],
            ctx_len: dims[1],
            dim: dims[2],
            n_layers: dims[3],
            n_heads: dims[4],
        };
        if config.dim == 0 || config.n_heads == 0 || !config.dim.is_multiple_of(config.n_heads) {
            return Err(LoadError::Corrupt("invalid configuration"));
        }
        let mut model = Gpt::new(config, &mut Rng::seed_from(0));
        let mut failure: Option<&'static str> = None;
        model.visit_params(&mut |p| {
            if failure.is_some() {
                return;
            }
            if data.remaining() < 4 {
                failure = Some("truncated before a tensor header");
                return;
            }
            let len = data.get_u32_le() as usize;
            if len != p.len() {
                failure = Some("tensor size mismatch");
                return;
            }
            if data.remaining() < len * 4 {
                failure = Some("truncated tensor data");
                return;
            }
            for x in p.value.as_mut_slice() {
                *x = data.get_f32_le();
            }
        });
        if let Some(what) = failure {
            return Err(LoadError::Corrupt(what));
        }
        if data.has_remaining() {
            return Err(LoadError::Corrupt("trailing bytes"));
        }
        Ok(model)
    }

    /// Saves the model to a file (see [`to_bytes`](Self::to_bytes)).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let bytes = self.to_bytes();
        let mut file = fs::File::create(path)?;
        file.write_all(&bytes)
    }

    /// Loads a model saved with [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed data.
    pub fn load(path: impl AsRef<Path>) -> Result<Gpt, LoadError> {
        let mut data = Vec::new();
        fs::File::open(path)?.read_to_end(&mut data)?;
        Gpt::from_bytes(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_weights_and_behaviour() {
        let mut model = Gpt::new(GptConfig::tiny(11), &mut Rng::seed_from(3));
        let bytes = model.to_bytes();
        let loaded = Gpt::from_bytes(bytes).unwrap();
        let prefix = vec![1u32, 2, 3];
        assert_eq!(model.next_token_logits(&prefix), loaded.next_token_logits(&prefix));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Gpt::from_bytes(Bytes::from_static(b"not a model file at all....."));
        assert!(matches!(err, Err(LoadError::BadMagic)));
    }

    #[test]
    fn truncated_data_is_rejected() {
        let mut model = Gpt::new(GptConfig::tiny(11), &mut Rng::seed_from(3));
        let bytes = model.to_bytes();
        let truncated = bytes.slice(0..bytes.len() / 2);
        assert!(matches!(Gpt::from_bytes(truncated), Err(LoadError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut model = Gpt::new(GptConfig::tiny(11), &mut Rng::seed_from(3));
        let mut data = model.to_bytes().to_vec();
        data.push(0);
        assert!(matches!(Gpt::from_bytes(Bytes::from(data)), Err(LoadError::Corrupt(_))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pagpass_nn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.pagnn");
        let mut model = Gpt::new(GptConfig::tiny(9), &mut Rng::seed_from(4));
        model.save(&path).unwrap();
        let loaded = Gpt::load(&path).unwrap();
        assert_eq!(model.next_token_logits(&[1]), loaded.next_token_logits(&[1]));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        assert!(matches!(
            Gpt::load("/nonexistent/path/model.pagnn"),
            Err(LoadError::Io(_))
        ));
    }
}
