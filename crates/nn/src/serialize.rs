use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Gpt, GptConfig, Rng};

/// File magic for serialized weights, format version 1 (no checksum).
/// Still accepted by [`Gpt::from_bytes`] for backwards compatibility.
const MAGIC_V1: &[u8; 8] = b"PAGNN\0\0\x01";

/// File magic for format version 2: identical layout to version 1 plus a
/// trailing little-endian CRC32 over every preceding byte.
const MAGIC_V2: &[u8; 8] = b"PAGNN\0\0\x02";

/// IEEE CRC32 (the `zlib`/`gzip` polynomial, reflected) of `data`.
///
/// Used to detect torn or bit-flipped weight files and checkpoint journals.
///
/// # Examples
///
/// ```
/// use pagpass_nn::crc32;
///
/// assert_eq!(crc32(b""), 0);
/// assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Writes `data` to `path` atomically: the bytes land in `path.tmp` first
/// and are renamed into place, so readers never observe a truncated file
/// even if the process dies mid-write.
///
/// # Errors
///
/// Propagates I/O errors from the write or the rename.
pub fn atomic_write(path: impl AsRef<Path>, data: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(data)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Errors produced while loading serialized weights.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a PAGNN weight file or uses a different version.
    BadMagic,
    /// The stored tensor sizes do not match the stored configuration.
    Corrupt(&'static str),
    /// The trailing CRC32 does not match the file contents (version 2
    /// files only): the file was truncated or bit-flipped on disk.
    ChecksumMismatch {
        /// CRC32 recorded in the file.
        stored: u32,
        /// CRC32 recomputed over the file contents.
        computed: u32,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => write!(f, "not a PAGNN weight file (bad magic)"),
            LoadError::Corrupt(what) => write!(f, "corrupt weight file: {what}"),
            LoadError::ChecksumMismatch { stored, computed } => write!(
                f,
                "weight file checksum mismatch (stored {stored:08x}, computed {computed:08x})"
            ),
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> LoadError {
        LoadError::Io(e)
    }
}

impl Gpt {
    /// Serializes configuration and weights to a compact binary buffer in
    /// format version 2: the version-1 layout plus a trailing CRC32.
    #[must_use]
    pub fn to_bytes(&mut self) -> Bytes {
        let config = self.config();
        let mut buf = BytesMut::with_capacity(64 + self.num_params() * 4);
        buf.put_slice(MAGIC_V2);
        for v in [
            config.vocab_size,
            config.ctx_len,
            config.dim,
            config.n_layers,
            config.n_heads,
        ] {
            buf.put_u32_le(v as u32);
        }
        self.visit_params(&mut |p| {
            buf.put_u32_le(p.len() as u32);
            for &x in p.value.as_slice() {
                buf.put_f32_le(x);
            }
        });
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Reconstructs a model from [`to_bytes`](Self::to_bytes) output.
    /// Accepts both version-2 (checksummed) and legacy version-1 files.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::BadMagic`] for foreign data,
    /// [`LoadError::ChecksumMismatch`] when a version-2 file fails its CRC,
    /// and [`LoadError::Corrupt`] when tensor sizes disagree with the stored
    /// configuration.
    pub fn from_bytes(mut data: Bytes) -> Result<Gpt, LoadError> {
        if data.remaining() < MAGIC_V1.len() + 20 {
            return Err(LoadError::BadMagic);
        }
        let magic = data.copy_to_bytes(8);
        let version = if &magic[..] == MAGIC_V1 {
            1
        } else if &magic[..] == MAGIC_V2 {
            2
        } else {
            return Err(LoadError::BadMagic);
        };
        if version == 2 {
            // Verify the trailing CRC over everything before it, then strip
            // it so the body parses identically to version 1.
            if data.remaining() < 4 {
                return Err(LoadError::Corrupt("truncated before the checksum"));
            }
            let body_len = 8 + data.remaining() - 4;
            let mut prefix = Vec::with_capacity(body_len);
            prefix.extend_from_slice(&magic);
            prefix.extend_from_slice(&data[..data.remaining() - 4]);
            let stored = {
                let tail = data.slice(data.remaining() - 4..);
                u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]])
            };
            let computed = crc32(&prefix);
            if stored != computed {
                return Err(LoadError::ChecksumMismatch { stored, computed });
            }
            data = data.slice(0..data.remaining() - 4);
        }
        let mut dims = [0usize; 5];
        for d in &mut dims {
            *d = data.get_u32_le() as usize;
        }
        let config = GptConfig {
            vocab_size: dims[0],
            ctx_len: dims[1],
            dim: dims[2],
            n_layers: dims[3],
            n_heads: dims[4],
        };
        if config.dim == 0 || config.n_heads == 0 || !config.dim.is_multiple_of(config.n_heads) {
            return Err(LoadError::Corrupt("invalid configuration"));
        }
        let mut model = Gpt::new(config, &mut Rng::seed_from(0));
        let mut failure: Option<&'static str> = None;
        model.visit_params(&mut |p| {
            if failure.is_some() {
                return;
            }
            if data.remaining() < 4 {
                failure = Some("truncated before a tensor header");
                return;
            }
            let len = data.get_u32_le() as usize;
            if len != p.len() {
                failure = Some("tensor size mismatch");
                return;
            }
            if data.remaining() < len * 4 {
                failure = Some("truncated tensor data");
                return;
            }
            for x in p.value.as_mut_slice() {
                *x = data.get_f32_le();
            }
        });
        if let Some(what) = failure {
            return Err(LoadError::Corrupt(what));
        }
        if data.has_remaining() {
            return Err(LoadError::Corrupt("trailing bytes"));
        }
        Ok(model)
    }

    /// Saves the model to a file (see [`to_bytes`](Self::to_bytes)). The
    /// write is atomic: a crash mid-save leaves any previous file intact
    /// rather than a truncated one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let bytes = self.to_bytes();
        atomic_write(path, &bytes)
    }

    /// Loads a model saved with [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed data.
    pub fn load(path: impl AsRef<Path>) -> Result<Gpt, LoadError> {
        let mut data = Vec::new();
        fs::File::open(path)?.read_to_end(&mut data)?;
        Gpt::from_bytes(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Downgrades a v2 buffer to the legacy v1 layout (strip CRC, patch the
    /// version byte) to exercise the back-compat path.
    fn downgrade_to_v1(v2: &Bytes) -> Bytes {
        let mut data = v2.to_vec();
        data.truncate(data.len() - 4);
        data[..8].copy_from_slice(MAGIC_V1);
        Bytes::from(data)
    }

    #[test]
    fn roundtrip_preserves_weights_and_behaviour() {
        let mut model = Gpt::new(GptConfig::tiny(11), &mut Rng::seed_from(3));
        let bytes = model.to_bytes();
        let loaded = Gpt::from_bytes(bytes).unwrap();
        let prefix = vec![1u32, 2, 3];
        assert_eq!(
            model.next_token_logits(&prefix),
            loaded.next_token_logits(&prefix)
        );
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Gpt::from_bytes(Bytes::from_static(b"not a model file at all....."));
        assert!(matches!(err, Err(LoadError::BadMagic)));
    }

    #[test]
    fn truncated_data_is_rejected() {
        let mut model = Gpt::new(GptConfig::tiny(11), &mut Rng::seed_from(3));
        let bytes = model.to_bytes();
        let truncated = bytes.slice(0..bytes.len() / 2);
        assert!(matches!(
            Gpt::from_bytes(truncated),
            Err(LoadError::ChecksumMismatch { .. }) | Err(LoadError::Corrupt(_))
        ));
    }

    #[test]
    fn bit_flip_is_detected_by_checksum() {
        let mut model = Gpt::new(GptConfig::tiny(11), &mut Rng::seed_from(3));
        let mut data = model.to_bytes().to_vec();
        // Flip one bit in the middle of the tensor data.
        let idx = data.len() / 2;
        data[idx] ^= 0x10;
        assert!(matches!(
            Gpt::from_bytes(Bytes::from(data)),
            Err(LoadError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut model = Gpt::new(GptConfig::tiny(11), &mut Rng::seed_from(3));
        let mut data = model.to_bytes().to_vec();
        data.push(0);
        assert!(matches!(
            Gpt::from_bytes(Bytes::from(data)),
            Err(LoadError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let mut model = Gpt::new(GptConfig::tiny(7), &mut Rng::seed_from(5));
        let v1 = downgrade_to_v1(&model.to_bytes());
        let loaded = Gpt::from_bytes(v1).unwrap();
        assert_eq!(
            model.next_token_logits(&[1, 2]),
            loaded.next_token_logits(&[1, 2])
        );
    }

    #[test]
    fn corrupt_v1_is_rejected_without_checksum() {
        let mut model = Gpt::new(GptConfig::tiny(7), &mut Rng::seed_from(5));
        let v1 = downgrade_to_v1(&model.to_bytes());
        let truncated = v1.slice(0..v1.len() - 3);
        assert!(matches!(
            Gpt::from_bytes(truncated),
            Err(LoadError::Corrupt(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pagpass_nn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.pagnn");
        let mut model = Gpt::new(GptConfig::tiny(9), &mut Rng::seed_from(4));
        model.save(&path).unwrap();
        let loaded = Gpt::load(&path).unwrap();
        assert_eq!(
            model.next_token_logits(&[1]),
            loaded.next_token_logits(&[1])
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn atomic_write_replaces_and_never_truncates() {
        let dir = std::env::temp_dir().join("pagpass_nn_test_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.bin");
        atomic_write(&path, b"first contents").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No stray temp file remains.
        assert!(!dir.join("file.bin.tmp").exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        assert!(matches!(
            Gpt::load("/nonexistent/path/model.pagnn"),
            Err(LoadError::Io(_))
        ));
    }
}
