use serde::{Deserialize, Serialize};

use crate::Rng;

/// A dense row-major `f32` matrix.
///
/// All activations and weights in the substrate are rank-2: sequence batches
/// are flattened to `(batch × time) × dim`. The kernels below are the only
/// BLAS-like routines the transformer needs; they are written so the
/// auto-vectorizer produces tight inner loops (contiguous row accesses, no
/// bounds checks inside the hot loops thanks to slice windows).
///
/// # Examples
///
/// ```
/// use pagpass_nn::Mat;
///
/// let a = Mat::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// let b = Mat::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
/// let c = a.matmul(&b);
/// assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// An all-zeros matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f32>) -> Mat {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Mat { rows, cols, data }
    }

    /// Gaussian-initialized matrix with standard deviation `std`.
    #[must_use]
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Mat {
        let data = (0..rows * cols).map(|_| rng.normal() * std).collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self · other` — the classic matmul: `(m×k) · (k×n) → (m×n)`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self · other`, writing into a pre-allocated output (overwrites).
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        assert_eq!(out.rows, self.rows, "output rows");
        assert_eq!(out.cols, other.cols, "output cols");
        let (k, n) = (self.cols, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            out_row.fill(0.0);
            for (kk, &aik) in a_row.iter().enumerate().take(k) {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..kk * n + n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
    }

    /// `selfᵀ · other`: `(k×m)ᵀ · (k×n) → (m×n)`, accumulating into `out`.
    ///
    /// This is the weight-gradient kernel `dW += Xᵀ·dY`.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn matmul_t_accum(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(self.rows, other.rows, "leading dimensions must agree");
        assert_eq!(out.rows, self.cols, "output rows");
        assert_eq!(out.cols, other.cols, "output cols");
        let n = other.cols;
        for r in 0..self.rows {
            let x_row = self.row(r);
            let dy_row = other.row(r);
            for (i, &xri) in x_row.iter().enumerate() {
                if xri == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * n..i * n + n];
                for (o, &dy) in o_row.iter_mut().zip(dy_row) {
                    *o += xri * dy;
                }
            }
        }
    }

    /// `self · otherᵀ`: `(m×k) · (n×k)ᵀ → (m×n)`.
    ///
    /// This is the input-gradient kernel `dX = dY·Wᵀ` (and the attention
    /// score kernel `Q·Kᵀ`). Both operands are traversed row-contiguously,
    /// so the inner loop is a dot product of two slices.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul_bt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, other.row(j));
            }
        }
        out
    }

    /// Adds `other` element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements by `s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets all elements to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    // Four accumulators let the vectorizer keep independent FMA chains.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// Adds `scale * b` into `a`.
pub(crate) fn axpy(a: &mut [f32], scale: f32, b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x += scale * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng::seed_from(5);
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (7, 5, 3), (8, 8, 8)] {
            let a = Mat::randn(m, k, 1.0, &mut rng);
            let b = Mat::randn(k, n, 1.0, &mut rng);
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_t_accum_is_xt_dy() {
        let mut rng = Rng::seed_from(6);
        let x = Mat::randn(5, 3, 1.0, &mut rng);
        let dy = Mat::randn(5, 4, 1.0, &mut rng);
        let mut acc = Mat::zeros(3, 4);
        x.matmul_t_accum(&dy, &mut acc);
        // Reference: transpose x manually then matmul.
        let mut xt = Mat::zeros(3, 5);
        for i in 0..5 {
            for j in 0..3 {
                xt.set(j, i, x.get(i, j));
            }
        }
        let expect = naive_matmul(&xt, &dy);
        for (a, e) in acc.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
        // Accumulation: calling again doubles.
        x.matmul_t_accum(&dy, &mut acc);
        for (a, e) in acc.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - 2.0 * e).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_bt_is_a_bt() {
        let mut rng = Rng::seed_from(7);
        let a = Mat::randn(4, 6, 1.0, &mut rng);
        let b = Mat::randn(3, 6, 1.0, &mut rng);
        let got = a.matmul_bt(&b);
        let mut bt = Mat::zeros(6, 3);
        for i in 0..3 {
            for j in 0..6 {
                bt.set(j, i, b.get(i, j));
            }
        }
        let expect = naive_matmul(&a, &bt);
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn elementwise_helpers() {
        let mut a = Mat::from_rows(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_rows(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn accessors() {
        let mut m = Mat::zeros(2, 2);
        m.set(1, 0, 9.0);
        assert_eq!(m.get(1, 0), 9.0);
        assert_eq!(m.row(1), &[9.0, 0.0]);
        m.row_mut(0)[1] = 3.0;
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn dot_handles_remainders() {
        for len in 0..10 {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i * 2) as f32).collect();
            let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot(&a, &b), expect);
        }
    }
}
