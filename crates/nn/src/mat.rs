use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use serde::{Deserialize, Serialize};

use crate::pool::{self, ThreadPool};
use crate::Rng;

/// Which GEMM implementation the [`Mat`] kernels dispatch to.
///
/// `Blocked` (the default) is the cache-blocked, optionally parallel path;
/// `Naive` is the original reference triple loop, kept selectable so
/// benchmarks can pair the two and tests can assert they are bit-identical.
/// Both paths perform the same per-element floating-point operations in the
/// same order, so switching modes never changes results — only speed.
///
/// `Quantized` is different in kind: the f32 GEMM entry points below still
/// run the blocked kernels (training and f32 fallbacks must stay bit-exact),
/// but inference sessions that see this mode pack their decode weights into
/// [`crate::QMat`] int8 blocks and route decode matmuls through
/// [`crate::qmat`]. It is an explicit alternative decode mode with its own
/// golden files and accuracy budget, not a bit-compatible swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Reference single-threaded triple loops.
    Naive,
    /// Cache-blocked kernels running on the global [`pool`].
    Blocked,
    /// Blocked f32 kernels plus int8 pack-once decode ([`crate::qmat`]).
    Quantized,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(KernelMode::Blocked as u8);
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);

/// Selects the implementation behind the `Mat` GEMM entry points,
/// process-wide. Benchmarks flip this to pair naive against blocked runs.
pub fn set_kernel_mode(mode: KernelMode) {
    // ORD: a mode flip is a whole-phase switch, not a synchronization
    // point; readers may observe it one call late without harm.
    KERNEL_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The currently selected GEMM implementation.
#[must_use]
pub fn kernel_mode() -> KernelMode {
    // ORD: see `set_kernel_mode` — stale reads are benign.
    let v = KERNEL_MODE.load(Ordering::Relaxed);
    if v == KernelMode::Naive as u8 {
        KernelMode::Naive
    } else if v == KernelMode::Quantized as u8 {
        KernelMode::Quantized
    } else {
        KernelMode::Blocked
    }
}

/// Total GEMM kernel invocations (`matmul`/`matmul_into`, `matmul_bt`,
/// `matmul_t_accum`) since process start. The trainer and D&C-GEN report
/// deltas of this as the `nn.gemm_calls` telemetry counter.
#[must_use]
pub fn gemm_calls() -> u64 {
    // ORD: monotonic telemetry counter; no cross-thread ordering needed.
    GEMM_CALLS.load(Ordering::Relaxed)
}

pub(crate) fn count_gemm_call() {
    // ORD: monotonic telemetry counter; no cross-thread ordering needed.
    GEMM_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Rows of the shared operand kept hot per cache tile. 128 rows × 512 f32
/// columns is 256 KiB — sized for L2 so a tile of `B` (or `dY`) is reused
/// across a whole row-block of `A` instead of being re-streamed per row.
/// A multiple of 4 so the unrolled micro-kernel only sees a remainder loop
/// in the final tile.
const K_TILE: usize = 128;

/// Below this many element-ops a kernel runs single-chunk: waking parked
/// workers costs more than the loop itself.
const PAR_MIN_WORK: usize = 1 << 16;

/// How many row-block chunks to split a kernel into.
fn row_chunks(threads: usize, rows: usize, work_per_row: usize) -> usize {
    if threads <= 1 || rows < 2 || rows.saturating_mul(work_per_row) < PAR_MIN_WORK {
        1
    } else {
        threads.min(rows)
    }
}

/// Mutable base pointer smuggled into pool chunks. Each chunk derives a
/// disjoint row range from it, so aliasing never occurs.
#[derive(Clone, Copy)]
struct RowsPtr(*mut f32);

impl RowsPtr {
    /// The pointer offset by `off` elements. A method (rather than field
    /// access) so closures capture the whole `Sync` wrapper, not the raw
    /// pointer inside it.
    fn at(self, off: usize) -> *mut f32 {
        // SAFETY: callers only offset within the allocation they wrapped.
        unsafe { self.0.add(off) }
    }
}

// SAFETY: chunks index disjoint row blocks (enforced by the chunk → row
// mapping in each kernel) and the pool's latch confines all dereferences to
// the submitting call's stack frame.
unsafe impl Send for RowsPtr {}
// SAFETY: as above — shared access only ever touches disjoint rows.
unsafe impl Sync for RowsPtr {}

/// A dense row-major `f32` matrix.
///
/// All activations and weights in the substrate are rank-2: sequence batches
/// are flattened to `(batch × time) × dim`. The kernels below are the only
/// BLAS-like routines the transformer needs; they are written so the
/// auto-vectorizer produces tight inner loops (contiguous row accesses, no
/// bounds checks inside the hot loops thanks to slice windows). The GEMM
/// entry points dispatch on [`KernelMode`]: cache-blocked kernels running on
/// the persistent [`pool`] by default, with the reference loops retained
/// behind [`KernelMode::Naive`]. Both produce bit-identical output.
///
/// # Examples
///
/// ```
/// use pagpass_nn::Mat;
///
/// let a = Mat::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// let b = Mat::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
/// let c = a.matmul(&b);
/// assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// An all-zeros matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f32>) -> Mat {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Mat { rows, cols, data }
    }

    /// Gaussian-initialized matrix with standard deviation `std`.
    #[must_use]
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Mat {
        let data = (0..rows * cols).map(|_| rng.normal() * std).collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self · other` — the classic matmul: `(m×k) · (k×n) → (m×n)`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self · other`, writing into a pre-allocated output (overwrites).
    ///
    /// Dispatches on [`kernel_mode`]; the blocked path runs on the global
    /// [`pool`]. Use [`Mat::matmul_into_on`] to pin a specific pool.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch, naming both shapes.
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        self.assert_matmul_shapes(other, out);
        count_gemm_call();
        match kernel_mode() {
            KernelMode::Naive => self.matmul_into_naive(other, out),
            KernelMode::Blocked | KernelMode::Quantized => {
                self.matmul_into_pool(other, out, pool::global());
            }
        }
    }

    /// The blocked `self · other` kernel on an explicit pool — bit-identical
    /// to [`Mat::matmul_into`] at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch, naming both shapes.
    pub fn matmul_into_on(&self, other: &Mat, out: &mut Mat, pool: &ThreadPool) {
        self.assert_matmul_shapes(other, out);
        count_gemm_call();
        self.matmul_into_pool(other, out, pool);
    }

    fn assert_matmul_shapes(&self, other: &Mat, out: &Mat) {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions must agree (lhs {}x{} · rhs {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul: output is {}x{} but lhs {}x{} · rhs {}x{} produces {}x{}",
            out.rows,
            out.cols,
            self.rows,
            self.cols,
            other.rows,
            other.cols,
            self.rows,
            other.cols
        );
    }

    /// The original reference loop, retained for `KernelMode::Naive`.
    fn matmul_into_naive(&self, other: &Mat, out: &mut Mat) {
        let (k, n) = (self.cols, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            out_row.fill(0.0);
            for (kk, &aik) in a_row.iter().enumerate().take(k) {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..kk * n + n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
    }

    fn matmul_into_pool(&self, other: &Mat, out: &mut Mat, pool: &ThreadPool) {
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let chunks = row_chunks(pool.threads(), m, k.saturating_mul(n));
        let block = m.div_ceil(chunks.max(1));
        let out_ptr = RowsPtr(out.data.as_mut_ptr());
        pool.run(chunks, &|c| {
            let i0 = c * block;
            let i1 = ((c + 1) * block).min(m);
            if i0 >= i1 {
                return;
            }
            // SAFETY: chunk `c` owns exactly rows `[i0, i1)` of `out`
            // (chunks tile `0..m` disjointly) and `pool.run` returns only
            // after every chunk finished, confining this reborrow to the
            // current frame.
            let out_rows =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.at(i0 * n), (i1 - i0) * n) };
            matmul_rows_blocked(self, other, i0, i1, out_rows);
        });
    }

    /// `selfᵀ · other`: `(k×m)ᵀ · (k×n) → (m×n)`, accumulating into `out`.
    ///
    /// This is the weight-gradient kernel `dW += Xᵀ·dY`. Dispatches on
    /// [`kernel_mode`] like [`Mat::matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch, naming both shapes.
    pub fn matmul_t_accum(&self, other: &Mat, out: &mut Mat) {
        self.assert_t_accum_shapes(other, out);
        count_gemm_call();
        match kernel_mode() {
            KernelMode::Naive => self.matmul_t_accum_naive(other, out),
            KernelMode::Blocked | KernelMode::Quantized => {
                self.matmul_t_accum_pool(other, out, pool::global());
            }
        }
    }

    /// The blocked `selfᵀ · other` accumulation on an explicit pool —
    /// bit-identical to [`Mat::matmul_t_accum`] at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch, naming both shapes.
    pub fn matmul_t_accum_on(&self, other: &Mat, out: &mut Mat, pool: &ThreadPool) {
        self.assert_t_accum_shapes(other, out);
        count_gemm_call();
        self.matmul_t_accum_pool(other, out, pool);
    }

    fn assert_t_accum_shapes(&self, other: &Mat, out: &Mat) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_t_accum: leading dimensions must agree (lhsᵀ of {}x{} · rhs {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "matmul_t_accum: output is {}x{} but {}x{}ᵀ · {}x{} produces {}x{}",
            out.rows,
            out.cols,
            self.rows,
            self.cols,
            other.rows,
            other.cols,
            self.cols,
            other.cols
        );
    }

    /// The original reference loop, retained for `KernelMode::Naive`.
    fn matmul_t_accum_naive(&self, other: &Mat, out: &mut Mat) {
        let n = other.cols;
        for r in 0..self.rows {
            let x_row = self.row(r);
            let dy_row = other.row(r);
            for (i, &xri) in x_row.iter().enumerate() {
                if xri == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * n..i * n + n];
                for (o, &dy) in o_row.iter_mut().zip(dy_row) {
                    *o += xri * dy;
                }
            }
        }
    }

    fn matmul_t_accum_pool(&self, other: &Mat, out: &mut Mat, pool: &ThreadPool) {
        let (m, n) = (self.cols, other.cols);
        let chunks = row_chunks(pool.threads(), m, self.rows.saturating_mul(n));
        let block = m.div_ceil(chunks.max(1));
        let out_ptr = RowsPtr(out.data.as_mut_ptr());
        pool.run(chunks, &|c| {
            let i0 = c * block;
            let i1 = ((c + 1) * block).min(m);
            if i0 >= i1 {
                return;
            }
            // SAFETY: disjoint row blocks of `out`, confined by the pool's
            // latch to this call — see `matmul_into_pool`.
            let out_rows =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.at(i0 * n), (i1 - i0) * n) };
            t_accum_rows_blocked(self, other, i0, i1, out_rows);
        });
    }

    /// `self · otherᵀ`: `(m×k) · (n×k)ᵀ → (m×n)`.
    ///
    /// This is the input-gradient kernel `dX = dY·Wᵀ` (and the attention
    /// score kernel `Q·Kᵀ`). Both operands are traversed row-contiguously,
    /// so the inner loop is a dot product of two slices. Dispatches on
    /// [`kernel_mode`]; both modes share the same per-row dot kernel, the
    /// blocked path merely spreads rows across the pool.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, naming both shapes.
    #[must_use]
    pub fn matmul_bt(&self, other: &Mat) -> Mat {
        self.assert_bt_shapes(other);
        count_gemm_call();
        let mut out = Mat::zeros(self.rows, other.rows);
        match kernel_mode() {
            KernelMode::Naive => self.matmul_bt_rows(other, 0, self.rows, &mut out.data),
            KernelMode::Blocked | KernelMode::Quantized => {
                self.matmul_bt_pool(other, &mut out, pool::global());
            }
        }
        out
    }

    /// The blocked `self · otherᵀ` kernel on an explicit pool —
    /// bit-identical to [`Mat::matmul_bt`] at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, naming both shapes.
    #[must_use]
    pub fn matmul_bt_on(&self, other: &Mat, pool: &ThreadPool) -> Mat {
        self.assert_bt_shapes(other);
        count_gemm_call();
        let mut out = Mat::zeros(self.rows, other.rows);
        self.matmul_bt_pool(other, &mut out, pool);
        out
    }

    fn assert_bt_shapes(&self, other: &Mat) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt: inner dimensions must agree (lhs {}x{} · rhsᵀ of {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
    }

    fn matmul_bt_pool(&self, other: &Mat, out: &mut Mat, pool: &ThreadPool) {
        let (m, n) = (self.rows, other.rows);
        let chunks = row_chunks(pool.threads(), m, self.cols.saturating_mul(n));
        let block = m.div_ceil(chunks.max(1));
        let out_ptr = RowsPtr(out.data.as_mut_ptr());
        pool.run(chunks, &|c| {
            let i0 = c * block;
            let i1 = ((c + 1) * block).min(m);
            if i0 >= i1 {
                return;
            }
            // SAFETY: disjoint row blocks of `out`, confined by the pool's
            // latch to this call — see `matmul_into_pool`.
            let out_rows =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.at(i0 * n), (i1 - i0) * n) };
            self.matmul_bt_rows(other, i0, i1, out_rows);
        });
    }

    /// Rows `[i0, i1)` of `self · otherᵀ` into `out_rows` — the one shared
    /// inner kernel for both modes, so they agree bit-for-bit by
    /// construction.
    fn matmul_bt_rows(&self, other: &Mat, i0: usize, i1: usize, out_rows: &mut [f32]) {
        let n = other.rows;
        for i in i0..i1 {
            let a_row = self.row(i);
            let base = (i - i0) * n;
            let out_row = &mut out_rows[base..base + n];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, other.row(j));
            }
        }
    }

    /// Returns the transpose as a new matrix.
    #[must_use]
    pub fn transposed(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// `self · otherᵀ` for training/gradient paths — the packed-transpose
    /// kernel.
    ///
    /// Under [`KernelMode::Blocked`] this packs `otherᵀ` into a contiguous
    /// buffer once and runs the register-tiled `fast` kernel,
    /// which sustains several times the throughput of [`Mat::matmul_bt`]'s
    /// latency-bound four-accumulator dot. The price is a different
    /// per-element summation order (and FMA rounding on CPUs that have it),
    /// so results differ from `matmul_bt` in the last bits. That makes this
    /// kernel safe exactly where downstream consumers tolerate FP
    /// reassociation — training — and unsafe in the forward sampling path,
    /// whose association order is pinned by the golden-output tests.
    ///
    /// Under [`KernelMode::Naive`] this routes to the dot-form reference
    /// loop, bit-identical to the pre-kernel-layer trainer. In either mode
    /// the result is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, naming both shapes.
    #[must_use]
    pub fn matmul_bt_packed(&self, other: &Mat) -> Mat {
        self.assert_bt_shapes(other);
        match kernel_mode() {
            KernelMode::Naive => self.matmul_bt(other),
            KernelMode::Blocked | KernelMode::Quantized => {
                count_gemm_call();
                let packed = other.transposed();
                let mut out = Mat::zeros(self.rows, other.rows);
                self.fast_gemm_pool(&packed, &mut out, pool::global(), false);
                out
            }
        }
    }

    /// [`Mat::matmul_bt_packed`]'s blocked arm on an explicit pool —
    /// bit-identical to the global-pool blocked arm at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, naming both shapes.
    #[must_use]
    pub fn matmul_bt_packed_on(&self, other: &Mat, pool: &ThreadPool) -> Mat {
        self.assert_bt_shapes(other);
        count_gemm_call();
        let packed = other.transposed();
        let mut out = Mat::zeros(self.rows, other.rows);
        self.fast_gemm_pool(&packed, &mut out, pool, false);
        out
    }

    /// `self · other` through the reassociating training kernel.
    ///
    /// Same contract as [`Mat::matmul_bt_packed`]: bit-identical at any
    /// thread count, but a different per-element association order (and FMA
    /// rounding where available) than [`Mat::matmul`] — so it may only be
    /// used on the training path, never in forward sampling. Under
    /// [`KernelMode::Naive`] it routes to the reference loop.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, naming both shapes.
    #[must_use]
    pub fn matmul_fast(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.assert_matmul_shapes(other, &out);
        count_gemm_call();
        match kernel_mode() {
            KernelMode::Naive => self.matmul_into_naive(other, &mut out),
            KernelMode::Blocked | KernelMode::Quantized => {
                self.fast_gemm_pool(other, &mut out, pool::global(), false);
            }
        }
        out
    }

    /// [`Mat::matmul_fast`]'s blocked arm on an explicit pool —
    /// bit-identical to the global-pool blocked arm at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, naming both shapes.
    #[must_use]
    pub fn matmul_fast_on(&self, other: &Mat, pool: &ThreadPool) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.assert_matmul_shapes(other, &out);
        count_gemm_call();
        self.fast_gemm_pool(other, &mut out, pool, false);
        out
    }

    /// `selfᵀ · other` accumulated into `out` through the reassociating
    /// training kernel — the weight-gradient (`dW += Xᵀ·dY`) fast path.
    ///
    /// Packs `selfᵀ` once (an O(r·m) copy against the O(r·m·n) product) so
    /// the reduction runs down contiguous rows. Same contract as
    /// [`Mat::matmul_fast`]: thread-count invariant, association order
    /// differs from [`Mat::matmul_t_accum`], training-path only. Under
    /// [`KernelMode::Naive`] it routes to the reference loop.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch, naming both shapes.
    pub fn matmul_t_accum_fast(&self, other: &Mat, out: &mut Mat) {
        self.assert_t_accum_shapes(other, out);
        count_gemm_call();
        match kernel_mode() {
            KernelMode::Naive => self.matmul_t_accum_naive(other, out),
            KernelMode::Blocked | KernelMode::Quantized => {
                let xt = self.transposed();
                xt.fast_gemm_pool(other, out, pool::global(), true);
            }
        }
    }

    /// [`Mat::matmul_t_accum_fast`]'s blocked arm on an explicit pool —
    /// bit-identical to the global-pool blocked arm at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch, naming both shapes.
    pub fn matmul_t_accum_fast_on(&self, other: &Mat, out: &mut Mat, pool: &ThreadPool) {
        self.assert_t_accum_shapes(other, out);
        count_gemm_call();
        let xt = self.transposed();
        xt.fast_gemm_pool(other, out, pool, true);
    }

    /// Chunks output rows across the pool and hands each disjoint block to
    /// the [`crate::fast`] kernel. Each output row is produced entirely by
    /// one chunk, so the chunk count (and thus thread count) can never
    /// change the bits.
    fn fast_gemm_pool(&self, other: &Mat, out: &mut Mat, pool: &ThreadPool, accumulate: bool) {
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let chunks = row_chunks(pool.threads(), m, k.saturating_mul(n));
        let block = m.div_ceil(chunks.max(1));
        let out_ptr = RowsPtr(out.data.as_mut_ptr());
        pool.run(chunks, &|c| {
            let i0 = c * block;
            let i1 = ((c + 1) * block).min(m);
            if i0 >= i1 {
                return;
            }
            // SAFETY: disjoint row blocks of `out`, confined by the pool's
            // latch to this call — see `matmul_into_pool`.
            let out_rows =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.at(i0 * n), (i1 - i0) * n) };
            crate::fast::gemm_rows(&self.data, k, &other.data, n, i0..i1, out_rows, accumulate);
        });
    }

    /// Adds `other` element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements by `s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets all elements to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    // Four accumulators let the vectorizer keep independent FMA chains.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// Adds `scale * b` into `a`.
pub(crate) fn axpy(a: &mut [f32], scale: f32, b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x += scale * y;
    }
}

/// Rows `[i0, i1)` of `a · b` into `out_rows`, cache-blocked over k.
///
/// Bit-exactness contract: for every output element this performs the same
/// f32 additions in the same order as `matmul_into_naive` — ascending `kk`,
/// one accumulation per nonzero `a[i][kk]`, zeros skipped rather than added
/// (adding `0.0 * b` is *not* an identity for `-0.0`/inf/NaN operands). The
/// k-tiling only regroups iterations; the 4-wide micro-kernel fuses four
/// consecutive accumulation passes into one sweep of `out_row` but keeps
/// each element's add chain sequential, falling back to per-k skips when a
/// zero appears. The rejected alternative — packing `bᵀ` and reducing each
/// element as a dot product — would be faster still but sums in a different
/// association order, which would break the golden-output tests.
fn matmul_rows_blocked(a: &Mat, b: &Mat, i0: usize, i1: usize, out_rows: &mut [f32]) {
    let (k, n) = (a.cols, b.cols);
    out_rows.fill(0.0);
    let mut kt = 0;
    while kt < k {
        let kt_end = (kt + K_TILE).min(k);
        for i in i0..i1 {
            let a_row = &a.data[i * k..(i + 1) * k];
            let base = (i - i0) * n;
            let out_row = &mut out_rows[base..base + n];
            let mut kk = kt;
            while kk + 8 <= kt_end {
                let av = &a_row[kk..kk + 8];
                if av.iter().all(|&a| a != 0.0) {
                    let b0 = &b.data[kk * n..][..n];
                    let b1 = &b.data[(kk + 1) * n..][..n];
                    let b2 = &b.data[(kk + 2) * n..][..n];
                    let b3 = &b.data[(kk + 3) * n..][..n];
                    let b4 = &b.data[(kk + 4) * n..][..n];
                    let b5 = &b.data[(kk + 5) * n..][..n];
                    let b6 = &b.data[(kk + 6) * n..][..n];
                    let b7 = &b.data[(kk + 7) * n..][..n];
                    let (a0, a1, a2, a3) = (av[0], av[1], av[2], av[3]);
                    let (a4, a5, a6, a7) = (av[4], av[5], av[6], av[7]);
                    for (j, o) in out_row.iter_mut().enumerate() {
                        let s = (((*o + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
                        *o = (((s + a4 * b4[j]) + a5 * b5[j]) + a6 * b6[j]) + a7 * b7[j];
                    }
                } else {
                    for (d, &aik) in av.iter().enumerate() {
                        if aik != 0.0 {
                            axpy(out_row, aik, &b.data[(kk + d) * n..][..n]);
                        }
                    }
                }
                kk += 8;
            }
            while kk + 4 <= kt_end {
                let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                    let b0 = &b.data[kk * n..][..n];
                    let b1 = &b.data[(kk + 1) * n..][..n];
                    let b2 = &b.data[(kk + 2) * n..][..n];
                    let b3 = &b.data[(kk + 3) * n..][..n];
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o = (((*o + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
                    }
                } else {
                    for (d, aik) in [a0, a1, a2, a3].into_iter().enumerate() {
                        if aik != 0.0 {
                            axpy(out_row, aik, &b.data[(kk + d) * n..][..n]);
                        }
                    }
                }
                kk += 4;
            }
            for (d, &aik) in a_row[kk..kt_end].iter().enumerate() {
                if aik != 0.0 {
                    axpy(out_row, aik, &b.data[(kk + d) * n..][..n]);
                }
            }
        }
        kt = kt_end;
    }
}

/// Rows `[i0, i1)` of `xᵀ · dy` accumulated into `out_rows`, cache-blocked
/// over the reduction dimension `r` (the shared leading dimension).
///
/// Same bit-exactness contract as [`matmul_rows_blocked`]: the naive kernel
/// accumulates each `out[i][j]` over ascending `r`, skipping `x[r][i] == 0`;
/// swapping the loop nest to `i`-outer and tiling `r` preserves that
/// per-element order exactly.
fn t_accum_rows_blocked(x: &Mat, dy: &Mat, i0: usize, i1: usize, out_rows: &mut [f32]) {
    let (rows, cols, n) = (x.rows, x.cols, dy.cols);
    let mut rt = 0;
    while rt < rows {
        let rt_end = (rt + K_TILE).min(rows);
        for i in i0..i1 {
            let base = (i - i0) * n;
            let out_row = &mut out_rows[base..base + n];
            let mut r = rt;
            while r + 8 <= rt_end {
                let xv: [f32; 8] = std::array::from_fn(|d| x.data[(r + d) * cols + i]);
                if xv.iter().all(|&v| v != 0.0) {
                    let d0 = &dy.data[r * n..][..n];
                    let d1 = &dy.data[(r + 1) * n..][..n];
                    let d2 = &dy.data[(r + 2) * n..][..n];
                    let d3 = &dy.data[(r + 3) * n..][..n];
                    let d4 = &dy.data[(r + 4) * n..][..n];
                    let d5 = &dy.data[(r + 5) * n..][..n];
                    let d6 = &dy.data[(r + 6) * n..][..n];
                    let d7 = &dy.data[(r + 7) * n..][..n];
                    let (x0, x1, x2, x3) = (xv[0], xv[1], xv[2], xv[3]);
                    let (x4, x5, x6, x7) = (xv[4], xv[5], xv[6], xv[7]);
                    for (j, o) in out_row.iter_mut().enumerate() {
                        let s = (((*o + x0 * d0[j]) + x1 * d1[j]) + x2 * d2[j]) + x3 * d3[j];
                        *o = (((s + x4 * d4[j]) + x5 * d5[j]) + x6 * d6[j]) + x7 * d7[j];
                    }
                } else {
                    for (d, &v) in xv.iter().enumerate() {
                        if v != 0.0 {
                            axpy(out_row, v, &dy.data[(r + d) * n..][..n]);
                        }
                    }
                }
                r += 8;
            }
            while r + 4 <= rt_end {
                let x0 = x.data[r * cols + i];
                let x1 = x.data[(r + 1) * cols + i];
                let x2 = x.data[(r + 2) * cols + i];
                let x3 = x.data[(r + 3) * cols + i];
                if x0 != 0.0 && x1 != 0.0 && x2 != 0.0 && x3 != 0.0 {
                    let d0 = &dy.data[r * n..][..n];
                    let d1 = &dy.data[(r + 1) * n..][..n];
                    let d2 = &dy.data[(r + 2) * n..][..n];
                    let d3 = &dy.data[(r + 3) * n..][..n];
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o = (((*o + x0 * d0[j]) + x1 * d1[j]) + x2 * d2[j]) + x3 * d3[j];
                    }
                } else {
                    for (d, xv) in [x0, x1, x2, x3].into_iter().enumerate() {
                        if xv != 0.0 {
                            axpy(out_row, xv, &dy.data[(r + d) * n..][..n]);
                        }
                    }
                }
                r += 4;
            }
            for r in r..rt_end {
                let xv = x.data[r * cols + i];
                if xv != 0.0 {
                    axpy(out_row, xv, &dy.data[r * n..][..n]);
                }
            }
        }
        rt = rt_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng::seed_from(5);
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (7, 5, 3), (8, 8, 8)] {
            let a = Mat::randn(m, k, 1.0, &mut rng);
            let b = Mat::randn(k, n, 1.0, &mut rng);
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_t_accum_is_xt_dy() {
        let mut rng = Rng::seed_from(6);
        let x = Mat::randn(5, 3, 1.0, &mut rng);
        let dy = Mat::randn(5, 4, 1.0, &mut rng);
        let mut acc = Mat::zeros(3, 4);
        x.matmul_t_accum(&dy, &mut acc);
        // Reference: transpose x manually then matmul.
        let mut xt = Mat::zeros(3, 5);
        for i in 0..5 {
            for j in 0..3 {
                xt.set(j, i, x.get(i, j));
            }
        }
        let expect = naive_matmul(&xt, &dy);
        for (a, e) in acc.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
        // Accumulation: calling again doubles.
        x.matmul_t_accum(&dy, &mut acc);
        for (a, e) in acc.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - 2.0 * e).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_bt_is_a_bt() {
        let mut rng = Rng::seed_from(7);
        let a = Mat::randn(4, 6, 1.0, &mut rng);
        let b = Mat::randn(3, 6, 1.0, &mut rng);
        let got = a.matmul_bt(&b);
        let mut bt = Mat::zeros(6, 3);
        for i in 0..3 {
            for j in 0..6 {
                bt.set(j, i, b.get(i, j));
            }
        }
        let expect = naive_matmul(&a, &bt);
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn elementwise_helpers() {
        let mut a = Mat::from_rows(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_rows(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn accessors() {
        let mut m = Mat::zeros(2, 2);
        m.set(1, 0, 9.0);
        assert_eq!(m.get(1, 0), 9.0);
        assert_eq!(m.row(1), &[9.0, 0.0]);
        m.row_mut(0)[1] = 3.0;
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn dot_handles_remainders() {
        for len in 0..10 {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i * 2) as f32).collect();
            let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot(&a, &b), expect);
        }
    }
}
