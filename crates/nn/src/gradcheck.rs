//! Finite-difference gradient verification.
//!
//! Every backward pass in this substrate is hand-written, so the test-suite
//! proves them correct against central finite differences. The checker is
//! generic over "a model" — anything that can visit its [`Param`]s and
//! evaluate a scalar loss — so the same harness validates individual layers
//! and the full GPT.
//!
//! # Examples
//!
//! ```
//! use pagpass_nn::gradcheck::GradCheck;
//! use pagpass_nn::{Linear, Mat, Rng};
//!
//! let mut layer = Linear::new(3, 2, &mut Rng::seed_from(0));
//! let x = Mat::randn(4, 3, 1.0, &mut Rng::seed_from(1));
//! let report = GradCheck::default().run(
//!     &mut layer,
//!     &|l, f| l.visit_params(f),
//!     &mut |l| {
//!         // loss = sum of outputs; gradient of loss wrt outputs is 1.
//!         let y = l.forward(&x);
//!         let dy = Mat::from_rows(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
//!         let _ = l.backward(&dy);
//!         y.as_slice().iter().sum()
//!     },
//! );
//! assert!(report.max_rel < 1e-2, "max relative error {}", report.max_rel);
//! ```

use crate::{Param, Rng};

/// A visitor over a model's parameters, as accepted by [`GradCheck::run`].
pub type ParamVisitor<'m, M> = dyn Fn(&mut M, &mut dyn FnMut(&mut Param)) + 'm;

/// Result of a gradient check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Number of scalar weights verified.
    pub checked: usize,
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs: f32,
    /// Largest relative difference, `|a-n| / max(1e-3, |a|+|n|)`.
    pub max_rel: f32,
    /// Coordinates whose error exceeded **both** tolerances. A coordinate
    /// with a large relative error but negligible absolute error is `f32`
    /// noise on a near-zero gradient, not a bug; only joint violations
    /// count.
    pub failures: usize,
}

/// Configuration for a finite-difference check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Perturbation size for central differences.
    pub eps: f32,
    /// Weights sampled per parameter tensor.
    pub samples_per_param: usize,
    /// RNG seed for index sampling.
    pub seed: u64,
    /// Absolute-error tolerance for [`Report::failures`].
    pub tol_abs: f32,
    /// Relative-error tolerance for [`Report::failures`].
    pub tol_rel: f32,
}

impl Default for GradCheck {
    fn default() -> GradCheck {
        GradCheck {
            eps: 1e-2,
            samples_per_param: 6,
            seed: 0x9e37,
            tol_abs: 2e-3,
            tol_rel: 2e-2,
        }
    }
}

impl GradCheck {
    /// Runs the check.
    ///
    /// `grad_loss` must zero any stale gradients, run forward *and*
    /// backward, and return the loss (like [`crate::Gpt::compute_grads`]).
    /// It is re-invoked after each perturbation, so it must be
    /// deterministic. The analytic gradient is read from the parameters
    /// after the first call.
    pub fn run<M>(
        &self,
        model: &mut M,
        visit: &ParamVisitor<'_, M>,
        grad_loss: &mut dyn FnMut(&mut M) -> f32,
    ) -> Report {
        // 1. Analytic gradients.
        let _ = grad_loss(model);
        let mut analytic: Vec<Vec<f32>> = Vec::new();
        visit(model, &mut |p| analytic.push(p.grad.as_slice().to_vec()));

        // 2. Sample weight coordinates.
        let mut rng = Rng::seed_from(self.seed);
        let mut coords: Vec<(usize, usize)> = Vec::new();
        for (pi, g) in analytic.iter().enumerate() {
            for _ in 0..self.samples_per_param.min(g.len()) {
                coords.push((pi, rng.below(g.len())));
            }
        }

        // 3. Central differences.
        let mut report = Report {
            checked: 0,
            max_abs: 0.0,
            max_rel: 0.0,
            failures: 0,
        };
        for (pi, ei) in coords {
            let orig = self.peek(model, visit, pi, ei);
            self.poke(model, visit, pi, ei, orig + self.eps);
            let loss_plus = grad_loss(model);
            self.poke(model, visit, pi, ei, orig - self.eps);
            let loss_minus = grad_loss(model);
            self.poke(model, visit, pi, ei, orig);
            let numeric = (loss_plus - loss_minus) / (2.0 * self.eps);
            let a = analytic[pi][ei];
            let abs = (a - numeric).abs();
            let rel = abs / (a.abs() + numeric.abs()).max(1e-3);
            report.checked += 1;
            report.max_abs = report.max_abs.max(abs);
            report.max_rel = report.max_rel.max(rel);
            if abs > self.tol_abs && rel > self.tol_rel {
                report.failures += 1;
            }
        }
        report
    }

    fn peek<M>(&self, model: &mut M, visit: &ParamVisitor<'_, M>, pi: usize, ei: usize) -> f32 {
        let mut value = 0.0;
        let mut idx = 0;
        visit(model, &mut |p| {
            if idx == pi {
                value = p.value.as_slice()[ei];
            }
            idx += 1;
        });
        value
    }

    fn poke<M>(
        &self,
        model: &mut M,
        visit: &ParamVisitor<'_, M>,
        pi: usize,
        ei: usize,
        value: f32,
    ) {
        let mut idx = 0;
        visit(model, &mut |p| {
            if idx == pi {
                p.value.as_mut_slice()[ei] = value;
            }
            idx += 1;
        });
    }
}
