//! Pack-once int8 quantized weights for the decode path.
//!
//! [`QMat`] stores a weight matrix in the ggml `Q8_0` idiom: int8 blocks of
//! [`QBLOCK`] values with one f32 scale per block, quantized symmetrically
//! by per-block absmax. Weights are packed **transposed** — one contiguous
//! int8 lane per *output* column, padded to a whole number of blocks — so
//! the decode matvec streams each column once and the per-block scales sit
//! next to the data they dequantize. Activations are quantized per row, per
//! block, at matmul time with the same scheme.
//!
//! # Determinism contract
//!
//! Quantized decode is an explicit *alternative* mode with its own golden
//! files, not a bit-compatible replacement for the f32 kernels — but within
//! the mode the output is pinned exactly:
//!
//! * Each block dot is an exact `i32` sum of `i8×i8` products. 32 products
//!   of magnitude ≤ 127² sum to < 2²⁰, so no widening path can overflow or
//!   round: the AVX2 widening-multiply-add lanes and the portable scalar
//!   loop produce the *same integer*, making SIMD and portable dispatch
//!   bitwise identical.
//! * The f32 accumulation `acc += (w_scale · x_scale) · block_sum` runs in
//!   ascending block order in both dispatch paths.
//! * Parallelism shards disjoint output columns; every output element is
//!   computed start-to-finish by one thread in the same order the
//!   single-threaded loop uses. Results are identical at any thread count.
//!
//! Training never touches this module: gradients flow through the f32
//! weights, and a session packs them once at build time for decode only.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::mat::{count_gemm_call, Mat};
use crate::pool;

/// Values per quantization block (per-block f32 scale granularity).
pub const QBLOCK: usize = 32;

/// Output columns per SIMD tile in the interleaved weight copy. Sixteen
/// columns = one 256-bit weight load per activation pair, accumulated into
/// two `i32x8` lane vectors (one block-sum per column) that share each
/// pair's broadcast.
const TILE: usize = 16;

/// `i8` pairs per block — `vpmaddwd` consumes two adjacent values per lane.
const PAIRS: usize = QBLOCK / 2;

/// Environment variable that forces the portable scalar int8 path even when
/// AVX2 is available (set to anything but `0`). The CI equivalence job runs
/// one leg under it to prove SIMD and portable dispatch agree bitwise.
pub const FORCE_PORTABLE_ENV: &str = "PAGPASS_FORCE_PORTABLE";

/// Lazily seeded from [`FORCE_PORTABLE_ENV`]; flippable in-process by tests
/// via [`set_force_portable`].
static FORCE_PORTABLE: OnceLock<AtomicBool> = OnceLock::new();

fn force_portable_flag() -> &'static AtomicBool {
    FORCE_PORTABLE.get_or_init(|| {
        AtomicBool::new(std::env::var_os(FORCE_PORTABLE_ENV).is_some_and(|v| v != *"0"))
    })
}

/// Forces (or re-allows) portable scalar dispatch for the int8 kernels,
/// process-wide. Dispatch never changes results — the integer block dots
/// are exact — only speed; tests flip this to assert exactly that.
pub fn set_force_portable(on: bool) {
    // ORD: a dispatch preference, not a synchronization point; a reader
    // observing it one matmul late computes the same bits anyway.
    force_portable_flag().store(on, Ordering::Relaxed);
}

/// Whether the portable scalar int8 path is currently forced.
#[must_use]
pub fn force_portable() -> bool {
    // ORD: see `set_force_portable` — stale reads are benign.
    force_portable_flag().load(Ordering::Relaxed)
}

thread_local! {
    /// Per-call activation scratch — quantized rows, their block scales,
    /// and the AVX2 pair operands — reused across matmuls. Decode issues a
    /// dozen small matvecs per token, where three heap allocations per call
    /// would rival the kernel itself. Only the submitting thread touches
    /// the buffers; pool chunks read them through shared slices that the
    /// borrow outlives.
    static X_SCRATCH: RefCell<(Vec<i8>, Vec<f32>, Vec<i32>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// A weight matrix packed once into per-column int8 blocks with per-block
/// f32 scales (symmetric absmax, block size [`QBLOCK`]).
///
/// Logical shape matches the f32 weight it was packed from: `in_dim ×
/// out_dim`, consumed as `x · W` with `x: rows × in_dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct QMat {
    in_dim: usize,
    out_dim: usize,
    /// Blocks per column: `in_dim.div_ceil(QBLOCK)`.
    blocks: usize,
    /// `out_dim` columns × `blocks × QBLOCK` int8 values, column-major;
    /// positions past `in_dim` are zero padding.
    data: Vec<i8>,
    /// `out_dim × blocks` dequantization scales, column-major.
    scales: Vec<f32>,
    /// Interleaved copy of `data` for the AVX2 fast path, covering the
    /// `out_dim / TILE` full column tiles: per tile, per block, [`PAIRS`]
    /// 32-byte groups holding each tile column's adjacent value pair —
    /// exactly the operand order `vpmaddwd` wants, so two madds yield all
    /// sixteen columns' pair products and no horizontal sum is ever
    /// needed. A pure function of `data`; tail columns past the last full
    /// tile are not mirrored and always take the scalar path.
    tiled: Vec<i8>,
    /// `scales` regrouped to match `tiled`: per tile, per block, the eight
    /// tile columns' scales contiguously (one `f32x8` load).
    tiled_scales: Vec<f32>,
}

/// Quantizes one block: `scale = absmax / 127`, `q = round(v / scale)` with
/// halves rounded away from zero. An all-zero block stores scale 0 and
/// zeros (0 · 0 = 0 exactly); `dst` positions past `src` are zeroed so
/// reused scratch never leaks stale values into the padding.
fn quantize_block(src: &[f32], dst: &mut [i8]) -> f32 {
    // |v| clears the sign bit, and IEEE bit patterns of non-negative floats
    // order like their values — so the absmax is an integer max reduction,
    // which vectorizes where a float max chain would stay a serial
    // dependency. Bit-exact with `fold(0.0, |m, v| m.max(v.abs()))` for
    // finite inputs.
    let absmax_bits = src
        .iter()
        .fold(0u32, |m, v| m.max(v.to_bits() & 0x7fff_ffff));
    let absmax = f32::from_bits(absmax_bits);
    if absmax == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let scale = absmax / 127.0;
    let inv = 127.0 / absmax;
    for (d, &v) in dst.iter_mut().zip(src) {
        // Round half away from zero by biasing ±0.5 and truncating in the
        // cast. Baseline x86-64 has no round instruction, so `f32::round`
        // is a libm call per element — the activation quantization runs
        // before every decode matvec, where thousands of such calls per
        // token would rival the kernel itself. absmax scaling bounds
        // |v·inv| by 127, so the truncation is exact; clamp anyway to keep
        // the i8 contract local.
        let biased = v * inv + 0.5f32.copysign(v);
        *d = (biased as i32).clamp(-127, 127) as i8;
    }
    dst[src.len()..].fill(0);
    scale
}

impl QMat {
    /// Packs an `in_dim × out_dim` f32 weight into quantized column lanes.
    /// Pure function of the weight bits: packing twice yields equal `QMat`s.
    #[must_use]
    pub fn pack(w: &Mat) -> QMat {
        let (in_dim, out_dim) = (w.rows(), w.cols());
        let blocks = in_dim.div_ceil(QBLOCK).max(1);
        let padded = blocks * QBLOCK;
        let mut data = vec![0i8; out_dim * padded];
        let mut scales = vec![0f32; out_dim * blocks];
        let mut col = vec![0f32; padded];
        for j in 0..out_dim {
            col.fill(0.0);
            for (i, slot) in col.iter_mut().enumerate().take(in_dim) {
                *slot = w.row(i)[j];
            }
            let lane = &mut data[j * padded..(j + 1) * padded];
            for b in 0..blocks {
                scales[j * blocks + b] = quantize_block(
                    &col[b * QBLOCK..(b + 1) * QBLOCK],
                    &mut lane[b * QBLOCK..(b + 1) * QBLOCK],
                );
            }
        }
        let tiles = out_dim / TILE;
        let mut tiled = vec![0i8; tiles * blocks * TILE * QBLOCK];
        let mut tiled_scales = vec![0f32; tiles * blocks * TILE];
        for t in 0..tiles {
            for b in 0..blocks {
                let chunk = &mut tiled[(t * blocks + b) * TILE * QBLOCK..][..TILE * QBLOCK];
                for l in 0..TILE {
                    let lane = &data[(t * TILE + l) * padded..];
                    for p in 0..PAIRS {
                        chunk[p * 2 * TILE + l * 2] = lane[b * QBLOCK + 2 * p];
                        chunk[p * 2 * TILE + l * 2 + 1] = lane[b * QBLOCK + 2 * p + 1];
                    }
                    tiled_scales[(t * blocks + b) * TILE + l] = scales[(t * TILE + l) * blocks + b];
                }
            }
        }
        QMat {
            in_dim,
            out_dim,
            blocks,
            data,
            scales,
            tiled,
            tiled_scales,
        }
    }

    /// Input dimension (rows of the packed weight).
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension (columns of the packed weight).
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Dequantizes back to an `in_dim × out_dim` f32 matrix. Round-trip is
    /// lossy by at most half a quantization step per element
    /// (`scale / 2`); the pack/unpack tests assert that bound.
    #[must_use]
    pub fn unpack(&self) -> Mat {
        let padded = self.blocks * QBLOCK;
        let mut out = Mat::zeros(self.in_dim, self.out_dim);
        for j in 0..self.out_dim {
            let lane = &self.data[j * padded..(j + 1) * padded];
            for (i, &q) in lane.iter().enumerate().take(self.in_dim) {
                let scale = self.scales[j * self.blocks + i / QBLOCK];
                out.row_mut(i)[j] = f32::from(q) * scale;
            }
        }
        out
    }

    /// `x · W` with per-row activation quantization: `x: rows × in_dim` →
    /// `rows × out_dim`. Runs on the global [`pool`]; output is bitwise
    /// identical at any thread count and under either dispatch path (see
    /// the module docs).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, x: &Mat) -> Mat {
        assert_eq!(
            x.cols(),
            self.in_dim,
            "qmatmul: inner dimensions must agree (lhs {}x{} · packed {}x{})",
            x.rows(),
            x.cols(),
            self.in_dim,
            self.out_dim
        );
        count_gemm_call();
        let rows = x.rows();
        let padded = self.blocks * QBLOCK;
        let avx2 = use_avx2();
        // The tiled SIMD path consumes pre-packed madd operands; skip
        // building them when only the scalar loop will run.
        let want_pairs = avx2 && self.out_dim >= TILE;
        let mut out = Mat::zeros(rows, self.out_dim);
        X_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (qx, xscales, xpairs) = &mut *scratch;
            qx.clear();
            qx.resize(rows * padded, 0);
            xscales.clear();
            xscales.resize(rows * self.blocks, 0.0);
            xpairs.clear();
            if want_pairs {
                xpairs.resize(rows * self.blocks * PAIRS, 0);
            }
            // Quantize every activation row once, up front, packing each
            // adjacent i8 pair (widened to i16) into one broadcastable i32
            // while the freshly quantized lane is still in cache.
            for r in 0..rows {
                let src = x.row(r);
                let lane = &mut qx[r * padded..(r + 1) * padded];
                for b in 0..self.blocks {
                    let hi = ((b + 1) * QBLOCK).min(self.in_dim);
                    xscales[r * self.blocks + b] = quantize_block(
                        &src[b * QBLOCK..hi],
                        &mut lane[b * QBLOCK..(b + 1) * QBLOCK],
                    );
                }
                if want_pairs {
                    let dst = &mut xpairs[r * self.blocks * PAIRS..][..self.blocks * PAIRS];
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: `want_pairs` implies `use_avx2` confirmed the
                    // cpuid feature.
                    unsafe {
                        widen_pairs_avx2(lane, dst);
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    widen_pairs_portable(lane, dst);
                }
            }
            self.matmul_quantized_rows(qx, xscales, xpairs, avx2, rows, &mut out);
        });
        out
    }

    /// The sharded kernel over pre-quantized activations. Chunks own
    /// disjoint output-column ranges, so every `(row, col)` element is
    /// written exactly once by exactly one thread. `xpairs` carries the
    /// broadcastable pair operands for the AVX2 tile kernel (empty when
    /// `avx2` is off or the matrix has no full tile).
    fn matmul_quantized_rows(
        &self,
        qx: &[i8],
        xscales: &[f32],
        xpairs: &[i32],
        avx2: bool,
        rows: usize,
        out: &mut Mat,
    ) {
        let pool = pool::global();
        let n = self.out_dim;
        let chunks = col_chunks(pool.threads(), n, rows.saturating_mul(self.in_dim.max(1)));
        // Chunk boundaries snap to whole column tiles so the AVX2 path
        // never straddles one; trailing chunks may come up empty. Chunking
        // never changes bits either way — every element is computed
        // start-to-finish by one thread in one fixed order.
        let block = n.div_ceil(chunks.max(1)).next_multiple_of(TILE);
        let out_ptr = ColsPtr(out.as_mut_slice().as_mut_ptr());
        pool.run(chunks, &|c| {
            let j0 = (c * block).min(n);
            let j1 = ((c + 1) * block).min(n);
            // Dispatch once per chunk, not per block: the column loop is
            // monomorphized over the dot so it inlines — an indirect call
            // per 32-value block would dominate the decode-sized matvecs
            // this kernel exists for. Both paths run the same f32
            // accumulation sequence per element, so dispatch never changes
            // the result bits.
            #[cfg(target_arch = "x86_64")]
            if avx2 {
                // SAFETY: `use_avx2` confirmed the cpuid feature.
                unsafe { self.cols_avx2(qx, xscales, xpairs, rows, j0, j1, out_ptr) };
                return;
            }
            let _ = (avx2, &xpairs);
            self.cols_loop(qx, xscales, rows, j0, j1, out_ptr, block_dot_portable);
        });
    }

    /// One chunk's column range under AVX2. Full tiles run the interleaved
    /// kernel: per block, [`PAIRS`] madds accumulate all eight columns'
    /// exact integer block sums in `i32x8` lanes (no horizontal sum), then
    /// one `f32x8` multiply-add applies the scales. Lane `l` performs
    /// exactly the scalar sequence `acc += (ws[b]·xs[b]) · isum[b] as f32`
    /// in ascending block order, so the output is bitwise identical to the
    /// portable loop. Tail columns past the last full tile fall back to the
    /// scalar loop with the SIMD block dot.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // Flattened hot-path arguments: bundling them into a struct would just
    // rebuild the same eight fields per chunk for no clarity gain.
    #[allow(clippy::too_many_arguments)]
    unsafe fn cols_avx2(
        &self,
        qx: &[i8],
        xscales: &[f32],
        xpairs: &[i32],
        rows: usize,
        j0: usize,
        j1: usize,
        out: ColsPtr,
    ) {
        use std::arch::x86_64::{
            _mm256_add_epi32, _mm256_add_ps, _mm256_castsi256_si128, _mm256_cvtepi32_ps,
            _mm256_cvtepi8_epi16, _mm256_extracti128_si256, _mm256_loadu_ps, _mm256_loadu_si256,
            _mm256_madd_epi16, _mm256_mul_ps, _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps,
            _mm256_setzero_si256, _mm256_storeu_ps,
        };
        debug_assert_eq!(j0 % TILE, 0, "chunks must start on a tile boundary");
        let n = self.out_dim;
        let mut j = j0;
        while j + TILE <= j1 {
            let t = j / TILE;
            for r in 0..rows {
                let xp = &xpairs[r * self.blocks * PAIRS..][..self.blocks * PAIRS];
                let xs = &xscales[r * self.blocks..(r + 1) * self.blocks];
                let mut acc_lo = _mm256_setzero_ps();
                let mut acc_hi = _mm256_setzero_ps();
                for b in 0..self.blocks {
                    let wtile =
                        &self.tiled[(t * self.blocks + b) * TILE * QBLOCK..][..TILE * QBLOCK];
                    let mut isum_lo = _mm256_setzero_si256();
                    let mut isum_hi = _mm256_setzero_si256();
                    for p in 0..PAIRS {
                        // SAFETY: `wtile` holds TILE·QBLOCK = PAIRS·32
                        // bytes, so group `p` covers bytes `[32p, 32p+32)`:
                        // all sixteen tile columns' pair `p`.
                        let w = unsafe { _mm256_loadu_si256(wtile.as_ptr().add(p * 32).cast()) };
                        let xv = _mm256_set1_epi32(xp[b * PAIRS + p]);
                        // i16 widening keeps every product exact; the i32
                        // lane adds are exact integers in any order. Both
                        // column halves share one pair broadcast.
                        isum_lo = _mm256_add_epi32(
                            isum_lo,
                            _mm256_madd_epi16(_mm256_cvtepi8_epi16(_mm256_castsi256_si128(w)), xv),
                        );
                        isum_hi = _mm256_add_epi32(
                            isum_hi,
                            _mm256_madd_epi16(
                                _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(w)),
                                xv,
                            ),
                        );
                    }
                    let xsb = _mm256_set1_ps(xs[b]);
                    // SAFETY: tile `t` < out_dim/TILE and `b` < blocks index
                    // inside `tiled_scales` by construction in `pack`; the
                    // two loads cover the tile's sixteen scales.
                    let (ws_lo, ws_hi) = unsafe {
                        let base = self.tiled_scales.as_ptr().add((t * self.blocks + b) * TILE);
                        (_mm256_loadu_ps(base), _mm256_loadu_ps(base.add(TILE / 2)))
                    };
                    // < 2²⁰ per lane, so the i32 → f32 convert is exact.
                    acc_lo = _mm256_add_ps(
                        acc_lo,
                        _mm256_mul_ps(_mm256_mul_ps(ws_lo, xsb), _mm256_cvtepi32_ps(isum_lo)),
                    );
                    acc_hi = _mm256_add_ps(
                        acc_hi,
                        _mm256_mul_ps(_mm256_mul_ps(ws_hi, xsb), _mm256_cvtepi32_ps(isum_hi)),
                    );
                }
                // SAFETY: the chunk owns columns [j0, j1) exclusively and
                // `j + TILE ≤ j1 ≤ n`, so the two 8-lane stores stay inside
                // row `r` of the `rows × n` output.
                unsafe {
                    _mm256_storeu_ps(out.at(r * n + j), acc_lo);
                    _mm256_storeu_ps(out.at(r * n + j + TILE / 2), acc_hi);
                }
            }
            j += TILE;
        }
        self.cols_loop(qx, xscales, rows, j, j1, out, block_dot_avx2);
    }

    /// The shared column loop, generic over the block dot so each dispatch
    /// path compiles to a fully inlined kernel.
    #[inline(always)]
    // Same flattened signature as `cols_avx2`, which tail-calls into this.
    #[allow(clippy::too_many_arguments)]
    fn cols_loop(
        &self,
        qx: &[i8],
        xscales: &[f32],
        rows: usize,
        j0: usize,
        j1: usize,
        out: ColsPtr,
        dot: impl Fn(&[i8], &[i8]) -> i32,
    ) {
        let n = self.out_dim;
        let padded = self.blocks * QBLOCK;
        for j in j0..j1 {
            let wlane = &self.data[j * padded..(j + 1) * padded];
            let wscales = &self.scales[j * self.blocks..(j + 1) * self.blocks];
            for r in 0..rows {
                let xlane = &qx[r * padded..(r + 1) * padded];
                let xs = &xscales[r * self.blocks..(r + 1) * self.blocks];
                let mut acc = 0.0f32;
                for b in 0..self.blocks {
                    let isum = dot(
                        &xlane[b * QBLOCK..(b + 1) * QBLOCK],
                        &wlane[b * QBLOCK..(b + 1) * QBLOCK],
                    );
                    acc += (wscales[b] * xs[b]) * isum as f32;
                }
                // SAFETY: the calling chunk owns columns `[j0, j1)`
                // exclusively (chunks tile `0..n` disjointly), `r < rows`
                // and `j < n` index inside the `rows × n` output, and
                // `pool.run` returns only after every chunk finished,
                // confining the write to the current frame.
                unsafe { *out.at(r * n + j) = acc };
            }
        }
    }
}

/// How many column-range chunks to split the quantized matmul into.
/// Mirrors the f32 kernels' heuristic: tiny jobs run single-chunk because
/// waking parked workers costs more than the loop.
fn col_chunks(threads: usize, cols: usize, work_per_col: usize) -> usize {
    if threads <= 1 || cols < 2 || cols.saturating_mul(work_per_col) < (1 << 16) {
        1
    } else {
        threads.min(cols)
    }
}

/// Mutable base pointer smuggled into pool chunks; each chunk derives
/// disjoint element offsets from its column range, so aliasing never
/// occurs.
#[derive(Clone, Copy)]
struct ColsPtr(*mut f32);

impl ColsPtr {
    /// The pointer offset by `off` elements. A method (rather than field
    /// access) so closures capture the whole `Sync` wrapper, not the raw
    /// pointer inside it.
    fn at(self, off: usize) -> *mut f32 {
        // SAFETY: callers only offset within the allocation they wrapped.
        unsafe { self.0.add(off) }
    }
}

// SAFETY: chunks write disjoint column sets (enforced by the chunk → column
// mapping in `matmul_quantized_rows`) and the pool's latch confines all
// dereferences to the submitting call's stack frame.
unsafe impl Send for ColsPtr {}
// SAFETY: as above — shared access only ever touches disjoint elements.
unsafe impl Sync for ColsPtr {}

/// Whether the AVX2 int8 path should run: the CPU has the feature and
/// portable dispatch is not forced. Both paths return the same exact
/// integers (the module-docs overflow argument), so this picks speed only.
fn use_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        !force_portable() && is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Packs each adjacent quantized pair into one broadcastable `i32` — the
/// two values sign-extended to `i16`, low value in the low half — i.e. the
/// exact `vpmaddwd` operand [`QMat::matmul`] feeds the tile kernel.
#[allow(dead_code)] // the x86_64 build replaces it with the SIMD widen
fn widen_pairs_portable(lane: &[i8], out: &mut [i32]) {
    for (slot, pair) in out.iter_mut().zip(lane.chunks_exact(2)) {
        let lo = u32::from(pair[0] as i16 as u16);
        let hi = u32::from(pair[1] as i16 as u16);
        *slot = (lo | (hi << 16)) as i32;
    }
}

/// [`widen_pairs_portable`] as a single `vpmovsxbw` per 16 values: the
/// sign-extended i16 lanes land in memory in exactly the packed-pair order.
///
/// # Safety
///
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn widen_pairs_avx2(lane: &[i8], out: &mut [i32]) {
    use std::arch::x86_64::{
        _mm256_castsi256_si128, _mm256_cvtepi8_epi16, _mm256_extracti128_si256, _mm256_loadu_si256,
        _mm256_storeu_si256,
    };
    debug_assert_eq!(lane.len(), out.len() * 2, "one i32 slot per i8 pair");
    debug_assert_eq!(lane.len() % QBLOCK, 0, "lanes are whole blocks");
    for (src, dst) in lane.chunks_exact(32).zip(out.chunks_exact_mut(16)) {
        // SAFETY: `chunks_exact` guarantees 32 readable bytes and 16
        // writable i32 slots per iteration.
        unsafe {
            let w = _mm256_loadu_si256(src.as_ptr().cast());
            let lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(w));
            let hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(w));
            _mm256_storeu_si256(dst.as_mut_ptr().cast(), lo);
            _mm256_storeu_si256(dst.as_mut_ptr().add(8).cast(), hi);
        }
    }
}

/// Portable scalar reference: widen to `i32`, multiply, sum.
#[inline(always)]
fn block_dot_portable(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), QBLOCK);
    debug_assert_eq!(b.len(), QBLOCK);
    let mut sum = 0i32;
    for (&x, &w) in a.iter().zip(b) {
        sum += i32::from(x) * i32::from(w);
    }
    sum
}

/// AVX2 block dot: widen `i8 → i16`, `madd` to `i32` lanes, horizontal sum.
/// Every intermediate is exact (≤ 2·127² per `madd` lane, ≤ 32·127² per
/// block), so the result equals [`block_dot_portable`] bit for bit.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn block_dot_avx2(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), QBLOCK);
    debug_assert_eq!(b.len(), QBLOCK);
    // SAFETY: callers reach this only after `use_avx2` confirmed the cpuid
    // feature, and both slices carry exactly QBLOCK = 32 bytes (asserted
    // above), covering the two 16-byte loads.
    unsafe { block_dot_avx2_inner(a, b) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block_dot_avx2_inner(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_cvtepi8_epi16, _mm256_extracti128_si256,
        _mm256_madd_epi16, _mm_add_epi32, _mm_cvtsi128_si32, _mm_loadu_si128, _mm_shuffle_epi32,
    };
    let mut acc = None;
    for half in 0..2 {
        let xa = _mm_loadu_si128(a.as_ptr().add(half * 16).cast::<__m128i>());
        let xb = _mm_loadu_si128(b.as_ptr().add(half * 16).cast::<__m128i>());
        // i8 → i16 widening makes every product exact in the i16×i16
        // multiply; madd pairs two products into one i32 lane.
        let prod = _mm256_madd_epi16(_mm256_cvtepi8_epi16(xa), _mm256_cvtepi8_epi16(xb));
        acc = Some(match acc {
            None => prod,
            Some(v) => _mm256_add_epi32(v, prod),
        });
    }
    let v = acc.unwrap_or_else(|| unreachable!("loop ran twice"));
    // Horizontal i32 sum: integer addition is associative, so lane order
    // cannot change the result.
    let lo = _mm256_extracti128_si256::<0>(v);
    let hi = _mm256_extracti128_si256::<1>(v);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_01_10_11>(s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b10_11_00_01>(s));
    _mm_cvtsi128_si32(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f32 in [-1, 1).
    // DET: xorshift keeps the tests hermetic — no RNG crate, same stream on
    // every platform.
    fn pseudo(seed: &mut u64) -> f32 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((*seed >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    fn random_mat(rows: usize, cols: usize, seed: &mut u64) -> Mat {
        let data: Vec<f32> = (0..rows * cols).map(|_| pseudo(seed) * 3.0).collect();
        Mat::from_rows(rows, cols, data)
    }

    #[test]
    fn pack_unpack_round_trip_bounds_error_per_block_scale() {
        // Randomized shapes, including columns that are not a multiple of
        // the block size and a dimension smaller than one block.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for (in_dim, out_dim) in [(32, 8), (48, 5), (7, 3), (96, 96), (65, 17), (1, 1)] {
            let w = random_mat(in_dim, out_dim, &mut seed);
            let q = QMat::pack(&w);
            assert_eq!((q.in_dim(), q.out_dim()), (in_dim, out_dim));
            let back = q.unpack();
            for i in 0..in_dim {
                for j in 0..out_dim {
                    let orig = w.row(i)[j];
                    let deq = back.row(i)[j];
                    let scale = q.scales[j * q.blocks + i / QBLOCK];
                    assert!(
                        (orig - deq).abs() <= scale * 0.5 + 1e-6,
                        "{in_dim}x{out_dim} [{i}][{j}]: {orig} vs {deq} (scale {scale})"
                    );
                }
            }
        }
    }

    #[test]
    fn packing_is_deterministic() {
        let mut seed = 7;
        let w = random_mat(40, 12, &mut seed);
        assert_eq!(QMat::pack(&w), QMat::pack(&w));
    }

    #[test]
    fn zero_blocks_quantize_to_exact_zero() {
        let w = Mat::zeros(64, 6);
        let q = QMat::pack(&w);
        assert!(q.scales.iter().all(|&s| s == 0.0));
        assert_eq!(q.unpack(), w);
        let x = Mat::from_rows(2, 64, vec![1.5; 128]);
        let out = q.matmul(&x);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn avx2_and_portable_dispatch_are_bitwise_identical() {
        // The int8 block dots are exact integers, so forcing the portable
        // path must reproduce the SIMD output bit for bit — on non-AVX2
        // hosts both arms already run the scalar loop and the assertion is
        // trivially true.
        let mut seed = 42;
        for (rows, in_dim, out_dim) in [(1, 96, 288), (4, 48, 17), (3, 33, 5)] {
            let w = random_mat(in_dim, out_dim, &mut seed);
            let x = random_mat(rows, in_dim, &mut seed);
            let q = QMat::pack(&w);
            set_force_portable(false);
            let simd = q.matmul(&x);
            set_force_portable(true);
            let portable = q.matmul(&x);
            set_force_portable(false);
            assert_eq!(simd, portable, "{rows}x{in_dim}x{out_dim}");
        }
    }

    #[test]
    fn block_dot_matches_reference_on_extremes() {
        let mut a = [0i8; QBLOCK];
        let mut b = [0i8; QBLOCK];
        for i in 0..QBLOCK {
            a[i] = if i % 2 == 0 { 127 } else { -127 };
            b[i] = if i % 3 == 0 { -127 } else { 127 };
        }
        let want = block_dot_portable(&a, &b);
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            assert_eq!(block_dot_avx2(&a, &b), want);
        }
        // `use_avx2` honours both the cpuid check and the portable force.
        set_force_portable(true);
        assert!(!use_avx2());
        set_force_portable(false);
    }

    #[test]
    fn quantized_matmul_tracks_the_f32_product() {
        // Accuracy sanity: int8 block quantization stays within a small
        // relative error of the exact product on well-scaled inputs.
        let mut seed = 99;
        let w = random_mat(96, 64, &mut seed);
        let x = random_mat(2, 96, &mut seed);
        let q = QMat::pack(&w);
        let approx = q.matmul(&x);
        let exact = x.matmul(&w);
        let norm = exact.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, e) in approx.as_slice().iter().zip(exact.as_slice()) {
            assert!(
                (a - e).abs() <= norm * 0.02 + 1e-3,
                "quantized {a} vs exact {e} (norm {norm})"
            );
        }
    }

    #[test]
    fn matmul_is_identical_across_thread_counts() {
        // The global pool is process-wide, so this test shards manually:
        // compare the pooled entry point against a single-chunk rerun of
        // the same kernel (chunking only partitions columns).
        let mut seed = 11;
        let w = random_mat(70, 130, &mut seed);
        let x = random_mat(5, 70, &mut seed);
        let q = QMat::pack(&w);
        let a = q.matmul(&x);
        let b = q.matmul(&x);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let q = QMat::pack(&Mat::zeros(8, 4));
        let _ = q.matmul(&Mat::zeros(1, 9));
    }
}
