use serde::{Deserialize, Serialize};

use crate::Mat;

/// A trainable parameter: value matrix, gradient accumulator, and AdamW
/// moment state.
///
/// Layers own their `Param`s; the optimizer visits them through
/// [`AdamW::update`]. `decay` controls whether weight decay applies — GPT-2
/// practice (followed here) decays only the matmul weights, not biases,
/// LayerNorm gains, or embeddings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Mat,
    /// Gradient accumulated by the most recent backward pass.
    pub grad: Mat,
    /// Whether weight decay applies to this parameter.
    pub decay: bool,
    m: Mat,
    v: Mat,
}

impl Param {
    /// Wraps an initial value into a parameter.
    #[must_use]
    pub fn new(value: Mat, decay: bool) -> Param {
        let (r, c) = (value.rows(), value.cols());
        Param {
            value,
            grad: Mat::zeros(r, c),
            decay,
            m: Mat::zeros(r, c),
            v: Mat::zeros(r, c),
        }
    }

    /// Number of scalar weights.
    #[must_use]
    pub fn len(&self) -> usize {
        self.value.as_slice().len()
    }

    /// Whether the parameter is empty (never true for real layers).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Read access to the AdamW moment estimates `(m, v)`.
    ///
    /// Used by checkpointing to persist optimizer state alongside weights.
    #[must_use]
    pub fn moments(&self) -> (&Mat, &Mat) {
        (&self.m, &self.v)
    }

    /// Mutable access to the AdamW moment estimates `(m, v)`.
    ///
    /// Used when restoring optimizer state from a checkpoint; both matrices
    /// keep the parameter's shape.
    pub fn moments_mut(&mut self) -> (&mut Mat, &mut Mat) {
        (&mut self.m, &mut self.v)
    }
}

/// The AdamW optimizer (decoupled weight decay), as used by the paper
/// ("employing the AdamW optimizer with an initial learning rate of 5e-5").
///
/// # Examples
///
/// ```
/// use pagpass_nn::{AdamW, Mat, Param};
///
/// let mut p = Param::new(Mat::from_rows(1, 1, vec![1.0]), false);
/// p.grad = Mat::from_rows(1, 1, vec![1.0]);
/// let mut opt = AdamW::new(0.1);
/// opt.begin_step();
/// opt.update(&mut p);
/// assert!(p.value.get(0, 0) < 1.0, "gradient descent moves against the gradient");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamW {
    /// Current learning rate (mutated by schedules).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    t: u64,
}

impl AdamW {
    /// Creates an optimizer with GPT-2-style defaults
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`, weight decay `0.01`).
    #[must_use]
    pub fn new(lr: f32) -> AdamW {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 0,
        }
    }

    /// Advances the shared step counter; call once per optimization step,
    /// before updating the parameters of that step.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Number of completed `begin_step` calls.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Restores the step counter, e.g. when resuming from a checkpoint so
    /// bias correction continues from where the interrupted run left off.
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Applies one AdamW update to `param` using its accumulated gradient,
    /// then leaves the gradient untouched (callers zero it when they start
    /// the next backward pass).
    ///
    /// # Panics
    ///
    /// Panics if called before [`begin_step`](Self::begin_step).
    pub fn update(&mut self, param: &mut Param) {
        assert!(self.t > 0, "call begin_step before update");
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let wd = if param.decay { self.weight_decay } else { 0.0 };
        let g = param.grad.as_slice();
        let m = param.m.as_mut_slice();
        let v = param.v.as_mut_slice();
        let x = param.value.as_mut_slice();
        for i in 0..x.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            x[i] -= self.lr * (mhat / (vhat.sqrt() + self.eps) + wd * x[i]);
        }
    }
}

/// Linear-warmup + cosine-decay learning-rate schedule.
///
/// # Examples
///
/// ```
/// use pagpass_nn::LrSchedule;
///
/// let sched = LrSchedule::warmup_cosine(1e-3, 10, 100);
/// assert!(sched.lr_at(0) < sched.lr_at(9));
/// assert!((sched.lr_at(10) - 1e-3).abs() < 1e-9);
/// assert!(sched.lr_at(99) < 1e-3 * 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    /// Peak learning rate reached after warmup.
    pub peak: f32,
    /// Number of linear-warmup steps.
    pub warmup: u64,
    /// Total steps; cosine decays from `warmup` to here.
    pub total: u64,
    /// Floor as a fraction of `peak`.
    pub floor_frac: f32,
}

impl LrSchedule {
    /// The standard warmup-then-cosine schedule with a 10% floor.
    #[must_use]
    pub fn warmup_cosine(peak: f32, warmup: u64, total: u64) -> LrSchedule {
        LrSchedule {
            peak,
            warmup,
            total: total.max(warmup + 1),
            floor_frac: 0.1,
        }
    }

    /// A constant learning rate (what the paper's brief description implies).
    #[must_use]
    pub fn constant(lr: f32) -> LrSchedule {
        LrSchedule {
            peak: lr,
            warmup: 0,
            total: 1,
            floor_frac: 1.0,
        }
    }

    /// The learning rate at optimization step `t` (0-based).
    #[must_use]
    pub fn lr_at(self, t: u64) -> f32 {
        if self.warmup > 0 && t < self.warmup {
            return self.peak * (t + 1) as f32 / self.warmup as f32;
        }
        if self.floor_frac >= 1.0 {
            return self.peak;
        }
        let progress = (t - self.warmup) as f32 / (self.total - self.warmup) as f32;
        let progress = progress.clamp(0.0, 1.0);
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        let floor = self.peak * self.floor_frac;
        floor + (self.peak - floor) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat;

    #[test]
    fn adamw_minimizes_a_quadratic() {
        // minimize f(x) = (x-3)^2 starting at 0.
        let mut p = Param::new(Mat::from_rows(1, 1, vec![0.0]), false);
        let mut opt = AdamW::new(0.1);
        for _ in 0..500 {
            let x = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (x - 3.0));
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn weight_decay_only_when_enabled() {
        let run = |decay: bool| {
            let mut p = Param::new(Mat::from_rows(1, 1, vec![1.0]), decay);
            let mut opt = AdamW::new(0.01);
            opt.weight_decay = 0.5;
            for _ in 0..100 {
                p.grad.set(0, 0, 0.0); // no gradient; only decay acts
                opt.begin_step();
                opt.update(&mut p);
            }
            p.value.get(0, 0)
        };
        assert_eq!(run(false), 1.0);
        assert!(run(true) < 0.7);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_requires_begin_step() {
        let mut p = Param::new(Mat::zeros(1, 1), false);
        AdamW::new(0.1).update(&mut p);
    }

    #[test]
    fn schedule_shapes() {
        let s = LrSchedule::warmup_cosine(1.0, 5, 50);
        assert!((s.lr_at(0) - 0.2).abs() < 1e-6);
        assert!((s.lr_at(4) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(25) < 1.0);
        assert!(s.lr_at(49) >= 0.1 - 1e-6);
        assert!(s.lr_at(1000) >= 0.1 - 1e-6); // clamps past the end
        let c = LrSchedule::constant(0.5);
        assert_eq!(c.lr_at(0), 0.5);
        assert_eq!(c.lr_at(999), 0.5);
    }

    #[test]
    fn param_basics() {
        let mut p = Param::new(Mat::zeros(2, 3), true);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
        p.grad.set(0, 0, 5.0);
        p.zero_grad();
        assert_eq!(p.grad.get(0, 0), 0.0);
    }
}
