//! Reassociating GEMM micro-kernel for the training path.
//!
//! The kernels in [`crate::mat`] are bit-for-bit replicas of the naive
//! reference loops: every output element accumulates in the exact order the
//! original triple loop used, because the forward sampling path's bits are
//! pinned by the golden-output regression. That contract costs real
//! throughput — it forbids fused multiply-add (a different rounding per
//! step) and register tiling that reorders the reduction.
//!
//! Training does not need that contract. Gradients and the training-time
//! forward activations (`Linear::forward`, never `Linear::apply`) are
//! consumed by finite-difference-validated backprop and an optimizer that
//! tolerates last-bit noise, so this module trades the pinned association
//! order for speed: a 2-row × 32-column register-tiled kernel that uses
//! AVX2 + FMA when the CPU has them and a portable axpy loop otherwise.
//!
//! Determinism contract: for a fixed machine the result is a pure function
//! of the operands — the per-element reduction order is ascending `k`
//! regardless of how rows are chunked across worker threads, so any thread
//! count produces identical bits. Across machines the bits may differ
//! (FMA vs. separate multiply+add), which is why the forward/golden path
//! must never route through here.
//!
//! Zero-skip rule: like the reference loops, a zero `a[i][k]` contributes
//! nothing rather than `0.0 * b[k][j]` — so non-finite values in rows of
//! `b` that are only ever paired with zeros (the masked upper triangle of
//! attention probabilities) stay confined.

use std::ops::Range;

/// Rows `rows` of `a · b` into `out_rows` (row-local slice), where `a` is
/// row-major with `k` columns and `b` is row-major `k × n`. Adds into the
/// existing contents when `accumulate` is true, overwrites otherwise.
pub(crate) fn gemm_rows(
    a: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    rows: Range<usize>,
    out_rows: &mut [f32],
    accumulate: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        // SAFETY: the required target features were just detected at
        // runtime; slice bounds are the same ones the portable path uses.
        unsafe { avx2::gemm_rows(a, k, b, n, rows, out_rows, accumulate) };
        return;
    }
    gemm_rows_portable(a, k, b, n, rows, out_rows, accumulate);
}

/// Portable fallback: per-`k` axpy sweeps with the zero-skip rule. Same
/// ascending-`k` per-element order as the AVX2 path, but rounded with
/// separate multiply and add instead of FMA.
fn gemm_rows_portable(
    a: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    rows: Range<usize>,
    out_rows: &mut [f32],
    accumulate: bool,
) {
    let i0 = rows.start;
    for i in rows {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_rows[(i - i0) * n..][..n];
        if !accumulate {
            out_row.fill(0.0);
        }
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..][..n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    use std::ops::Range;

    /// The register-tiled kernel: two output rows × 32 output columns live
    /// in eight YMM accumulators across the whole `k` reduction, so each
    /// `k` step is one broadcast per row plus four FMAs per row against
    /// four shared loads of `b` — output traffic is one load/store per
    /// tile instead of one per `k`.
    ///
    /// # Safety
    ///
    /// The caller must have verified the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm_rows(
        a: &[f32],
        k: usize,
        b: &[f32],
        n: usize,
        rows: Range<usize>,
        out_rows: &mut [f32],
        accumulate: bool,
    ) {
        debug_assert!(a.len() >= rows.end * k);
        debug_assert!(b.len() >= k * n);
        debug_assert!(out_rows.len() >= (rows.end - rows.start) * n);
        let i0 = rows.start;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out_rows.as_mut_ptr();
        let mut i = rows.start;
        while i < rows.end {
            let two = i + 1 < rows.end;
            // SAFETY (all pointer arithmetic below): `i`/`i+1` stay within
            // `rows`, `j`/`kk` stay within `n`/`k`, and the debug asserts
            // above pin the slice extents those indices address.
            let a0 = ap.add(i * k);
            let a1 = if two { ap.add((i + 1) * k) } else { a0 };
            let o0 = op.add((i - i0) * n);
            let o1 = if two { op.add((i + 1 - i0) * n) } else { o0 };
            let mut j = 0;
            while j + 32 <= n {
                let mut c = [_mm256_setzero_ps(); 4];
                let mut d = [_mm256_setzero_ps(); 4];
                if accumulate {
                    for (q, cq) in c.iter_mut().enumerate() {
                        *cq = _mm256_loadu_ps(o0.add(j + 8 * q));
                    }
                    if two {
                        for (q, dq) in d.iter_mut().enumerate() {
                            *dq = _mm256_loadu_ps(o1.add(j + 8 * q));
                        }
                    }
                }
                for kk in 0..k {
                    let av0 = *a0.add(kk);
                    let av1 = if two { *a1.add(kk) } else { 0.0 };
                    if av0 == 0.0 && av1 == 0.0 {
                        continue;
                    }
                    let br = bp.add(kk * n + j);
                    let b0 = _mm256_loadu_ps(br);
                    let b1 = _mm256_loadu_ps(br.add(8));
                    let b2 = _mm256_loadu_ps(br.add(16));
                    let b3 = _mm256_loadu_ps(br.add(24));
                    if av0 != 0.0 {
                        let v = _mm256_set1_ps(av0);
                        c[0] = _mm256_fmadd_ps(v, b0, c[0]);
                        c[1] = _mm256_fmadd_ps(v, b1, c[1]);
                        c[2] = _mm256_fmadd_ps(v, b2, c[2]);
                        c[3] = _mm256_fmadd_ps(v, b3, c[3]);
                    }
                    if av1 != 0.0 {
                        let v = _mm256_set1_ps(av1);
                        d[0] = _mm256_fmadd_ps(v, b0, d[0]);
                        d[1] = _mm256_fmadd_ps(v, b1, d[1]);
                        d[2] = _mm256_fmadd_ps(v, b2, d[2]);
                        d[3] = _mm256_fmadd_ps(v, b3, d[3]);
                    }
                }
                for (q, cq) in c.iter().enumerate() {
                    _mm256_storeu_ps(o0.add(j + 8 * q), *cq);
                }
                if two {
                    for (q, dq) in d.iter().enumerate() {
                        _mm256_storeu_ps(o1.add(j + 8 * q), *dq);
                    }
                }
                j += 32;
            }
            while j + 8 <= n {
                let mut c0 = if accumulate {
                    _mm256_loadu_ps(o0.add(j))
                } else {
                    _mm256_setzero_ps()
                };
                let mut d0 = if two && accumulate {
                    _mm256_loadu_ps(o1.add(j))
                } else {
                    _mm256_setzero_ps()
                };
                for kk in 0..k {
                    let av0 = *a0.add(kk);
                    let av1 = if two { *a1.add(kk) } else { 0.0 };
                    if av0 == 0.0 && av1 == 0.0 {
                        continue;
                    }
                    let bv = _mm256_loadu_ps(bp.add(kk * n + j));
                    if av0 != 0.0 {
                        c0 = _mm256_fmadd_ps(_mm256_set1_ps(av0), bv, c0);
                    }
                    if av1 != 0.0 {
                        d0 = _mm256_fmadd_ps(_mm256_set1_ps(av1), bv, d0);
                    }
                }
                _mm256_storeu_ps(o0.add(j), c0);
                if two {
                    _mm256_storeu_ps(o1.add(j), d0);
                }
                j += 8;
            }
            while j < n {
                let mut s0 = if accumulate { *o0.add(j) } else { 0.0 };
                let mut s1 = if two && accumulate { *o1.add(j) } else { 0.0 };
                for kk in 0..k {
                    let bv = *bp.add(kk * n + j);
                    let av0 = *a0.add(kk);
                    if av0 != 0.0 {
                        // Inside a `fma`-enabled fn this lowers to a real
                        // vfmadd instead of a libm call.
                        s0 = av0.mul_add(bv, s0);
                    }
                    if two {
                        let av1 = *a1.add(kk);
                        if av1 != 0.0 {
                            s1 = av1.mul_add(bv, s1);
                        }
                    }
                }
                *o0.add(j) = s0;
                if two {
                    *o1.add(j) = s1;
                }
                j += 1;
            }
            i += if two { 2 } else { 1 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &[f32], k: usize, b: &[f32], n: usize, m: usize) -> Vec<f32> {
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk] as f64;
                for j in 0..n {
                    out[i * n + j] += av * b[kk * n + j] as f64;
                }
            }
        }
        out.into_iter().map(|v| v as f32).collect()
    }

    fn pseudo(seed: &mut u64) -> f32 {
        // DET: xorshift with a fixed caller-provided seed — reproducible.
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((*seed >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    }

    #[test]
    fn matches_f64_reference_on_awkward_shapes() {
        let mut seed = 9u64;
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 4),
            (3, 7, 33),
            (5, 16, 40),
            (7, 31, 71),
            (4, 64, 96),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| pseudo(&mut seed)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| pseudo(&mut seed)).collect();
            let mut got = vec![0.0f32; m * n];
            gemm_rows(&a, k, &b, n, 0..m, &mut got, false);
            let want = reference(&a, k, &b, n, m);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn accumulate_adds_instead_of_overwriting() {
        let mut seed = 11u64;
        let (m, k, n) = (3usize, 5usize, 37usize);
        let a: Vec<f32> = (0..m * k).map(|_| pseudo(&mut seed)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| pseudo(&mut seed)).collect();
        let mut once = vec![0.0f32; m * n];
        gemm_rows(&a, k, &b, n, 0..m, &mut once, false);
        let mut twice = once.clone();
        gemm_rows(&a, k, &b, n, 0..m, &mut twice, true);
        for (t, o) in twice.iter().zip(&once) {
            assert!((t - 2.0 * o).abs() < 1e-4, "{t} vs {}", 2.0 * o);
        }
    }

    #[test]
    fn row_chunking_does_not_change_bits() {
        let mut seed = 13u64;
        let (m, k, n) = (9usize, 17usize, 41usize);
        let a: Vec<f32> = (0..m * k).map(|_| pseudo(&mut seed)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| pseudo(&mut seed)).collect();
        let mut whole = vec![0.0f32; m * n];
        gemm_rows(&a, k, &b, n, 0..m, &mut whole, false);
        // Recompute in uneven chunks (1 row, 3 rows, 5 rows): every element
        // must come out bit-identical, which is what makes the pooled
        // dispatch thread-count invariant.
        let mut chunked = vec![0.0f32; m * n];
        for (lo, hi) in [(0usize, 1usize), (1, 4), (4, 9)] {
            gemm_rows(&a, k, &b, n, lo..hi, &mut chunked[lo * n..hi * n], false);
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn zero_rows_confine_infinities() {
        let (m, k, n) = (4usize, 6usize, 35usize);
        let mut a = vec![1.0f32; m * k];
        let mut b = vec![1.0f32; k * n];
        let poisoned = 2;
        for i in 0..m {
            a[i * k + poisoned] = 0.0;
        }
        for j in 0..n {
            b[poisoned * n + j] = f32::INFINITY;
        }
        let mut out = vec![0.0f32; m * n];
        gemm_rows(&a, k, &b, n, 0..m, &mut out, false);
        assert!(out.iter().all(|v| v.is_finite()), "zero-skip rule violated");
        for &v in &out {
            assert_eq!(v, (k - 1) as f32);
        }
    }
}
