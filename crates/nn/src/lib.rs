//! From-scratch CPU neural-network substrate for the PagPassGPT
//! reproduction.
//!
//! The paper trains a GPT-2-style decoder-only transformer. No deep-learning
//! framework is used in this reproduction: this crate implements everything
//! the models need, from the matrix kernels up —
//!
//! * [`Mat`] — a dense row-major `f32` matrix with the small set of BLAS-like
//!   kernels a transformer needs; the GEMMs are cache-blocked and run on a
//!   persistent worker pool ([`pool`]), with the reference loops retained
//!   behind [`KernelMode::Naive`] for paired benchmarking,
//! * layers with **manual forward/backward passes**: [`Linear`],
//!   [`Embedding`], [`LayerNorm`], [`Mlp`] (GELU), and causal multi-head
//!   [`SelfAttention`],
//! * [`Gpt`] — the full decoder-only language model with a fused
//!   softmax-cross-entropy loss, training step, full-sequence inference, and
//!   **KV-cached incremental decoding** ([`KvCache`]) for fast batched
//!   sampling,
//! * [`AdamW`] — the optimizer the paper uses, with linear-warmup/cosine
//!   learning-rate scheduling ([`LrSchedule`]),
//! * [`gradcheck`] — finite-difference gradient verification used by the
//!   test-suite to prove every backward pass correct,
//! * binary weight (de)serialization for experiment caching.
//!
//! Everything is deterministic given a seed — including parallel GEMM,
//! which partitions work over disjoint output row-blocks so results are
//! bit-identical at any thread count — and sized for CPU-scale experiments;
//! see `DESIGN.md` at the workspace root for how the reduced model relates
//! to the paper's 12-layer / 256-dim configuration (available here as
//! [`GptConfig::paper`]).
//!
//! # Examples
//!
//! Train a tiny LM on a toy corpus and watch the loss fall:
//!
//! ```
//! use pagpass_nn::{AdamW, Gpt, GptConfig, Rng};
//!
//! let config = GptConfig { vocab_size: 10, ctx_len: 8, dim: 16, n_layers: 1, n_heads: 2 };
//! let mut model = Gpt::new(config, &mut Rng::seed_from(1));
//! let mut opt = AdamW::new(1e-3);
//! // One batch of two sequences (9 is used as padding/ignore here).
//! let tokens = vec![1, 2, 3, 4, 1, 2, 3, 4];
//! let loss0 = model.train_step(&tokens, 2, 4, Some(9), &mut opt);
//! for _ in 0..20 { model.train_step(&tokens, 2, 4, Some(9), &mut opt); }
//! let loss1 = model.train_step(&tokens, 2, 4, Some(9), &mut opt);
//! assert!(loss1 < loss0, "loss should decrease on a repeated batch");
//! ```

mod adamw;
mod attention;
mod fast;
mod fastmath;
mod gpt;
pub mod gradcheck;
mod layers;
mod mat;
pub mod pool;
pub mod qmat;
mod rng;
mod sampling;
mod serialize;

pub use adamw::{AdamW, LrSchedule, Param};
pub use attention::{KvCache, QSelfAttention, SelfAttention};
pub use fastmath::{fast_exp, fast_tanh, gelu_fast};
pub use gpt::{DecodeState, Gpt, GptConfig, QuantizedGpt};
pub use layers::{gelu, gelu_grad, Embedding, LayerNorm, Linear, Mlp, QLinear, QMlp};
pub use mat::{gemm_calls, kernel_mode, set_kernel_mode, KernelMode, Mat};
pub use pool::ThreadPool;
pub use qmat::{set_force_portable, QMat, QBLOCK};
pub use rng::Rng;
pub use sampling::{
    argmax, sample_categorical, sample_masked, sample_top_k, sample_top_p, softmax_in_place,
    softmax_in_place_fast,
};
pub use serialize::{atomic_write, crc32, LoadError};
