use serde::{Deserialize, Serialize};

use crate::attention::QSelfAttention;
use crate::layers::{QLinear, QMlp};
use crate::{AdamW, Embedding, KvCache, LayerNorm, Linear, Mat, Mlp, Param, Rng, SelfAttention};

/// Hyper-parameters of the decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GptConfig {
    /// Vocabulary size (135 for the PagPassGPT tokenizer).
    pub vocab_size: usize,
    /// Context window; the paper uses 32 input tokens.
    pub ctx_len: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Number of transformer decoder layers.
    pub n_layers: usize,
    /// Attention heads per layer.
    pub n_heads: usize,
}

impl GptConfig {
    /// The paper's configuration (§IV-B1): 32-token window, 256-dim
    /// embeddings, 12 layers, 8 heads. Too slow to *train* on one CPU core,
    /// but constructible and fully supported.
    #[must_use]
    pub fn paper(vocab_size: usize) -> GptConfig {
        GptConfig {
            vocab_size,
            ctx_len: 32,
            dim: 256,
            n_layers: 12,
            n_heads: 8,
        }
    }

    /// The default experiment configuration for this CPU reproduction:
    /// same 32-token window, scaled-down width/depth (see DESIGN.md §2).
    #[must_use]
    pub fn small(vocab_size: usize) -> GptConfig {
        GptConfig {
            vocab_size,
            ctx_len: 32,
            dim: 48,
            n_layers: 3,
            n_heads: 4,
        }
    }

    /// A tiny configuration for unit tests.
    #[must_use]
    pub fn tiny(vocab_size: usize) -> GptConfig {
        GptConfig {
            vocab_size,
            ctx_len: 16,
            dim: 16,
            n_layers: 2,
            n_heads: 2,
        }
    }
}

/// One pre-norm transformer decoder block:
/// `x += attn(ln1(x)); x += mlp(ln2(x))`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Block {
    ln1: LayerNorm,
    attn: SelfAttention,
    ln2: LayerNorm,
    mlp: Mlp,
}

impl Block {
    fn new(dim: usize, n_heads: usize, rng: &mut Rng) -> Block {
        Block {
            ln1: LayerNorm::new(dim),
            attn: SelfAttention::new(dim, n_heads, rng),
            ln2: LayerNorm::new(dim),
            mlp: Mlp::new(dim, rng),
        }
    }

    fn forward(&mut self, x: &Mat, b: usize, t: usize) -> Mat {
        let mut h = x.clone();
        let a = self.attn.forward(&self.ln1.forward(x), b, t);
        h.add_assign(&a);
        let m = self.mlp.forward(&self.ln2.forward(&h));
        let mut out = h;
        out.add_assign(&m);
        out
    }

    fn backward(&mut self, dy: &Mat) -> Mat {
        // out = h + mlp(ln2(h)); dh = dy + ln2.backward(mlp.backward(dy))
        let dm = self.mlp.backward(dy);
        let mut dh = self.ln2.backward(&dm);
        dh.add_assign(dy);
        // h = x + attn(ln1(x)); dx = dh + ln1.backward(attn.backward(dh))
        let da = self.attn.backward(&dh);
        let mut dx = self.ln1.backward(&da);
        dx.add_assign(&dh);
        dx
    }

    fn step_with(&self, quant: Option<&QBlock>, x: &Mat, cache: &mut KvCache) -> Mat {
        // The quantized arm normalizes through the lane-parallel LayerNorm
        // — reassociated sums its goldens pin — while the f32 arm keeps the
        // serial fold's exact bits.
        let ln = |layer: &LayerNorm, v: &Mat| match quant {
            Some(_) => layer.apply_fast(v),
            None => layer.apply(v),
        };
        let mut h = x.clone();
        let a = self
            .attn
            .step_with(quant.map(|q| &q.attn), &ln(&self.ln1, x), cache);
        h.add_assign(&a);
        let m = self
            .mlp
            .apply_with(quant.map(|q| &q.mlp), &ln(&self.ln2, &h));
        let mut out = h;
        out.add_assign(&m);
        out
    }

    fn quantize(&self) -> QBlock {
        QBlock {
            attn: self.attn.quantize(),
            mlp: self.mlp.quantize(),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.mlp.visit_params(f);
    }
}

/// One decoder block's packed projections ([`QBlock::attn`] + mlp). The
/// LayerNorm weights and residual adds stay on the f32 [`Block`] that
/// built it; on the quantized arm the norms run through
/// [`LayerNorm::apply_fast`] (lane-parallel reductions) and the MLP/softmax
/// through the `fastmath` approximations — all deterministic and pinned by
/// the quantized golden files.
#[derive(Debug, Clone)]
struct QBlock {
    attn: QSelfAttention,
    mlp: QMlp,
}

/// The pack-once int8 decode weights of a [`Gpt`]: every Linear that a
/// decode step multiplies through — each block's qkv/proj and MLP
/// projections plus the LM head — packed into [`crate::QMat`] blocks.
/// Build with [`Gpt::quantize`] and pass to [`Gpt::decode_step_with`];
/// embeddings, LayerNorms, attention math, and the KV cache stay f32.
///
/// Holds no gradient state: training always runs on the f32 weights, and a
/// `QuantizedGpt` is a snapshot of the weights it was packed from.
#[derive(Debug, Clone)]
pub struct QuantizedGpt {
    blocks: Vec<QBlock>,
    lm_head: QLinear,
}

/// Incremental-decoding state: one [`KvCache`] per layer plus the current
/// position. Create with [`Gpt::begin_decode`], feed tokens through
/// [`Gpt::decode_step`].
#[derive(Debug, Clone)]
pub struct DecodeState {
    caches: Vec<KvCache>,
    pos: usize,
}

impl DecodeState {
    /// Number of tokens consumed so far.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Number of parallel sequences.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.caches.first().map_or(0, KvCache::batch)
    }

    /// Resets the state for reuse with the same batch size.
    pub fn clear(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
        self.pos = 0;
    }

    /// Rewinds the state to its first `len` positions, keeping the cached
    /// K/V for the retained prefix. Subsequent [`Gpt::decode_step`] calls
    /// continue from position `len` exactly as if only those tokens had
    /// ever been fed (see [`KvCache::truncate_to`] for why this is
    /// bit-exact).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current position.
    pub fn truncate_to(&mut self, len: usize) {
        assert!(
            len <= self.pos,
            "cannot truncate a decode state forward ({} -> {len})",
            self.pos
        );
        for c in &mut self.caches {
            c.truncate_to(len);
        }
        self.pos = len;
    }

    /// Returns an independent copy of this state. The fork and the
    /// original can diverge freely; neither observes the other's
    /// subsequent steps.
    #[must_use]
    pub fn fork(&self) -> DecodeState {
        self.clone()
    }

    /// Replicates a single-sequence state across `batch` parallel rows,
    /// bit-identically to feeding the same prefix to every row of a
    /// fresh batch-`batch` decode (see [`KvCache::broadcast`]).
    ///
    /// # Panics
    ///
    /// Panics if this state holds more than one sequence.
    #[must_use]
    pub fn broadcast(&self, batch: usize) -> DecodeState {
        DecodeState {
            caches: self.caches.iter().map(|c| c.broadcast(batch)).collect(),
            pos: self.pos,
        }
    }
}

/// The GPT-2-style decoder-only language model (paper §III-B): token +
/// position embeddings, `n_layers` pre-norm decoder blocks, a final
/// LayerNorm, and a linear language-modeling head producing a distribution
/// over the vocabulary.
///
/// # Examples
///
/// See the [crate-level example](crate) for a training loop, and
/// [`Gpt::begin_decode`] for incremental sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gpt {
    config: GptConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<Block>,
    ln_f: LayerNorm,
    lm_head: Linear,
}

impl Gpt {
    /// Initializes a model with GPT-2-style `N(0, 0.02²)` weights.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `n_heads`.
    #[must_use]
    pub fn new(config: GptConfig, rng: &mut Rng) -> Gpt {
        Gpt {
            config,
            tok_emb: Embedding::new(config.vocab_size, config.dim, rng),
            pos_emb: Embedding::new(config.ctx_len, config.dim, rng),
            blocks: (0..config.n_layers)
                .map(|_| Block::new(config.dim, config.n_heads, rng))
                .collect(),
            ln_f: LayerNorm::new(config.dim),
            lm_head: Linear::new(config.dim, config.vocab_size, rng),
        }
    }

    /// The model's configuration.
    #[must_use]
    pub fn config(&self) -> GptConfig {
        self.config
    }

    /// Total number of scalar parameters.
    #[must_use]
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Visits every parameter in a stable order (optimizer and
    /// serialization hook).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok_emb.visit_params(f);
        self.pos_emb.visit_params(f);
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.lm_head.visit_params(f);
    }

    /// Training forward pass producing logits for `b` sequences of `t`
    /// tokens (`tokens.len() == b*t`); caches activations for backprop.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() != b*t`, `t > ctx_len`, or an id is out of
    /// vocabulary range.
    fn forward_train(&mut self, tokens: &[u32], b: usize, t: usize) -> Mat {
        assert_eq!(tokens.len(), b * t, "tokens must hold b*t ids");
        assert!(
            t <= self.config.ctx_len,
            "sequence exceeds the context window"
        );
        let tok = self.tok_emb.forward(tokens);
        let pos_ids: Vec<u32> = (0..b).flat_map(|_| 0..t as u32).collect();
        let pos = self.pos_emb.forward(&pos_ids);
        let mut x = tok;
        x.add_assign(&pos);
        for block in &mut self.blocks {
            x = block.forward(&x, b, t);
        }
        let x = self.ln_f.forward(&x);
        self.lm_head.forward(&x)
    }

    /// Computes the mean next-token cross-entropy of a batch and accumulates
    /// gradients for it (without an optimizer update). Position `i` predicts
    /// `tokens[i+1]`; targets equal to `ignore` (e.g. `<PAD>`) are skipped.
    ///
    /// Returns the loss. Gradients are zeroed at entry, so each call holds
    /// exactly this batch's gradient.
    ///
    /// # Panics
    ///
    /// Panics on shape violations (see [`Gpt::train_step`]).
    pub fn compute_grads(
        &mut self,
        tokens: &[u32],
        b: usize,
        t: usize,
        ignore: Option<u32>,
    ) -> f32 {
        self.visit_params(&mut Param::zero_grad);
        let logits = self.forward_train(tokens, b, t);
        let (loss, dlogits) = cross_entropy_next_token(&logits, tokens, b, t, ignore);
        let dx = self.lm_head.backward(&dlogits);
        let dx = self.ln_f.backward(&dx);
        let mut d = dx;
        for block in self.blocks.iter_mut().rev() {
            d = block.backward(&d);
        }
        self.pos_emb.backward(&d);
        self.tok_emb.backward(&d);
        loss
    }

    /// One full optimization step: gradients + AdamW update with the
    /// optimizer's current learning rate. Returns the batch loss.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() != b*t` or `t > ctx_len`.
    pub fn train_step(
        &mut self,
        tokens: &[u32],
        b: usize,
        t: usize,
        ignore: Option<u32>,
        opt: &mut AdamW,
    ) -> f32 {
        let loss = self.compute_grads(tokens, b, t, ignore);
        opt.begin_step();
        self.visit_params(&mut |p| opt.update(p));
        loss
    }

    /// Global L2 norm of the currently accumulated gradients, without
    /// modifying them. Non-finite results signal a diverged backward pass.
    #[must_use]
    pub fn grad_norm(&mut self) -> f32 {
        let mut sq = 0.0f64;
        self.visit_params(&mut |p| {
            sq += p
                .grad
                .as_slice()
                .iter()
                .map(|&g| f64::from(g) * f64::from(g))
                .sum::<f64>();
        });
        (sq as f32).sqrt()
    }

    /// Scales all gradients so their global L2 norm is at most `max_norm`;
    /// returns the pre-clip norm. Standard stabilization for transformer
    /// training.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let mut sq = 0.0f64;
        self.visit_params(&mut |p| {
            sq += p
                .grad
                .as_slice()
                .iter()
                .map(|&g| f64::from(g) * f64::from(g))
                .sum::<f64>();
        });
        let norm = (sq as f32).sqrt();
        if norm > max_norm {
            let scale = max_norm / norm;
            self.visit_params(&mut |p| p.grad.scale(scale));
        }
        norm
    }

    /// Evaluation loss (no gradients accumulated; parameters untouched).
    ///
    /// # Panics
    ///
    /// Panics on the same shape violations as [`Gpt::train_step`].
    pub fn eval_loss(&mut self, tokens: &[u32], b: usize, t: usize, ignore: Option<u32>) -> f32 {
        let logits = self.forward_train(tokens, b, t);
        cross_entropy_next_token(&logits, tokens, b, t, ignore).0
    }

    /// Starts incremental decoding for `batch` parallel sequences.
    #[must_use]
    pub fn begin_decode(&self, batch: usize) -> DecodeState {
        DecodeState {
            caches: (0..self.config.n_layers)
                .map(|_| KvCache::new(batch, self.config.ctx_len, self.config.dim))
                .collect(),
            pos: 0,
        }
    }

    /// Feeds one token per sequence and returns next-token logits
    /// (`batch × vocab`). Tokens are consumed left to right; the state
    /// tracks the position.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len()` differs from the decode batch, if the
    /// context window is exhausted, or if an id is out of range.
    #[must_use]
    pub fn decode_step(&self, tokens: &[u32], state: &mut DecodeState) -> Mat {
        self.decode_step_with(None, tokens, state)
    }

    /// [`decode_step`](Self::decode_step) with every Linear optionally
    /// routed through packed int8 weights. `quant` must come from
    /// [`Gpt::quantize`] on this model; passing `None` is exactly
    /// `decode_step`. The quantized path is deterministic — bitwise
    /// identical at any thread count and under SIMD or portable dispatch —
    /// but *not* bit-compatible with the f32 path; it has its own golden
    /// files and accuracy budget (see `crates/eval`).
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len()` differs from the decode batch, if the
    /// context window is exhausted, if an id is out of range, or if `quant`
    /// was packed from a model with a different layer count.
    #[must_use]
    pub fn decode_step_with(
        &self,
        quant: Option<&QuantizedGpt>,
        tokens: &[u32],
        state: &mut DecodeState,
    ) -> Mat {
        let b = state.batch();
        assert_eq!(tokens.len(), b, "one token per sequence");
        assert!(state.pos < self.config.ctx_len, "context window exhausted");
        if let Some(q) = quant {
            assert_eq!(
                q.blocks.len(),
                self.blocks.len(),
                "quantized weights were packed from a different model"
            );
        }
        let tok = self.tok_emb.apply(tokens);
        let pos = self.pos_emb.apply(&vec![state.pos as u32; b]);
        let mut x = tok;
        x.add_assign(&pos);
        for (i, (block, cache)) in self.blocks.iter().zip(&mut state.caches).enumerate() {
            x = block.step_with(quant.map(|q| &q.blocks[i]), &x, cache);
        }
        for cache in &mut state.caches {
            cache.advance();
        }
        state.pos += 1;
        let x = match quant {
            Some(_) => self.ln_f.apply_fast(&x),
            None => self.ln_f.apply(&x),
        };
        match quant {
            Some(q) => q.lm_head.apply(&x),
            None => self.lm_head.apply(&x),
        }
    }

    /// Packs every decode-path Linear into int8 blocks — the pack-once
    /// prepare step for `--kernel quantized` sessions. O(params) work,
    /// done once per session; the pack holds the int8 columns plus an
    /// AVX2-interleaved copy, so it costs about half the f32 weight
    /// memory (a quarter without the tiled copy).
    #[must_use]
    pub fn quantize(&self) -> QuantizedGpt {
        QuantizedGpt {
            blocks: self.blocks.iter().map(Block::quantize).collect(),
            lm_head: self.lm_head.quantize(),
        }
    }

    /// Next-token logits after consuming `prefix` (single sequence).
    /// Convenience for D&C-GEN task expansion.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is empty or longer than the context window.
    #[must_use]
    pub fn next_token_logits(&self, prefix: &[u32]) -> Vec<f32> {
        assert!(!prefix.is_empty(), "prefix must be non-empty");
        let mut state = self.begin_decode(1);
        let mut logits = Mat::zeros(1, self.config.vocab_size);
        for &tok in prefix {
            logits = self.decode_step(&[tok], &mut state);
        }
        logits.row(0).to_vec()
    }
}

/// Fused softmax + cross-entropy over next-token targets.
///
/// Returns `(mean loss, dlogits)` where the gradient is already divided by
/// the number of counted targets. Position `(s, i)` (sequence `s`, `i <
/// t-1`) is scored against target `tokens[s*t + i + 1]`; the last position
/// of each sequence has no target. Targets equal to `ignore` are skipped.
fn cross_entropy_next_token(
    logits: &Mat,
    tokens: &[u32],
    b: usize,
    t: usize,
    ignore: Option<u32>,
) -> (f32, Mat) {
    let v = logits.cols();
    let mut dlogits = Mat::zeros(logits.rows(), v);
    let mut loss = 0.0f64;
    let mut count = 0usize;
    for s in 0..b {
        for i in 0..t - 1 {
            let target = tokens[s * t + i + 1];
            if Some(target) == ignore {
                continue;
            }
            count += 1;
        }
    }
    if count == 0 {
        return (0.0, dlogits);
    }
    let inv = 1.0 / count as f32;
    let mut probs = vec![0.0f32; v];
    for s in 0..b {
        for i in 0..t - 1 {
            let target = tokens[s * t + i + 1];
            if Some(target) == ignore {
                continue;
            }
            let r = s * t + i;
            probs.copy_from_slice(logits.row(r));
            crate::softmax_in_place(&mut probs);
            let p_target = probs[target as usize].max(1e-12);
            loss -= f64::from(p_target.ln());
            let drow = dlogits.row_mut(r);
            for (dj, &pj) in drow.iter_mut().zip(&probs) {
                *dj = pj * inv;
            }
            drow[target as usize] -= inv;
        }
    }
    ((loss / f64::from(count as u32)) as f32, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Gpt {
        Gpt::new(GptConfig::tiny(12), &mut Rng::seed_from(7))
    }

    #[test]
    fn initial_loss_is_near_uniform_entropy() {
        let mut model = tiny();
        let tokens: Vec<u32> = (0..32).map(|i| (i % 12) as u32).collect();
        let loss = model.eval_loss(&tokens, 2, 16, None);
        let uniform = (12f32).ln();
        assert!(
            (loss - uniform).abs() < 0.3,
            "loss {loss} vs ln(12)={uniform}"
        );
    }

    #[test]
    fn training_memorizes_a_tiny_sequence() {
        let mut model = tiny();
        let mut opt = AdamW::new(3e-3);
        let tokens: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let mut last = f32::INFINITY;
        for _ in 0..120 {
            last = model.train_step(&tokens, 1, 8, None, &mut opt);
        }
        assert!(
            last < 0.2,
            "model should memorize one sequence, loss {last}"
        );
    }

    #[test]
    fn ignore_index_skips_padding() {
        let mut model = tiny();
        // All targets are PAD=11 → zero loss and zero gradient.
        let tokens: Vec<u32> = vec![3, 11, 11, 11];
        let loss = model.compute_grads(&tokens, 1, 4, Some(11));
        assert_eq!(loss, 0.0);
        let mut grad_norm = 0.0f32;
        model.visit_params(&mut |p| {
            grad_norm += p.grad.as_slice().iter().map(|g| g * g).sum::<f32>();
        });
        assert_eq!(grad_norm, 0.0);
    }

    #[test]
    fn clip_grad_norm_bounds_and_preserves_direction() {
        let mut model = tiny();
        let tokens: Vec<u32> = vec![1, 2, 3, 4, 5, 6];
        let _ = model.compute_grads(&tokens, 1, 6, None);
        let norm_before = model.clip_grad_norm(1e-3);
        assert!(norm_before > 1e-3, "fresh models have sizable gradients");
        // After clipping, the norm is at the bound.
        let mut sq = 0.0f64;
        model.visit_params(&mut |p| {
            sq += p
                .grad
                .as_slice()
                .iter()
                .map(|&g| f64::from(g) * f64::from(g))
                .sum::<f64>();
        });
        assert!(((sq as f32).sqrt() - 1e-3).abs() < 1e-5);
        // Clipping with a huge bound is a no-op.
        let norm = model.clip_grad_norm(1e6);
        assert!((norm - 1e-3).abs() < 1e-5);
    }

    #[test]
    fn decode_matches_training_forward() {
        let mut model = tiny();
        let tokens: Vec<u32> = vec![1, 2, 3, 4, 5];
        let logits_full = model.forward_train(&tokens, 1, 5);
        let mut state = model.begin_decode(1);
        for (i, &tok) in tokens.iter().enumerate() {
            let step_logits = model.decode_step(&[tok], &mut state);
            for (a, b) in step_logits.row(0).iter().zip(logits_full.row(i)) {
                assert!((a - b).abs() < 1e-3, "position {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn next_token_logits_agrees_with_decode() {
        let model = tiny();
        let prefix = vec![4u32, 2, 9];
        let from_helper = model.next_token_logits(&prefix);
        let mut state = model.begin_decode(1);
        let mut last = Mat::zeros(1, 12);
        for &tok in &prefix {
            last = model.decode_step(&[tok], &mut state);
        }
        assert_eq!(from_helper, last.row(0).to_vec());
    }

    #[test]
    fn decode_state_lifecycle() {
        let model = tiny();
        let mut state = model.begin_decode(3);
        assert_eq!(state.batch(), 3);
        let _ = model.decode_step(&[1, 2, 3], &mut state);
        assert_eq!(state.pos(), 1);
        state.clear();
        assert_eq!(state.pos(), 0);
    }

    #[test]
    fn truncate_then_refeed_is_bit_exact() {
        let model = tiny();
        // Decode one sequence, rewind to a shared prefix, and branch.
        let mut state = model.begin_decode(1);
        for &tok in &[4u32, 2, 9, 7, 1] {
            let _ = model.decode_step(&[tok], &mut state);
        }
        state.truncate_to(2);
        assert_eq!(state.pos(), 2);
        let mut last = Mat::zeros(1, 12);
        for &tok in &[5u32, 3] {
            last = model.decode_step(&[tok], &mut state);
        }
        // Fresh decode of the branched sequence must match exactly.
        let fresh = model.next_token_logits(&[4, 2, 5, 3]);
        assert_eq!(last.row(0), &fresh[..], "truncate+refeed must be exact");
    }

    #[test]
    #[should_panic(expected = "cannot truncate a decode state forward")]
    fn truncate_forward_panics() {
        let model = tiny();
        let mut state = model.begin_decode(1);
        let _ = model.decode_step(&[1], &mut state);
        state.truncate_to(2);
    }

    #[test]
    fn fork_diverges_independently() {
        let model = tiny();
        let mut a = model.begin_decode(1);
        for &tok in &[4u32, 2] {
            let _ = model.decode_step(&[tok], &mut a);
        }
        let mut b = a.fork();
        let la = model.decode_step(&[9], &mut a);
        let lb = model.decode_step(&[7], &mut b);
        assert_eq!(a.pos(), 3);
        assert_eq!(b.pos(), 3);
        assert_eq!(la.row(0), &model.next_token_logits(&[4, 2, 9])[..]);
        assert_eq!(lb.row(0), &model.next_token_logits(&[4, 2, 7])[..]);
    }

    #[test]
    fn broadcast_matches_per_row_priming() {
        let model = tiny();
        let prefix = [4u32, 2, 9];
        let mut one = model.begin_decode(1);
        for &tok in &prefix {
            let _ = model.decode_step(&[tok], &mut one);
        }
        let mut wide = one.broadcast(3);
        assert_eq!(wide.batch(), 3);
        assert_eq!(wide.pos(), prefix.len());
        // A reference state primed the slow way: every row fed the prefix.
        let mut refstate = model.begin_decode(3);
        for &tok in &prefix {
            let _ = model.decode_step(&[tok, tok, tok], &mut refstate);
        }
        // Step both with distinct per-row tokens; logits must agree bitwise.
        let a = model.decode_step(&[1, 5, 8], &mut wide);
        let b = model.decode_step(&[1, 5, 8], &mut refstate);
        assert_eq!(a.as_slice(), b.as_slice(), "broadcast must be exact");
    }

    #[test]
    fn quantized_decode_tracks_f32_and_is_deterministic() {
        let model = tiny();
        let q = model.quantize();
        let prefix = [4u32, 2, 9, 7];
        let mut fs = model.begin_decode(1);
        let mut qs = model.begin_decode(1);
        let mut qs2 = model.begin_decode(1);
        for &tok in &prefix {
            let f32_logits = model.decode_step(&[tok], &mut fs);
            let q_logits = model.decode_step_with(Some(&q), &[tok], &mut qs);
            let q_again = model.decode_step_with(Some(&q), &[tok], &mut qs2);
            // Determinism within the mode: same packed weights, same bits.
            assert_eq!(q_logits, q_again);
            // Accuracy: quantized logits track f32 within a loose bound —
            // the tight budget is asserted on real corpora in crates/eval.
            let norm = f32_logits
                .as_slice()
                .iter()
                .fold(0.0f32, |m, v| m.max(v.abs()));
            for (a, e) in q_logits.as_slice().iter().zip(f32_logits.as_slice()) {
                assert!((a - e).abs() <= norm * 0.25 + 5e-2, "{a} vs {e}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "different model")]
    fn quantized_weights_from_wrong_model_panic() {
        let model = tiny();
        let other = Gpt::new(
            GptConfig {
                n_layers: 1,
                ..GptConfig::tiny(12)
            },
            &mut Rng::seed_from(3),
        );
        let q = other.quantize();
        let mut state = model.begin_decode(1);
        let _ = model.decode_step_with(Some(&q), &[1], &mut state);
    }

    #[test]
    fn param_count_formula() {
        let mut model = tiny();
        let c = model.config();
        // embeddings + per-block (ln1 + attn + ln2 + mlp) + ln_f + head
        let expect = c.vocab_size * c.dim
            + c.ctx_len * c.dim
            + c.n_layers
                * (2 * c.dim                                  // ln1
                    + (c.dim * 3 * c.dim + 3 * c.dim)         // qkv
                    + (c.dim * c.dim + c.dim)                 // proj
                    + 2 * c.dim                               // ln2
                    + (c.dim * 4 * c.dim + 4 * c.dim)         // fc1
                    + (4 * c.dim * c.dim + c.dim))            // fc2
            + 2 * c.dim                                       // ln_f
            + (c.dim * c.vocab_size + c.vocab_size); // head
        assert_eq!(model.num_params(), expect);
    }

    #[test]
    fn configs() {
        let paper = GptConfig::paper(135);
        assert_eq!(
            (paper.dim, paper.n_layers, paper.n_heads, paper.ctx_len),
            (256, 12, 8, 32)
        );
        let small = GptConfig::small(135);
        assert_eq!(small.ctx_len, 32);
        assert_eq!(small.dim % small.n_heads, 0);
    }

    #[test]
    #[should_panic(expected = "context window")]
    fn decode_past_context_panics() {
        let model = tiny();
        let mut state = model.begin_decode(1);
        for _ in 0..17 {
            let _ = model.decode_step(&[0], &mut state);
        }
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let mut rng = Rng::seed_from(9);
        let logits = Mat::randn(4, 6, 1.0, &mut rng);
        let tokens = vec![0u32, 1, 2, 3];
        let (_, d) = cross_entropy_next_token(&logits, &tokens, 1, 4, None);
        // Rows with targets: softmax grad sums to zero.
        for r in 0..3 {
            let s: f32 = d.row(r).iter().sum();
            assert!(s.abs() < 1e-5);
        }
        // Last position has no target.
        assert!(d.row(3).iter().all(|&x| x == 0.0));
    }
}
