//! Persistent worker pool for the GEMM kernels in [`crate::Mat`].
//!
//! The transformer's hot path bottoms out in three matrix kernels, and the
//! repo's fault-tolerant generation pool already parks its workers on a
//! condvar rather than respawning threads per task. This module applies the
//! same discipline to compute: a fixed set of workers is spawned once,
//! parked on a condvar while idle, and woken to claim chunks of a parallel
//! loop. Spawning threads per matmul would cost more than the matmuls.
//!
//! # Determinism
//!
//! The pool never changes *what* is computed, only *who* computes it. A job
//! is a set of `chunks` independent chunk indices; the kernels map each
//! chunk to a disjoint block of output rows and compute every row exactly
//! as the sequential code would (same per-element floating-point operation
//! order). Workers claim chunks from a shared counter, so which thread runs
//! a chunk — and in what order chunks finish — varies between runs, but the
//! bits written for each row do not. Results are therefore identical at any
//! thread count, which the golden-output and equivalence tests assert.
//!
//! # Concurrency model
//!
//! * One job runs at a time per pool (`submit` guard). A caller that finds
//!   the pool busy — e.g. nested parallelism, or two D&C-GEN workers hitting
//!   the global pool at once — executes its loop inline instead of queueing,
//!   so the pool can never deadlock on itself.
//! * The submitting thread participates in its own job and then blocks on a
//!   latch until every chunk has been executed. The borrow behind the job's
//!   task pointer is pinned by that wait: workers can only dereference the
//!   pointer between submission and the latch release (the one `unsafe`
//!   block below).
//! * Workers park on a [`Condvar`] keyed by a job epoch, so missed wakeups
//!   and spurious wakeups are both benign: a worker that wakes late finds
//!   the chunk counter exhausted and goes back to sleep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::{self, JoinHandle};

/// Environment variable consulted for the global pool size when the CLI's
/// `--threads` flag has not configured it first.
pub const THREADS_ENV: &str = "PAGPASS_THREADS";

/// Locks `m`, taking the data even if a panicking thread poisoned it: the
/// pool's shared state (an epoch, a shutdown flag, a chunk count) is valid
/// under any interleaving of its writers.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lifetime-erased pointer to a job's chunk body.
///
/// Sending `&dyn Fn` across threads with a borrowed lifetime is exactly what
/// `std::thread::scope` does; here the scope is enforced by `Latch::wait`
/// instead of a join, so the pointer must be erased. See the `SAFETY`
/// comment at the dereference site.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer is only dereferenced while the submitting caller blocks on
// the job's latch, which keeps the borrow alive.
unsafe impl Send for TaskPtr {}
// SAFETY: as above — `&TaskPtr` only ever exposes a `Sync` pointee.
unsafe impl Sync for TaskPtr {}

/// Completion latch: counts executed chunks up to the job's total.
struct Latch {
    finished: Mutex<usize>,
    all_done: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            finished: Mutex::new(0),
            all_done: Condvar::new(),
        }
    }

    /// Records `n` executed chunks, waking the submitter when `total` is
    /// reached. The mutex publishes the chunk bodies' writes to the waiter.
    fn add(&self, n: usize, total: usize) {
        let mut done = lock(&self.finished);
        *done += n;
        if *done >= total {
            self.all_done.notify_all();
        }
    }

    /// Blocks until `total` chunks have been recorded.
    fn wait(&self, total: usize) {
        let mut done = lock(&self.finished);
        while *done < total {
            done = self
                .all_done
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One parallel loop: `chunks` indices executed by whoever claims them.
#[derive(Clone)]
struct Job {
    task: TaskPtr,
    chunks: usize,
    /// Next unclaimed chunk index; may overshoot `chunks`.
    claimed: Arc<AtomicUsize>,
    latch: Arc<Latch>,
}

impl Job {
    /// Claims and executes chunks until the counter is exhausted, then
    /// reports the executed count to the latch.
    fn execute(&self) {
        let mut ran = 0;
        loop {
            // ORD: the counter only hands out disjoint indices; the latch's
            // mutex provides the happens-before edge for the chunk writes.
            let c = self.claimed.fetch_add(1, Ordering::Relaxed);
            if c >= self.chunks {
                break;
            }
            // SAFETY: `ThreadPool::run` blocks on `latch.wait` until every
            // chunk has executed, so the closure this pointer was erased
            // from is still borrowed for the duration of this call.
            let task = unsafe { &*self.task.0 };
            task(c);
            ran += 1;
        }
        if ran > 0 {
            self.latch.add(ran, self.chunks);
        }
    }
}

/// State shared between the submitter and the parked workers.
struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
}

struct State {
    /// Bumped once per submitted job so workers can tell a new job from the
    /// one they already ran.
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(job) = st.job.clone() {
                        break job;
                    }
                    // The job was already retired; wait for the next epoch.
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job.execute();
    }
}

/// A persistent, condvar-parked worker pool executing chunked parallel
/// loops with deterministic results (see the module docs).
///
/// `ThreadPool::new(1)` spawns no workers and runs everything inline, so a
/// single-threaded configuration has zero synchronization overhead.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Serializes job submission; `try_lock` failure means "pool busy, run
    /// inline" rather than queueing (prevents self-deadlock on nesting).
    submit: Mutex<()>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool that executes jobs on `threads` threads total — the
    /// submitting caller plus `threads - 1` parked workers. `threads` is
    /// clamped to at least 1.
    #[must_use]
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pagpass-gemm-{w}"))
                    .spawn(move || worker_loop(&shared))
                    // LINT-ALLOW: no-unwrap-in-lib spawn fails only on
                    // resource exhaustion at process start; nothing to do.
                    .expect("spawn GEMM worker")
            })
            .collect();
        ThreadPool {
            shared,
            submit: Mutex::new(()),
            threads,
            workers,
        }
    }

    /// Total threads this pool applies to a job (workers + caller).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `task(0)`, `task(1)`, …, `task(chunks - 1)` across the pool,
    /// returning once all have run. Chunks must be independent; they are
    /// claimed in arbitrary thread order.
    ///
    /// Runs inline on the caller when the pool has one thread, the job has
    /// one chunk, or another job is already in flight (nested parallelism).
    pub fn run(&self, chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if chunks <= 1 || self.workers.is_empty() {
            for c in 0..chunks {
                task(c);
            }
            return;
        }
        // A poisoned or held submit lock both mean "don't park on the pool".
        // LINT-ALLOW: guard-blocking the submit guard is held across the
        // latch wait by design: it serializes whole jobs, and the workers
        // that must run to satisfy the wait never touch `submit`.
        let Ok(_submit) = self.submit.try_lock() else {
            for c in 0..chunks {
                task(c);
            }
            return;
        };
        // SAFETY: pure lifetime erasure on a fat pointer — the `'static`
        // in `TaskPtr`'s pointee is never relied on; dereferences are
        // confined to this call by the latch wait below.
        let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let job = Job {
            task: TaskPtr(task),
            chunks,
            claimed: Arc::new(AtomicUsize::new(0)),
            latch: Arc::new(Latch::new()),
        };
        {
            let mut st = lock(&self.shared.state);
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(job.clone());
            self.shared.work_ready.notify_all();
        }
        job.execute();
        job.latch.wait(job.chunks);
        // Retire the job so the erased pointer cannot linger in shared
        // state past the borrow it was created from.
        lock(&self.shared.state).job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Sizes the process-wide pool used by the [`crate::Mat`] kernels.
///
/// Call this once, early (the CLI does so while parsing `--threads`).
/// Returns the pool's actual thread count: `threads` on the first call, or
/// the previously established size if the pool was already built — callers
/// can compare and warn on a lost race, but cannot resize a live pool.
pub fn configure(threads: usize) -> usize {
    let threads = threads.max(1);
    GLOBAL.get_or_init(|| ThreadPool::new(threads)).threads()
}

/// The process-wide pool, building it on first use from `PAGPASS_THREADS`
/// or, failing that, the machine's available parallelism.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// Thread count the global pool would use if built right now.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map_or(1, usize::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = ThreadPool::new(4);
        for chunks in [0, 1, 2, 3, 7, 64] {
            let hits: Vec<AtomicU64> = (0..chunks).map(|_| AtomicU64::new(0)).collect();
            pool.run(chunks, &|c| {
                // ORD: test counter; asserted after the run's latch.
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            for (c, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {c} of {chunks}");
            }
        }
    }

    #[test]
    fn single_thread_pool_spawns_no_workers_and_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        let caller = thread::current().id();
        pool.run(5, &|_| assert_eq!(thread::current().id(), caller));
    }

    #[test]
    fn zero_thread_request_is_clamped_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(8, &|c| {
                // ORD: test counter; asserted after all runs complete.
                total.fetch_add(c as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 100 * (0..8).sum::<u64>());
    }

    #[test]
    fn nested_runs_fall_back_to_inline_instead_of_deadlocking() {
        let pool = ThreadPool::new(2);
        let hits = AtomicU64::new(0);
        pool.run(2, &|_| {
            pool.run(3, &|_| {
                // ORD: test counter; asserted after the outer latch.
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn chunk_results_are_independent_of_claim_order() {
        let pool = ThreadPool::new(4);
        let out: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        pool.run(out.len(), &|c| {
            // ORD: disjoint per-chunk cells; read back after the latch.
            out[c].store((c as u64).wrapping_mul(2_654_435_761), Ordering::Relaxed);
        });
        for (c, v) in out.iter().enumerate() {
            assert_eq!(
                v.load(Ordering::Relaxed),
                (c as u64).wrapping_mul(2_654_435_761)
            );
        }
    }

    #[test]
    fn configure_is_first_writer_wins() {
        // The global pool is process-wide; this test only asserts the
        // contract that repeated configuration reports the live size.
        let first = configure(2);
        assert_eq!(configure(7), first);
        assert_eq!(global().threads(), first);
    }
}
