//! Accuracy budget for the quantized decode kernels.
//!
//! `--kernel quantized` trades bit-exactness against the f32 decode for
//! speed; this module is the committed contract on how much accuracy the
//! trade may cost. The bounds are consts (not config) so that loosening
//! the budget is a reviewed diff, and the harness takes raw guess lists
//! and score pairs rather than models, keeping `pagpass-eval` free of any
//! inference dependency — CI feeds it from an end-to-end run of both
//! kernels on the same trained model.

use serde::{Deserialize, Serialize};

use crate::hit_rate;

/// Maximum absolute hit-rate difference (quantized vs pinned f32) the
/// quantized kernels may introduce: 1 percentage point.
pub const MAX_HIT_RATE_DELTA: f64 = 0.01;

/// Maximum mean absolute per-token log-probability error between the two
/// kernels scoring the same passwords. Measured MAE on the CI reference
/// model is ~1.6e-4 nats per token; the bound leaves over an order of
/// magnitude of headroom so it trips on real regressions (a broken scale,
/// a transposed block), not on quantization noise.
pub const MAX_LOG_PROB_MAE: f64 = 0.005;

/// Side-by-side accuracy measurement of the two decode kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantEquivalence {
    /// Hit rate of the pinned-f32 guess stream against the test set.
    pub pinned_hit_rate: f64,
    /// Hit rate of the quantized guess stream against the same test set.
    pub quantized_hit_rate: f64,
    /// Mean absolute difference between paired per-token log-probability
    /// scores of the same passwords under the two kernels.
    pub log_prob_mae: f64,
}

impl QuantEquivalence {
    /// Absolute hit-rate difference between the kernels.
    #[must_use]
    pub fn hit_rate_delta(&self) -> f64 {
        (self.pinned_hit_rate - self.quantized_hit_rate).abs()
    }

    /// Whether both measurements sit inside the committed budget.
    #[must_use]
    pub fn within_budget(&self) -> bool {
        self.hit_rate_delta() <= MAX_HIT_RATE_DELTA && self.log_prob_mae <= MAX_LOG_PROB_MAE
    }
}

/// Measures the quantized kernels against the pinned f32 kernels.
///
/// `pinned_guesses` and `quantized_guesses` are full guess streams
/// produced by the respective kernels from the same model, budget, and
/// seed; `test_set` is the common evaluation set. `pinned_scores` and
/// `quantized_scores` are paired per-token log-probabilities of the same
/// password list scored under each kernel (callers normalize a password's
/// total log-probability by its scored token count).
///
/// # Panics
///
/// Panics if the score slices differ in length — pairing is positional.
#[must_use]
pub fn quant_equivalence<S: AsRef<str>>(
    pinned_guesses: &[S],
    quantized_guesses: &[S],
    test_set: &[S],
    pinned_scores: &[f64],
    quantized_scores: &[f64],
) -> QuantEquivalence {
    assert_eq!(
        pinned_scores.len(),
        quantized_scores.len(),
        "score lists must pair positionally"
    );
    let mae = if pinned_scores.is_empty() {
        0.0
    } else {
        pinned_scores
            .iter()
            .zip(quantized_scores)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / pinned_scores.len() as f64
    };
    QuantEquivalence {
        pinned_hit_rate: hit_rate(pinned_guesses, test_set).rate(),
        quantized_hit_rate: hit_rate(quantized_guesses, test_set).rate(),
        log_prob_mae: mae,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn identical_streams_are_trivially_within_budget() {
        let test = s(&["abc123", "qwerty", "zz99"]);
        let guesses = s(&["abc123", "nope1", "zz99"]);
        let scores = [-2.5, -3.0, -1.25];
        let eq = quant_equivalence(&guesses, &guesses, &test, &scores, &scores);
        assert_eq!(eq.hit_rate_delta(), 0.0);
        assert_eq!(eq.log_prob_mae, 0.0);
        assert!(eq.within_budget());
    }

    #[test]
    fn hit_rate_delta_is_absolute_and_gated() {
        let test = s(&[
            "p00", "p01", "p02", "p03", "p04", "p05", "p06", "p07", "p08", "p09", "p10", "p11",
            "p12", "p13", "p14", "p15", "p16", "p17", "p18", "p19",
        ]);
        // Pinned finds 10/20, quantized 9/20: a 5-point delta, over budget.
        let pinned: Vec<String> = test[..10].to_vec();
        let quantized: Vec<String> = test[..9].to_vec();
        let eq = quant_equivalence(&pinned, &quantized, &test, &[], &[]);
        assert!((eq.hit_rate_delta() - 0.05).abs() < 1e-12);
        assert!(!eq.within_budget());
    }

    #[test]
    fn log_prob_mae_is_the_mean_absolute_pairwise_error() {
        let test = s(&["x1"]);
        let guesses = s(&["x1"]);
        let a = [-1.0, -2.0, -3.0];
        let b = [-1.003, -1.997, -3.0];
        let eq = quant_equivalence(&guesses, &guesses, &test, &a, &b);
        assert!((eq.log_prob_mae - 0.002).abs() < 1e-12);
        assert!(eq.within_budget());
        // A broken kernel (scores off by nats, not millinats) trips it.
        let broken = [-4.0, -2.0, -3.0];
        let eq = quant_equivalence(&guesses, &guesses, &test, &a, &broken);
        assert!(eq.log_prob_mae > MAX_LOG_PROB_MAE);
        assert!(!eq.within_budget());
    }

    #[test]
    #[should_panic(expected = "pair positionally")]
    fn mismatched_score_lists_panic() {
        let g = s(&["x1"]);
        let _ = quant_equivalence(&g, &g, &g, &[-1.0], &[]);
    }
}
