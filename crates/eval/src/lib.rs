//! Evaluation metrics for password guessing models, exactly as defined in
//! the PagPassGPT paper's evaluation (§IV):
//!
//! * [`hit_rate`] — deduplicated guesses ∩ test set over test-set size
//!   (Table IV, Table VI),
//! * [`repeat_rate`] — fraction of duplicate guesses (Fig. 10),
//! * [`GuessCurve`] — both metrics at a ladder of guess budgets
//!   (10⁶…10⁹ in the paper; configurable here),
//! * [`length_distance`] / [`pattern_distance`] — Euclidean distances
//!   between generated and test distributions (Eqs. 6–7, Table V, Fig. 11),
//! * [`PatternGuidedEval`] — the `HR_s` / `HR_P` protocol of the
//!   pattern-guided guessing test (Eqs. 4–5, Figs. 8–9), including the
//!   top-21-patterns-per-category target selection,
//! * [`SchedulerComparison`] — hit-rate-per-guess and repeat-rate for
//!   several generation schedulers (D&C-GEN, SOPG, plain sampling) run
//!   at the same guess budget,
//! * [`quant_equivalence`] — the accuracy budget for the quantized decode
//!   kernels (hit-rate delta ≤ 1 point, per-token log-prob MAE under a
//!   committed bound), enforced by CI against the pinned f32 decode,
//! * [`GuessNumberEstimator`] — Monte Carlo guess-number estimation
//!   (Dell'Amico & Filippone 2015), turning any scoring model into a
//!   strength meter calibrated in guesses-to-crack.
//!
//! # Examples
//!
//! ```
//! use pagpass_eval::{hit_rate, repeat_rate};
//!
//! let test: Vec<String> = vec!["abc123".into(), "qwerty".into()];
//! let guesses: Vec<String> = vec!["abc123".into(), "abc123".into(), "zzz".into()];
//! assert_eq!(hit_rate(&guesses, &test).hits, 1);
//! assert!((repeat_rate(&guesses) - 1.0 / 3.0).abs() < 1e-12);
//! ```

use std::collections::{BTreeMap, HashSet};

use pagpass_patterns::{Pattern, PatternDistribution};
use serde::{Deserialize, Serialize};

mod comparison;
mod guess_number;
mod quant;

pub use comparison::{emission_is_non_increasing, SchedulerComparison, SchedulerCurve};
pub use guess_number::GuessNumberEstimator;
pub use quant::{quant_equivalence, QuantEquivalence, MAX_HIT_RATE_DELTA, MAX_LOG_PROB_MAE};

/// Outcome of a hit-rate measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitRateReport {
    /// Distinct guesses that appear in the test set.
    pub hits: usize,
    /// Distinct guesses made.
    pub unique_guesses: usize,
    /// Total guesses made (with duplicates).
    pub total_guesses: usize,
    /// Test-set size.
    pub test_size: usize,
}

impl HitRateReport {
    /// `hits / test_size` — the paper's hit rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.test_size == 0 {
            return 0.0;
        }
        self.hits as f64 / self.test_size as f64
    }
}

/// Computes the paper's hit rate: both guesses and test set are
/// deduplicated, then the intersection is counted against the test size.
#[must_use]
pub fn hit_rate<S: AsRef<str>>(guesses: &[S], test_set: &[S]) -> HitRateReport {
    let test: HashSet<&str> = test_set.iter().map(AsRef::as_ref).collect();
    let unique: HashSet<&str> = guesses.iter().map(AsRef::as_ref).collect();
    let hits = unique.iter().filter(|g| test.contains(*g)).count();
    HitRateReport {
        hits,
        unique_guesses: unique.len(),
        total_guesses: guesses.len(),
        test_size: test.len(),
    }
}

/// Fraction of guesses that duplicate an earlier guess:
/// `1 - unique/total` (paper §IV-D2).
#[must_use]
pub fn repeat_rate<S: AsRef<str>>(guesses: &[S]) -> f64 {
    if guesses.is_empty() {
        return 0.0;
    }
    let unique: HashSet<&str> = guesses.iter().map(AsRef::as_ref).collect();
    1.0 - unique.len() as f64 / guesses.len() as f64
}

/// Hit and repeat rates along a ladder of guess budgets.
///
/// A model's guesses are a stream; the curve reports the metrics over each
/// prefix of the stream, which is how the paper's Table IV / Fig. 10 vary
/// the guess number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuessCurve {
    /// The budgets evaluated (clamped to the stream length).
    pub budgets: Vec<usize>,
    /// Hit rate at each budget.
    pub hit_rates: Vec<f64>,
    /// Repeat rate at each budget.
    pub repeat_rates: Vec<f64>,
}

impl GuessCurve {
    /// Evaluates the guess stream at each budget (single pass).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `budgets` is not ascending.
    #[must_use]
    pub fn compute<S: AsRef<str>>(guesses: &[S], test_set: &[S], budgets: &[usize]) -> GuessCurve {
        let test: HashSet<&str> = test_set.iter().map(AsRef::as_ref).collect();
        let mut seen: HashSet<&str> = HashSet::new();
        let mut hits = 0usize;
        let mut curve = GuessCurve {
            budgets: budgets.iter().map(|&b| b.min(guesses.len())).collect(),
            hit_rates: Vec::with_capacity(budgets.len()),
            repeat_rates: Vec::with_capacity(budgets.len()),
        };
        let mut sorted: Vec<usize> = curve.budgets.clone();
        sorted.sort_unstable();
        debug_assert_eq!(sorted, curve.budgets, "budgets must be ascending");
        let mut idx = 0usize;
        for (i, guess) in guesses.iter().enumerate() {
            let g = guess.as_ref();
            if seen.insert(g) && test.contains(g) {
                hits += 1;
            }
            while idx < curve.budgets.len() && i + 1 == curve.budgets[idx] {
                curve.push_point(hits, seen.len(), i + 1, test.len());
                idx += 1;
            }
        }
        while idx < curve.budgets.len() {
            curve.push_point(hits, seen.len(), guesses.len(), test.len());
            idx += 1;
        }
        curve
    }

    fn push_point(&mut self, hits: usize, unique: usize, total: usize, test_size: usize) {
        self.hit_rates.push(if test_size == 0 {
            0.0
        } else {
            hits as f64 / test_size as f64
        });
        self.repeat_rates.push(if total == 0 {
            0.0
        } else {
            1.0 - unique as f64 / total as f64
        });
    }
}

/// Length distance (Eq. 6): Euclidean distance between the length
/// distributions (lengths 4–12) of generated passwords and the test set.
#[must_use]
pub fn length_distance<S: AsRef<str>>(generated: &[S], test_set: &[S]) -> f64 {
    let gp = length_probs(generated);
    let tp = length_probs(test_set);
    gp.iter()
        .zip(&tp)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

fn length_probs<S: AsRef<str>>(pwds: &[S]) -> [f64; 9] {
    let mut counts = [0usize; 9];
    let mut total = 0usize;
    for pw in pwds {
        let len = pw.as_ref().chars().count();
        if (4..=12).contains(&len) {
            counts[len - 4] += 1;
            total += 1;
        }
    }
    let mut probs = [0.0f64; 9];
    if total > 0 {
        for (p, &c) in probs.iter_mut().zip(&counts) {
            *p = c as f64 / total as f64;
        }
    }
    probs
}

/// Pattern distance (Eq. 7): Euclidean distance between the probabilities
/// of the test set's `top_k` most common patterns (150 in the paper) under
/// the two distributions.
#[must_use]
pub fn pattern_distance<S: AsRef<str>>(generated: &[S], test_set: &[S], top_k: usize) -> f64 {
    let test_dist = PatternDistribution::from_passwords(test_set.iter().map(AsRef::as_ref));
    let gen_dist = PatternDistribution::from_passwords(generated.iter().map(AsRef::as_ref));
    test_dist
        .top(top_k)
        .into_iter()
        .map(|entry| {
            let d = entry.probability - gen_dist.probability(&entry.pattern);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Per-pattern result inside a pattern-guided evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternHit {
    /// The target pattern `P`.
    pub pattern: Pattern,
    /// Hits against test passwords conforming to `P`.
    pub hits: usize,
    /// Test passwords conforming to `P` (`TC_P^test`).
    pub test_conforming: usize,
}

impl PatternHit {
    /// `HR_P = NH_P / TC_P^test` (Eq. 5).
    #[must_use]
    pub fn hr_p(&self) -> f64 {
        if self.test_conforming == 0 {
            return 0.0;
        }
        self.hits as f64 / self.test_conforming as f64
    }
}

/// The pattern-guided guessing evaluation protocol (paper §IV-C):
/// category = number of pattern segments; targets = the most frequent
/// patterns of each category in the test set.
#[derive(Debug, Clone)]
pub struct PatternGuidedEval {
    test_set: Vec<String>,
    test_dist: PatternDistribution,
}

impl PatternGuidedEval {
    /// Prepares the evaluation against a test set.
    #[must_use]
    pub fn new(test_set: &[String]) -> PatternGuidedEval {
        let test_dist = PatternDistribution::from_passwords(test_set.iter().map(String::as_str));
        PatternGuidedEval {
            test_set: test_set.to_vec(),
            test_dist,
        }
    }

    /// The test set's pattern distribution.
    #[must_use]
    pub fn test_distribution(&self) -> &PatternDistribution {
        &self.test_dist
    }

    /// Selects the `per_category` most frequent patterns of every segment
    /// category (the paper chooses 21, the size of its smallest category).
    /// Categories are keyed by segment count, ascending.
    #[must_use]
    pub fn target_patterns(&self, per_category: usize) -> BTreeMap<usize, Vec<Pattern>> {
        let mut out = BTreeMap::new();
        for (segments, entries) in self.test_dist.by_segments() {
            let picked: Vec<Pattern> = entries
                .into_iter()
                .take(per_category)
                .map(|e| e.pattern)
                .collect();
            out.insert(segments, picked);
        }
        out
    }

    /// Scores one pattern's generated guesses: hits are counted against the
    /// test passwords conforming to that pattern.
    #[must_use]
    pub fn score_pattern<S: AsRef<str>>(&self, pattern: &Pattern, guesses: &[S]) -> PatternHit {
        let conforming: HashSet<&str> = self
            .test_set
            .iter()
            .map(String::as_str)
            .filter(|pw| pattern.matches(pw))
            .collect();
        let unique: HashSet<&str> = guesses.iter().map(AsRef::as_ref).collect();
        let hits = unique.iter().filter(|g| conforming.contains(*g)).count();
        PatternHit {
            pattern: pattern.clone(),
            hits,
            test_conforming: conforming.len(),
        }
    }

    /// Aggregates per-pattern results into the category hit rate
    /// `HR_s = NH_s / TC_s^test` (Eq. 4): total hits across the category's
    /// target patterns over the number of test passwords in the whole
    /// category.
    #[must_use]
    pub fn category_hit_rate(&self, segments: usize, results: &[PatternHit]) -> f64 {
        let tc_s: usize = self
            .test_set
            .iter()
            .filter(|pw| Pattern::of_password(pw).is_ok_and(|p| p.segment_count() == segments))
            .count();
        if tc_s == 0 {
            return 0.0;
        }
        let nh_s: usize = results
            .iter()
            .filter(|r| r.pattern.segment_count() == segments)
            .map(|r| r.hits)
            .sum();
        nh_s as f64 / tc_s as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn hit_rate_deduplicates_both_sides() {
        let test = s(&["abc123", "qwerty", "abc123"]);
        let guesses = s(&["abc123", "abc123", "nope", "qwerty"]);
        let r = hit_rate(&guesses, &test);
        assert_eq!(r.hits, 2);
        assert_eq!(r.test_size, 2);
        assert_eq!(r.unique_guesses, 3);
        assert_eq!(r.total_guesses, 4);
        assert!((r.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_empty_inputs() {
        let empty: Vec<String> = vec![];
        assert_eq!(hit_rate(&empty, &empty).rate(), 0.0);
        assert_eq!(hit_rate(&s(&["a1b2"]), &empty).rate(), 0.0);
    }

    #[test]
    fn repeat_rate_counts_all_duplicates() {
        assert_eq!(repeat_rate::<String>(&[]), 0.0);
        assert_eq!(repeat_rate(&s(&["x1", "y2"])), 0.0);
        assert!((repeat_rate(&s(&["x1", "x1", "x1", "y2"])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn guess_curve_is_monotone_in_hits() {
        let test = s(&["aa11", "bb22", "cc33"]);
        let guesses = s(&["aa11", "zz", "bb22", "bb22", "cc33", "qq"]);
        let curve = GuessCurve::compute(&guesses, &test, &[2, 4, 6]);
        assert_eq!(curve.hit_rates.len(), 3);
        assert!(curve.hit_rates.windows(2).all(|w| w[0] <= w[1]));
        assert!((curve.hit_rates[2] - 1.0).abs() < 1e-12);
        // Repeat rate at 4: one duplicate among four guesses.
        assert!((curve.repeat_rates[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn guess_curve_budgets_clamp_to_stream() {
        let test = s(&["aa11"]);
        let guesses = s(&["aa11", "bb"]);
        let curve = GuessCurve::compute(&guesses, &test, &[1, 100]);
        assert_eq!(curve.budgets, vec![1, 2]);
        assert_eq!(curve.hit_rates.len(), 2);
    }

    #[test]
    fn guess_curve_matches_pointwise_metrics() {
        let test = s(&["aa11", "bb22", "cc33", "dd44"]);
        let guesses = s(&["aa11", "aa11", "xx", "bb22", "yy", "cc33", "cc33", "zz"]);
        let budgets = [2usize, 5, 8];
        let curve = GuessCurve::compute(&guesses, &test, &budgets);
        for (i, &b) in budgets.iter().enumerate() {
            let prefix = &guesses[..b];
            let r = hit_rate(prefix, &test);
            assert!((curve.hit_rates[i] - r.rate()).abs() < 1e-12);
            assert!((curve.repeat_rates[i] - repeat_rate(prefix)).abs() < 1e-12);
        }
    }

    #[test]
    fn length_distance_zero_for_identical_distributions() {
        let a = s(&["abcd", "abcde", "abcdef"]);
        assert!(length_distance(&a, &a) < 1e-12);
        let b = s(&["abcdefghijkl", "abcdefghijk", "abcdefghij"]);
        assert!(length_distance(&a, &b) > 0.5);
    }

    #[test]
    fn length_distance_ignores_out_of_range() {
        let a = s(&["abcd", "ab"]); // "ab" ignored
        let b = s(&["abcd"]);
        assert!(length_distance(&a, &b) < 1e-12);
    }

    #[test]
    fn pattern_distance_zero_for_identical() {
        let a = s(&["abc123", "xyz789", "hello!"]);
        assert!(pattern_distance(&a, &a, 150) < 1e-12);
        let c = s(&["123abc", "789xyz", "!hello"]);
        assert!(pattern_distance(&c, &a, 150) > 0.5);
    }

    #[test]
    fn target_patterns_per_category() {
        let test = s(&["abc123", "xyz789", "letmein", "pass", "12345", "a1b2"]);
        let eval = PatternGuidedEval::new(&test);
        let targets = eval.target_patterns(2);
        assert!(targets[&1].len() <= 2);
        assert!(targets.contains_key(&2));
        assert!(targets.contains_key(&4)); // a1b2 has 4 segments
    }

    #[test]
    fn hr_p_and_hr_s() {
        let test = s(&["abc123", "dog456", "pass", "word"]);
        let eval = PatternGuidedEval::new(&test);
        let p: Pattern = "L3N3".parse().unwrap();
        let guesses = s(&["abc123", "cat999", "abc123"]);
        let hit = eval.score_pattern(&p, &guesses);
        assert_eq!(hit.hits, 1);
        assert_eq!(hit.test_conforming, 2);
        assert!((hit.hr_p() - 0.5).abs() < 1e-12);
        // Category s=2 only contains the two L3N3 passwords.
        let hr_s = eval.category_hit_rate(2, &[hit]);
        assert!((hr_s - 0.5).abs() < 1e-12);
        // Category with no test passwords.
        assert_eq!(eval.category_hit_rate(7, &[]), 0.0);
    }
}
