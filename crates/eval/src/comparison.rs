//! Scheduler comparison report: hit-rate-per-guess and repeat-rate for
//! several generation schedulers run at the *same* guess budget.
//!
//! The D&C-GEN paper argument (Fig. 10) is that scheduling — not the
//! model — controls the repeat rate; the SOPG argument (arXiv
//! 2403.09954) is that ordered enumeration additionally front-loads the
//! probability mass. Both claims are only meaningful side by side at an
//! equal budget, which is what [`SchedulerComparison`] captures and
//! [`SchedulerComparison::validate`] enforces before a report is
//! committed or gated in CI.

use serde::{Deserialize, Serialize};

use crate::GuessCurve;

/// One scheduler's measured behavior at the shared budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerCurve {
    /// Scheduler name (`dcgen`, `sopg`, `sample`).
    pub scheduler: String,
    /// Guess budget the run was given.
    pub budget: u64,
    /// Guesses actually emitted (≤ budget; quota rounding may undershoot).
    pub emitted: u64,
    /// Hit/repeat rates along the shared budget ladder.
    pub curve: GuessCurve,
    /// Repeat rate over the full emission.
    pub repeat_rate: f64,
    /// Hit rate over the full emission.
    pub hit_rate: f64,
    /// Emission throughput of the run.
    pub guesses_per_sec: f64,
    /// Whether per-guess emission log-probabilities were non-increasing.
    /// `None` when the scheduler does not report emission probabilities
    /// (dcgen and sample do not).
    pub emission_monotone: Option<bool>,
    /// Frontier evictions forced by the memory cap (SOPG only).
    pub frontier_evictions: u64,
}

/// All schedulers compared at one budget against one test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerComparison {
    /// Shared guess budget every scheduler ran with.
    pub budget: u64,
    /// Test-set size the hit rates are measured against.
    pub test_size: usize,
    /// The budget ladder every curve was evaluated on.
    pub budgets: Vec<usize>,
    /// Per-scheduler results.
    pub schedulers: Vec<SchedulerCurve>,
}

impl SchedulerComparison {
    /// Checks the structural invariants a committed comparison report
    /// must hold. Returns every violation, empty when valid:
    ///
    /// * at least two schedulers, all at the shared budget,
    /// * every curve evaluated on the shared budget ladder,
    /// * rates within `[0, 1]`,
    /// * `sopg`, when present, has exactly zero repeats and monotone
    ///   non-increasing emission log-probabilities.
    #[must_use]
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if self.schedulers.len() < 2 {
            errors.push(format!(
                "comparison needs at least two schedulers, got {}",
                self.schedulers.len()
            ));
        }
        for s in &self.schedulers {
            let name = s.scheduler.as_str();
            if s.budget != self.budget {
                errors.push(format!(
                    "{name}: budget {} differs from shared budget {}",
                    s.budget, self.budget
                ));
            }
            if s.emitted > s.budget {
                errors.push(format!(
                    "{name}: emitted {} exceeds budget {}",
                    s.emitted, s.budget
                ));
            }
            if s.curve.budgets != self.budgets {
                errors.push(format!("{name}: curve ladder differs from shared ladder"));
            }
            for (label, v) in [("repeat_rate", s.repeat_rate), ("hit_rate", s.hit_rate)] {
                if !(0.0..=1.0).contains(&v) {
                    errors.push(format!("{name}: {label} {v} outside [0, 1]"));
                }
            }
            if name == "sopg" {
                if s.repeat_rate != 0.0 {
                    errors.push(format!(
                        "sopg: repeat rate must be exactly 0.0, got {}",
                        s.repeat_rate
                    ));
                }
                if s.emission_monotone != Some(true) {
                    errors.push(format!(
                        "sopg: emission log-probs must be monotone non-increasing, got {:?}",
                        s.emission_monotone
                    ));
                }
            }
        }
        errors
    }
}

/// Whether a sequence of emission log-probabilities is non-increasing —
/// the SOPG ordered-enumeration guarantee. Treats NaN as a violation.
#[must_use]
pub fn emission_is_non_increasing(log_probs: &[f64]) -> bool {
    log_probs.iter().all(|lp| !lp.is_nan()) && log_probs.windows(2).all(|w| w[0] >= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(budgets: &[usize]) -> GuessCurve {
        GuessCurve {
            budgets: budgets.to_vec(),
            hit_rates: budgets.iter().map(|_| 0.1).collect(),
            repeat_rates: budgets.iter().map(|_| 0.0).collect(),
        }
    }

    fn entry(name: &str, budget: u64, budgets: &[usize]) -> SchedulerCurve {
        SchedulerCurve {
            scheduler: name.to_owned(),
            budget,
            emitted: budget,
            curve: curve(budgets),
            repeat_rate: 0.0,
            hit_rate: 0.1,
            guesses_per_sec: 100.0,
            emission_monotone: (name == "sopg").then_some(true),
            frontier_evictions: 0,
        }
    }

    #[test]
    fn valid_comparison_has_no_errors() {
        let cmp = SchedulerComparison {
            budget: 100,
            test_size: 50,
            budgets: vec![10, 100],
            schedulers: vec![
                entry("dcgen", 100, &[10, 100]),
                entry("sopg", 100, &[10, 100]),
                entry("sample", 100, &[10, 100]),
            ],
        };
        assert_eq!(cmp.validate(), Vec::<String>::new());
    }

    #[test]
    fn unequal_budget_and_ladder_are_rejected() {
        let cmp = SchedulerComparison {
            budget: 100,
            test_size: 50,
            budgets: vec![10, 100],
            schedulers: vec![
                entry("dcgen", 100, &[10, 100]),
                entry("sopg", 90, &[10, 90]),
            ],
        };
        let errors = cmp.validate();
        assert!(errors.iter().any(|e| e.contains("shared budget")));
        assert!(errors.iter().any(|e| e.contains("ladder")));
    }

    #[test]
    fn sopg_with_repeats_or_unordered_emission_is_rejected() {
        let mut bad = entry("sopg", 100, &[10, 100]);
        bad.repeat_rate = 0.01;
        bad.emission_monotone = Some(false);
        let cmp = SchedulerComparison {
            budget: 100,
            test_size: 50,
            budgets: vec![10, 100],
            schedulers: vec![entry("dcgen", 100, &[10, 100]), bad],
        };
        let errors = cmp.validate();
        assert!(errors.iter().any(|e| e.contains("exactly 0.0")));
        assert!(errors.iter().any(|e| e.contains("monotone")));
    }

    #[test]
    fn single_scheduler_is_not_a_comparison() {
        let cmp = SchedulerComparison {
            budget: 100,
            test_size: 50,
            budgets: vec![100],
            schedulers: vec![entry("dcgen", 100, &[100])],
        };
        assert!(!cmp.validate().is_empty());
    }

    #[test]
    fn monotone_helper_rejects_increases_and_nan() {
        assert!(emission_is_non_increasing(&[]));
        assert!(emission_is_non_increasing(&[-1.0]));
        assert!(emission_is_non_increasing(&[-1.0, -1.0, -2.5]));
        assert!(!emission_is_non_increasing(&[-2.0, -1.0]));
        assert!(!emission_is_non_increasing(&[-1.0, f64::NAN]));
    }
}
