//! Monte Carlo guess-number estimation (Dell'Amico & Filippone, CCS 2015).
//!
//! A probabilistic guesser that emits passwords in descending probability
//! order will try a password of probability `p` after roughly
//! `G(p) = |{x : Pr(x) > p}|` other guesses. Enumerating that set is
//! infeasible, but `G(p)` can be estimated from `n` *samples* drawn from
//! the model itself:
//!
//! ```text
//! G(p) ≈ Σ_{i : p_i > p} 1 / (n · p_i)
//! ```
//!
//! because each sampled password `x_i` (probability `p_i`) stands for
//! `1/(n·p_i)` passwords of its probability mass. This turns any model that
//! can *score* passwords (`PasswordModel::log_probability`, `PcfgModel::
//! probability`, `MarkovModel::log_probability`) into a strength meter
//! calibrated in "number of guesses to crack".

use serde::{Deserialize, Serialize};

/// A guess-number estimator built from model samples.
///
/// # Examples
///
/// ```
/// use pagpass_eval::GuessNumberEstimator;
///
/// // A toy model over 4 equally likely passwords: each has probability
/// // 1/4, so a password of probability 1/4 has ~0 stronger passwords
/// // above it and one of probability 1/8 ranks after all four.
/// let samples = vec![(0.25f64).ln(); 100];
/// let est = GuessNumberEstimator::from_sample_log_probs(samples);
/// assert!(est.guess_number((0.125f64).ln()) >= 3.9);
/// assert!(est.guess_number((0.5f64).ln()) < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuessNumberEstimator {
    /// Sampled log-probabilities, sorted descending.
    sorted_log_probs: Vec<f64>,
    /// Partial sums of `1/(n·p_i)` over the sorted prefix.
    prefix_mass: Vec<f64>,
}

impl GuessNumberEstimator {
    /// Builds an estimator from the log-probabilities of passwords
    /// *sampled from the model under evaluation* (not from a corpus).
    ///
    /// Non-finite entries are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no finite sample remains.
    #[must_use]
    pub fn from_sample_log_probs(samples: Vec<f64>) -> GuessNumberEstimator {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|lp| lp.is_finite()).collect();
        assert!(
            !sorted.is_empty(),
            "estimator needs at least one finite sample"
        );
        sorted.sort_by(|a, b| b.total_cmp(a));
        let n = sorted.len() as f64;
        let mut prefix_mass = Vec::with_capacity(sorted.len());
        let mut acc = 0.0;
        for &lp in &sorted {
            acc += (-lp).exp() / n; // 1 / (n * p_i)
            prefix_mass.push(acc);
        }
        GuessNumberEstimator {
            sorted_log_probs: sorted,
            prefix_mass,
        }
    }

    /// Number of samples backing the estimate.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.sorted_log_probs.len()
    }

    /// Estimated number of guesses a descending-probability attacker makes
    /// before reaching a password of log-probability `target_log_prob`.
    #[must_use]
    pub fn guess_number(&self, target_log_prob: f64) -> f64 {
        // Count samples with strictly higher probability than the target.
        let k = self
            .sorted_log_probs
            .partition_point(|&lp| lp > target_log_prob);
        if k == 0 {
            0.0
        } else {
            self.prefix_mass[k - 1]
        }
    }

    /// Convenience: `log2` of the guess number — "bits of guessing work",
    /// the scale strength meters usually display.
    #[must_use]
    pub fn guess_bits(&self, target_log_prob: f64) -> f64 {
        self.guess_number(target_log_prob).max(1.0).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform model over `m` passwords: every sample has probability 1/m,
    /// and a password of the same probability should have a guess number
    /// near 0 (nothing outranks it), while anything weaker ranks ~m.
    #[test]
    fn uniform_model_recovers_the_support_size() {
        for m in [10usize, 1000] {
            let lp = (1.0 / m as f64).ln();
            let est = GuessNumberEstimator::from_sample_log_probs(vec![lp; 500]);
            assert_eq!(
                est.guess_number(lp),
                0.0,
                "equal probability is not outranked"
            );
            let weaker = est.guess_number(lp - 0.1);
            let m = m as f64;
            assert!((weaker - m).abs() / m < 0.05, "m={m}: estimated {weaker}");
        }
    }

    /// Zipf-ish model: strong passwords get small guess numbers, weak ones
    /// large, and the estimate is monotone.
    #[test]
    fn estimates_are_monotone_in_weakness() {
        // Geometric distribution over ranks: p_r ∝ 0.5^r.
        let probs: Vec<f64> = (1..=20).map(|r| 0.5f64.powi(r)).collect();
        let z: f64 = probs.iter().sum();
        // Sample proportionally (deterministic expansion is fine here).
        let mut samples = Vec::new();
        for &p in &probs {
            let copies = (p / z * 4000.0).round() as usize;
            samples.extend(std::iter::repeat_n((p / z).ln(), copies));
        }
        let est = GuessNumberEstimator::from_sample_log_probs(samples);
        let g: Vec<f64> = probs
            .iter()
            .map(|&p| est.guess_number((p / z).ln()))
            .collect();
        assert!(g.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{g:?}");
        assert!(
            g[0] < 1.0,
            "the most probable password is guessed almost immediately"
        );
        assert!(est.guess_bits((probs[9] / z).ln()) > 2.0);
    }

    #[test]
    fn drops_non_finite_samples() {
        let est = GuessNumberEstimator::from_sample_log_probs(vec![
            f64::NEG_INFINITY,
            (0.5f64).ln(),
            f64::NAN,
        ]);
        assert_eq!(est.sample_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one finite sample")]
    fn empty_samples_panic() {
        let _ = GuessNumberEstimator::from_sample_log_probs(vec![f64::NAN]);
    }
}
