//! Golden-file tests for the analysis engine.
//!
//! Every `<name>.rs` under `tests/fixtures/` is analyzed and its findings
//! are compared against the sibling `<name>.expected` file (one
//! `<line>:<lint>` per line; empty file = must be clean).
//!
//! Leading `//@` directives configure the run:
//!
//! * `//@ path: <path>` — virtual workspace path (borrow a deterministic
//!   module's path, pose as `src/main.rs`, …);
//! * `//@ readme: <text>` — README text for the CLI-flag invariant;
//! * `//@ ci: <text>` — CI workflow text for the schema-version
//!   invariant (`;` separates lines);
//! * `//@ lock-order: <entries>` — committed canonical lock order
//!   (`;` separates lines) for the `lock-order` invariant;
//! * `//@ group: <name>` — fixtures sharing a group are analyzed
//!   *together* (cross-file lints see all of them); each fixture's golden
//!   still only lists the findings whose path is that fixture's own.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use pagpass_analysis::{analyze_sources, Allowlist, AnalysisInputs, LockOrderFile};

fn directive<'a>(text: &'a str, tag: &str) -> Option<&'a str> {
    text.lines()
        .take_while(|l| l.starts_with("//@"))
        .find_map(|l| l.strip_prefix(tag).map(str::trim))
}

/// `;`-separated directive payloads become multi-line texts.
fn multiline(payload: &str) -> String {
    let mut out = payload.replace(';', "\n");
    out.push('\n');
    out
}

struct Fixture {
    name: String,
    vpath: String,
    text: String,
}

#[test]
fn fixtures_match_goldens() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 8,
        "fixture suite shrank: only {names:?} present"
    );

    // Group fixtures: `//@ group:`-tagged files analyze together; the
    // rest analyze alone (a group of one).
    let mut groups: BTreeMap<String, Vec<Fixture>> = BTreeMap::new();
    for name in &names {
        let text = fs::read_to_string(dir.join(name)).expect("read fixture");
        let vpath = directive(&text, "//@ path:")
            .unwrap_or("crates/fixture/src/lib.rs")
            .to_string();
        let group = directive(&text, "//@ group:")
            .map(str::to_string)
            .unwrap_or_else(|| format!("solo:{name}"));
        groups.entry(group).or_default().push(Fixture {
            name: name.clone(),
            vpath,
            text,
        });
    }

    let mut failures = Vec::new();
    for fixtures in groups.values() {
        // Directives may live on any member; first wins.
        let find = |tag: &str| {
            fixtures
                .iter()
                .find_map(|f| directive(&f.text, tag).map(str::to_string))
        };
        let inputs = AnalysisInputs {
            readme: find("//@ readme:"),
            ci_yaml: find("//@ ci:").map(|p| multiline(&p)),
            lock_order: find("//@ lock-order:").map(|p| LockOrderFile {
                path: "analysis/lock_order.txt".into(),
                text: multiline(&p),
            }),
        };
        let sources: Vec<(String, String)> = fixtures
            .iter()
            .map(|f| (f.vpath.clone(), f.text.clone()))
            .collect();
        let report = analyze_sources(sources, &inputs, &Allowlist::default());
        for fixture in fixtures {
            // Solo fixtures see every finding (including ones reported at
            // the lock-order file's path); group members only their own.
            let actual: Vec<String> = report
                .findings
                .iter()
                .filter(|d| fixtures.len() == 1 || d.finding.path == fixture.vpath)
                .map(|d| format!("{}:{}", d.finding.line, d.finding.lint))
                .collect();
            let golden_path = dir.join(fixture.name.replace(".rs", ".expected"));
            let golden = fs::read_to_string(&golden_path)
                .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
            let expected: Vec<String> = golden
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(String::from)
                .collect();
            if actual != expected {
                failures.push(format!(
                    "{}: expected {expected:?}, got {actual:?}\n  messages:\n{}",
                    fixture.name,
                    report
                        .findings
                        .iter()
                        .map(|d| format!(
                            "    {}:{} [{}] {}",
                            d.finding.path, d.finding.line, d.finding.lint, d.finding.message
                        ))
                        .collect::<Vec<_>>()
                        .join("\n")
                ));
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn seeded_violations_are_each_detected() {
    // Every golden with content must stay non-empty — a fixture whose
    // seeded violation stops firing means a lint regressed silently.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for seeded in [
        "unwrap_tricky",
        "stdout",
        "ordering",
        "determinism",
        "format_versions",
        "cli_flags",
        "guards_blocking",
        "lockgraph_cycle_a",
        "lockgraph_cycle_b",
        "lockgraph_order_contradiction",
        "atomics_pairing",
        "atomics_signal",
        "schema_version_mismatch",
    ] {
        let golden =
            fs::read_to_string(dir.join(format!("{seeded}.expected"))).expect("read golden");
        assert!(
            golden.lines().any(|l| !l.trim().is_empty()),
            "{seeded}.expected lost its seeded violations"
        );
    }
}
