//! Golden-file tests for the analysis engine.
//!
//! Every `<name>.rs` under `tests/fixtures/` is analyzed in isolation and
//! its findings are compared against the sibling `<name>.expected` file
//! (one `<line>:<lint>` per line; empty file = must be clean).
//!
//! Fixtures opt into a virtual workspace path with a leading
//! `//@ path: <path>` comment (e.g. to borrow a deterministic module's
//! path or pose as `src/main.rs`), and supply README text for the
//! CLI-flag invariant with `//@ readme: <text>`.

use std::fs;
use std::path::Path;

use pagpass_analysis::{analyze_sources, Allowlist};

fn directive<'a>(text: &'a str, tag: &str) -> Option<&'a str> {
    text.lines()
        .take_while(|l| l.starts_with("//@"))
        .find_map(|l| l.strip_prefix(tag).map(str::trim))
}

#[test]
fn fixtures_match_goldens() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 8,
        "fixture suite shrank: only {names:?} present"
    );

    let mut failures = Vec::new();
    for name in &names {
        let text = fs::read_to_string(dir.join(name)).expect("read fixture");
        let vpath = directive(&text, "//@ path:")
            .unwrap_or("crates/fixture/src/lib.rs")
            .to_string();
        let readme = directive(&text, "//@ readme:");
        let report = analyze_sources(vec![(vpath, text.clone())], readme, &Allowlist::default());
        let actual: Vec<String> = report
            .findings
            .iter()
            .map(|d| format!("{}:{}", d.finding.line, d.finding.lint))
            .collect();
        let golden_path = dir.join(name.replace(".rs", ".expected"));
        let golden = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
        let expected: Vec<String> = golden
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect();
        if actual != expected {
            failures.push(format!(
                "{name}: expected {expected:?}, got {actual:?}\n  messages:\n{}",
                report
                    .findings
                    .iter()
                    .map(|d| format!(
                        "    {}:{} [{}] {}",
                        d.finding.path, d.finding.line, d.finding.lint, d.finding.message
                    ))
                    .collect::<Vec<_>>()
                    .join("\n")
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn seeded_violations_are_each_detected() {
    // Every golden with content must stay non-empty — a fixture whose
    // seeded violation stops firing means a lint regressed silently.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for seeded in [
        "unwrap_tricky",
        "stdout",
        "ordering",
        "determinism",
        "lock_scope",
        "format_versions",
        "cli_flags",
    ] {
        let golden =
            fs::read_to_string(dir.join(format!("{seeded}.expected"))).expect("read golden");
        assert!(
            golden.lines().any(|l| !l.trim().is_empty()),
            "{seeded}.expected lost its seeded violations"
        );
    }
}
