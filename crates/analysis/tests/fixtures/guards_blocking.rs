//@ path: crates/fixture/src/lib.rs
//! `guard-blocking`: blocking operations while a Mutex/RwLock guard is
//! live (deny severity; supersedes the old lock-scope warn).

use std::fs::File;
use std::io::Write;
use std::sync::mpsc::Receiver;
use std::sync::Mutex;

struct Sink {
    out: Mutex<File>,
}

fn guard_across_recv(m: &Mutex<u32>, rx: &Receiver<u32>) -> u32 {
    let guard = m.lock();
    let v = rx.recv();
    drop(guard);
    v.unwrap_or(0)
}

impl Sink {
    fn emit_flagged(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
        }
    }

    fn emit_sanctioned(&self, line: &str) {
        // LINT-ALLOW: guard-blocking the sink's lock exists precisely to
        // serialize writers; blocking under it is its contract
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
        }
    }
}

fn join_under_read_guard(m: &std::sync::RwLock<u32>, h: std::thread::JoinHandle<()>) {
    let g = m.read();
    let _ = h.join();
    drop(g);
}
