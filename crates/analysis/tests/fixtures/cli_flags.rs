//@ path: src/main.rs
//@ readme: Run with --site NAME to pick a leak profile.
//! `cli-flags-documented`: `--site` is documented in the fixture README
//! above; `--budget` is not.

fn dispatch(p: &Parsed) -> Result<(), String> {
    let site = p.required("site")?;
    let budget: u64 = p.num("budget", 1000)?;
    run(site, budget)
}
