//@ path: crates/fixture/src/lib.rs
//! `atomic-signal`: `Relaxed` on signal-pattern fields
//! (`stop` / `*_stop` / `draining` / `*_draining` / `*_seq`) — an
//! `// ORD:` justification does not excuse it, because a relaxed signal
//! orders none of the data it is supposed to publish.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn request_stop(s: &Shared) {
    // ORD: believed harmless — the lint disagrees: stop is a signal.
    s.stop.store(true, Ordering::Relaxed);
}

fn poll_drain(s: &Shared) -> bool {
    // ORD: drain check on the hot path.
    s.worker_draining.load(Ordering::Relaxed)
}

fn bump_push_seq(s: &Shared) -> u64 {
    // ORD: sequence numbers stamp records for post-hoc ordering.
    s.push_seq.fetch_add(1, Ordering::Relaxed)
}

fn plain_seq_counter_is_fine(s: &Shared) -> u64 {
    // ORD: `seq` without the underscore pattern is a plain counter.
    s.seq.fetch_add(1, Ordering::Relaxed)
}
