//@ path: crates/fixture/src/cycle_a.rs
//@ group: lock-cycle
//! One half of a cross-file lock-order cycle: this file acquires
//! `registry` then `journal`; its sibling (`lockgraph_cycle_b.rs`)
//! acquires them in the opposite order. Either order alone is fine —
//! only the *pair* deadlocks, which is exactly what a per-file lint
//! cannot see.

struct State {
    registry: Mutex<u32>,
    journal: Mutex<u32>,
}

fn checkpoint(s: &State) {
    let reg = s.registry.lock();
    let jrn = s.journal.lock();
    let _ = (reg, jrn);
}
