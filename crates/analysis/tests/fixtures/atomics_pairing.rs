//@ path: crates/fixture/src/lib.rs
//! `atomic-pairing`: a Release store whose field has no Acquire-side
//! load anywhere in the crate orders nothing. The `ready` flag below is
//! published but never acquired (finding); `handoff` is properly paired
//! (clean); an AcqRel RMW self-pairs only if something loads it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn publish(ready: &AtomicBool) {
    // ORD: Release intends to publish initialization — but see pairing.
    ready.store(true, Ordering::Release);
}

fn publish_handoff(h: &Handoff) {
    // ORD: Release publishes the buffer write below.
    h.handoff.store(1, Ordering::Release);
}

fn consume_handoff(h: &Handoff) -> u64 {
    // ORD: Acquire pairs with the Release store in publish_handoff.
    h.handoff.load(Ordering::Acquire)
}
