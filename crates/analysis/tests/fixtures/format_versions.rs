//@ path: crates/fixture/src/serialize.rs
//! `format-versions`: a v2 magic with the v1 parser arm deleted, and a
//! version constant nothing ever consults.

const MAGIC_V2: &[u8; 8] = b"PAGNN\0\0\x02";
const HEADER_V1: &str = "FIXTURE-JOURNAL v1";

fn parse(m: &[u8]) -> bool {
    m == MAGIC_V2
}
