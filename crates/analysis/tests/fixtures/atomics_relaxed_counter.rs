//@ path: crates/fixture/src/lib.rs
//! Atomics negatives: `Relaxed` counter bumps under `// ORD:` are the
//! sanctioned telemetry pattern — no pairing requirement (Relaxed is
//! neither side) and no signal-field match.

use std::sync::atomic::{AtomicU64, Ordering};

fn count_hit(c: &Counters) {
    // ORD: monotonic counter; readers only need eventual visibility.
    c.hits.fetch_add(1, Ordering::Relaxed);
}

fn read_hits(c: &Counters) -> u64 {
    // ORD: snapshot read; a torn rate is acceptable for telemetry.
    c.hits.load(Ordering::Relaxed)
}

fn seqcst_flag_roundtrip(c: &Counters) -> bool {
    // ORD: SeqCst store+load on the same field self-pairs.
    c.armed.store(true, Ordering::SeqCst);
    // ORD: SeqCst load side of the same flag.
    c.armed.load(Ordering::SeqCst)
}
