//@ path: crates/fixture/src/lib.rs
//@ lock-order: fixture:q.inner;fixture:q.outer;fixture:q.ghost
//! `lock-order`: the committed canonical order (supplied via the
//! directive above) puts `inner` before `outer`, but this file acquires
//! `inner` while holding `outer` — a contradiction, reported at the
//! inner acquisition. The order file also lists a `ghost` lock that is
//! never acquired anywhere: a stale entry, reported at the order file's
//! own line.

struct Queues {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
}

fn requeue(q: &Queues) {
    let o = q.outer.lock();
    let i = q.inner.lock();
    let _ = (o, i);
}
