//@ path: crates/fixture/src/lib.rs
//! `guard-blocking` negatives: guards dropped (explicitly or by scope)
//! before the blocking call, and the sanctioned condvar protocol.
//! (parking_lot-style lock API: no unwrap on acquisition.)

use std::sync::mpsc::Receiver;

fn guard_dropped_first(m: &Mutex<u32>, rx: &Receiver<u32>) -> u32 {
    let guard = m.lock();
    drop(guard);
    rx.recv().unwrap_or(0)
}

fn guard_scoped_out(m: &Mutex<u32>, rx: &Receiver<u32>) -> u32 {
    {
        let guard = m.lock();
        let _ = guard;
    }
    rx.recv().unwrap_or(0)
}

fn condvar_wait_on_own_guard(m: &Mutex<bool>, cv: &Condvar) {
    let mut ready = m.lock();
    while !*ready {
        ready = cv.wait(ready);
    }
}

fn statement_temporary_then_block(m: &Mutex<u32>, rx: &Receiver<u32>) -> u32 {
    *m.lock() += 1;
    rx.recv().unwrap_or(0)
}
