//@ path: crates/fixture/src/lib.rs
//! `lock-scope`: guards held across blocking calls (warn severity).

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

fn guard_across_recv(m: &Mutex<u32>, rx: &Receiver<u32>) -> u32 {
    let guard = m.lock();
    let v = rx.recv();
    drop(guard);
    v.unwrap_or(0)
}

fn guard_dropped_first(m: &Mutex<u32>, rx: &Receiver<u32>) -> u32 {
    let guard = m.lock();
    drop(guard);
    rx.recv().unwrap_or(0)
}
