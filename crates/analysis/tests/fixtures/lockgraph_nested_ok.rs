//@ path: crates/fixture/src/lib.rs
//! Lock-order negative: nested acquisition in one consistent order from
//! two call sites is an edge, not a cycle — the graph stays acyclic and
//! the run stays clean (no committed order file is supplied here, so
//! the canonical order is computed, not checked).

struct Shared {
    lanes: Mutex<u32>,
    stats: Mutex<u32>,
}

fn push(s: &Shared) {
    let lanes = s.lanes.lock();
    {
        let stats = s.stats.lock();
        let _ = (&lanes, stats);
    }
}

fn drain(s: &Shared) {
    let lanes = s.lanes.lock();
    let stats = s.stats.lock();
    let _ = (lanes, stats);
}
