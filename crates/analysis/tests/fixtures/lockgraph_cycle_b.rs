//@ path: crates/fixture/src/cycle_b.rs
//@ group: lock-cycle
//! The other half of the cross-file cycle: `journal` before `registry`,
//! opposite of `lockgraph_cycle_a.rs`.

struct State {
    registry: Mutex<u32>,
    journal: Mutex<u32>,
}

fn replay(s: &State) {
    let jrn = s.journal.lock();
    let reg = s.registry.lock();
    let _ = (jrn, reg);
}
