//@ path: crates/fixture/src/lib.rs
//! `no-stdout-in-lib`: direct printing from library code.

fn chatty() {
    println!("library code must not print");
    eprintln!("not to stderr either");
}

fn string_lookalike() -> &'static str {
    "println!(\"inside a string\")"
}

fn suppressed() {
    // LINT-ALLOW: no-stdout-in-lib fixture demonstrates suppression
    eprintln!("sanctioned fallback");
}

#[cfg(test)]
mod tests {
    fn debug_print() {
        println!("tests may print freely");
    }
}
