//@ path: crates/fixture/src/lib.rs
//! Tricky `no-unwrap-in-lib` cases: real violations mixed with lookalikes
//! inside strings, block comments, and nested `#[cfg(test)]` regions.

fn real_violation(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn lookalike_in_string() -> &'static str {
    "calling .unwrap() here would panic, says this string"
}

/* A block comment mentioning x.unwrap() and even
   .expect("nothing") must never fire,
   /* not even nested */ across lines. */
fn after_block_comment() {}

fn suppressed(x: Option<u32>) -> u32 {
    // LINT-ALLOW: no-unwrap-in-lib fixture demonstrates suppression
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[cfg(test)]
    mod nested {
        fn deep(x: Option<u32>) -> u32 {
            x.unwrap()
        }
    }

    fn shallow(y: Option<u32>) -> u32 {
        y.expect("fine in tests")
    }
}

fn after_test_mod(z: Option<u8>) -> u8 {
    z.expect("the test region ended above")
}
