//@ path: crates/fixture/src/lib.rs
//@ ci: assert rec["schema_version"] == 2, rec;assert first["schema_version"] == 3
//! `telemetry-schema-version`: the constant says 2, one CI validator
//! pins 2, the other pins 3 — the drifted validator is a finding at the
//! constant's declaration (naming the ci.yml line).

pub const JSONL_SCHEMA_VERSION: u64 = 2;

pub fn record_schema_version(rec: &Record) -> u64 {
    rec.u64_field("schema_version").unwrap_or(1)
}

pub fn stamp(w: &mut Writer) {
    w.field_u64("schema_version", JSONL_SCHEMA_VERSION);
}
