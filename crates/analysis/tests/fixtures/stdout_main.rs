//@ path: src/main.rs
//! The CLI binary is exempt from `no-stdout-in-lib`.

fn main() {
    println!("binaries print; that is their job");
}
