//@ path: crates/core/src/dcgen.rs
//! `determinism`: wall clocks and hash-order iteration in a deterministic
//! module (the fixture borrows dcgen.rs's path to opt in).

use std::collections::HashMap;
use std::time::Instant;

fn bare_clock() -> Instant {
    Instant::now()
}

fn justified_clock() -> Instant {
    // DET: telemetry timing only; never feeds generation.
    Instant::now()
}

fn hash_iteration() -> f64 {
    let quotas: HashMap<u32, f64> = HashMap::new();
    let mut total = 0.0;
    for (_, q) in quotas.iter() {
        total += q;
    }
    total
}

fn sorted_is_fine(totals: std::collections::BTreeMap<u32, f64>) -> f64 {
    totals.values().sum()
}
