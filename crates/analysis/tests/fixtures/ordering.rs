//@ path: crates/fixture/src/lib.rs
//! `ordering-discipline`: relaxed atomics need an `// ORD:` comment.

use std::sync::atomic::{AtomicU64, Ordering};

fn bare_relaxed(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

fn justified_same_line(c: &AtomicU64) {
    c.store(1, Ordering::Release); // ORD: publishes the init flag
}

fn justified_block_above(c: &AtomicU64) -> u64 {
    // ORD: pairs with the Release store above; later reads see the
    // initialized value.
    c.load(Ordering::Acquire)
}

fn seqcst_needs_nothing(c: &AtomicU64) -> u64 {
    c.load(Ordering::SeqCst)
}

fn cmp_ordering_is_not_atomic(a: u32, b: u32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Equal
}
