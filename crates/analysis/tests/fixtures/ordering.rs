//@ path: crates/fixture/src/lib.rs
//! `ordering-discipline`: explicit atomic orderings — including
//! `SeqCst` — need an `// ORD:` comment.

use std::sync::atomic::{AtomicU64, Ordering};

fn bare_relaxed(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

fn justified_same_line(c: &AtomicU64) {
    c.store(1, Ordering::Release); // ORD: publishes the init flag
}

fn justified_block_above(c: &AtomicU64) -> u64 {
    // ORD: pairs with the Release store above; later reads see the
    // initialized value.
    c.load(Ordering::Acquire)
}

fn bare_seqcst(c: &AtomicU64) -> u64 {
    c.load(Ordering::SeqCst)
}

fn justified_seqcst(c: &AtomicU64) {
    // ORD: SeqCst — this flag participates in a cross-field protocol.
    c.store(2, Ordering::SeqCst);
}

fn cmp_ordering_is_not_atomic(a: u32, b: u32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Equal
}
