//! Guard-scope dataflow: tracks Mutex/RwLock guard bindings from their
//! acquisition site to `drop(guard)` or end of scope, names the lock they
//! hold by `struct.field` path, and flags blocking operations performed
//! while a guard is live (`guard-blocking`). The same scan feeds the
//! cross-file lock-order graph in [`crate::lockgraph`].
//!
//! This is still a lexical analysis — no types, no HIR — so the scanner
//! leans on the workspace's own conventions:
//!
//! * guards come from `.lock()` / `.try_lock()` / `.read()` / `.write()`
//!   method calls with empty argument lists, or from the poison-tolerant
//!   `lock(&path)` helper functions in `pool.rs` / `queue.rs` / `ring.rs`;
//! * a lock is named by the last two components of its (alias-resolved)
//!   receiver path — `self.shared.state` and `shared.state` both become
//!   `shared.state` — and a bare `self.field` is qualified by the
//!   enclosing `impl` type (`ThreadPool.submit`);
//! * stdio handles (`stdout.lock()`) and generic `&Mutex` function
//!   parameters are not locks and produce no acquisition.

use crate::lexer::{impl_types, FileKind, SourceFile};
use crate::lints::{finding, inline_allowed, token_position, Finding, Severity};

/// Lint name for blocking calls under a live guard.
pub const GUARD_BLOCKING: &str = "guard-blocking";

/// How a guard was acquired. `TryLock` never blocks on acquisition but
/// holds the lock all the same once it succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqKind {
    /// `.lock()` or the `lock(&…)` helper.
    Lock,
    /// `.try_lock()`.
    TryLock,
    /// `.read()` (shared).
    Read,
    /// `.write()` (exclusive).
    Write,
}

/// One lock acquisition with its guard's live range.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// 0-based line of the acquisition site.
    pub line: usize,
    /// Binding name when `let`-bound; `None` for statement temporaries
    /// whose guard dies at the end of the statement.
    pub guard: Option<String>,
    /// Canonical lock name (not yet crate-qualified), or `None` when the
    /// receiver does not name a lock (stdio, `&Mutex` parameters).
    pub lock: Option<String>,
    /// Raw receiver text as written (`self.shared.state`, `m`, …).
    pub receiver: String,
    /// 0-based last line on which the guard is live (inclusive).
    pub end: usize,
    /// Acquisition method.
    pub kind: AcqKind,
    /// True when the site is inside `#[cfg(test)]` code.
    pub is_test: bool,
}

/// A guard binding that is still open during the scan.
struct Open {
    /// Index into the result vector.
    acq: usize,
    /// Brace depth at the acquisition site; the guard closes when depth
    /// drops below this.
    depth: i64,
    /// Binding name (for `drop(name)` detection).
    name: String,
    /// `if let` / `while let` scrutinee guards die with the block the
    /// line opens (depth returning *to* `depth`), not the enclosing
    /// scope — `if let Some(m) = shard.read()….get(k) { … }` followed by
    /// `shard.write()` is sequential, not nested.
    block_scoped: bool,
}

/// An acquisition site found on a single line of code.
struct Site {
    /// Byte position of the method/helper token.
    pos: usize,
    kind: AcqKind,
    /// Raw receiver text (`self.shared.state`, `&self.shards[shard]`, …).
    receiver: String,
}

/// Scans `file` and returns every lock acquisition with resolved lock
/// names and guard live ranges. The scan is brace-depth-accurate within a
/// line, so `let Ok(g) = m.try_lock() else { … };` does not close `g` at
/// the `else` block's brace.
#[must_use]
pub fn scan(file: &SourceFile) -> Vec<Acquisition> {
    let impls = impl_types(&file.lines);
    let file_stem = file
        .path
        .rsplit('/')
        .next()
        .unwrap_or(&file.path)
        .trim_end_matches(".rs")
        .to_string();
    let mut aliases: Vec<(String, String)> = Vec::new();
    let mut result: Vec<Acquisition> = Vec::new();
    let mut open: Vec<Open> = Vec::new();
    let mut depth: i64 = 0;
    // Most recent `fn` signature text, for `&Mutex` parameter detection.
    let mut fn_sig = String::new();
    let mut fn_sig_open = false;

    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        if let Some(p) = token_position(code, "fn ") {
            fn_sig = code[p..].to_string();
            fn_sig_open = !code[p..].contains('{');
        } else if fn_sig_open {
            fn_sig.push(' ');
            fn_sig.push_str(code);
            if code.contains('{') {
                fn_sig_open = false;
            }
        }
        record_aliases(code, &mut aliases);

        // `drop(name)` ends a guard's live range on this line.
        open.retain(|o| {
            if contains_call(code, "drop", &o.name) || contains_call(code, "mem::drop", &o.name) {
                result[o.acq].end = idx;
                false
            } else {
                true
            }
        });

        let sites = find_sites(code);
        let mut site_iter = sites.into_iter().peekable();
        for (at, ch) in code.char_indices() {
            // Register sites we have passed, at the current depth.
            while site_iter.peek().is_some_and(|s| s.pos <= at) {
                let site = match site_iter.next() {
                    Some(s) => s,
                    None => break,
                };
                register_site(
                    file,
                    idx,
                    &site,
                    depth,
                    &aliases,
                    &fn_sig,
                    &impls,
                    &file_stem,
                    &mut result,
                    &mut open,
                );
            }
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    open.retain(|o| {
                        if depth < o.depth || (o.block_scoped && depth == o.depth) {
                            result[o.acq].end = idx;
                            false
                        } else {
                            true
                        }
                    });
                }
                _ => {}
            }
        }
        for site in site_iter {
            register_site(
                file,
                idx,
                &site,
                depth,
                &aliases,
                &fn_sig,
                &impls,
                &file_stem,
                &mut result,
                &mut open,
            );
        }
        for o in &open {
            result[o.acq].end = idx;
        }
    }
    result
}

/// Registers one acquisition site: resolves the lock name, extracts the
/// guard binding, and opens the guard's live range.
#[allow(clippy::too_many_arguments)]
fn register_site(
    file: &SourceFile,
    idx: usize,
    site: &Site,
    depth: i64,
    aliases: &[(String, String)],
    fn_sig: &str,
    impls: &[Option<String>],
    file_stem: &str,
    result: &mut Vec<Acquisition>,
    open: &mut Vec<Open>,
) {
    let code = &file.lines[idx].code;
    let lock = lock_name(
        &site.receiver,
        impls[idx].as_deref(),
        aliases,
        fn_sig,
        file_stem,
    );
    let guard = guard_binding(code, site.pos);
    let acq = result.len();
    result.push(Acquisition {
        line: idx,
        guard: guard.clone(),
        lock,
        receiver: site.receiver.clone(),
        end: idx,
        kind: site.kind,
        is_test: file.lines[idx].is_test,
    });
    if let Some(name) = guard {
        let block_scoped = [
            token_position(code, "if let"),
            token_position(code, "while let"),
        ]
        .iter()
        .flatten()
        .any(|&p| p < site.pos);
        open.push(Open {
            acq,
            depth,
            name,
            block_scoped,
        });
    }
}

/// True when `code` calls `func(name)` (optionally `func(&name)`).
fn contains_call(code: &str, func: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(p) = code[from..].find(func) {
        let pos = from + p;
        let boundary = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.');
        if boundary {
            let rest = code[pos + func.len()..].trim_start();
            if let Some(args) = rest.strip_prefix('(') {
                let arg = args.trim_start().trim_start_matches('&').trim_start();
                if arg
                    .strip_prefix(name)
                    .is_some_and(|r| r.starts_with(')') || r.trim_start().starts_with(')'))
                {
                    return true;
                }
            }
        }
        from = pos + func.len();
    }
    false
}

/// Finds every acquisition site on one line of code, sorted by position.
fn find_sites(code: &str) -> Vec<Site> {
    let mut sites: Vec<Site> = Vec::new();
    for (pat, kind) in [
        (".lock()", AcqKind::Lock),
        (".try_lock()", AcqKind::TryLock),
        (".read()", AcqKind::Read),
        (".write()", AcqKind::Write),
    ] {
        let mut from = 0;
        while let Some(p) = code[from..].find(pat) {
            let pos = from + p;
            from = pos + pat.len();
            // `.try_lock()` also matches the `.lock()` scan at its inner
            // `.lock()`; reject method hits preceded by an ident char
            // continuation (`try_` before `lock` is handled because the
            // match includes the leading dot — `_try.lock()` cannot
            // occur, but `.try_lock()` contains no inner `.lock()`).
            if let Some(receiver) = receiver_before(code, pos) {
                sites.push(Site {
                    pos,
                    kind,
                    receiver,
                });
            }
        }
    }
    // Poison-tolerant helper form: `lock(&path)` not preceded by `.` and
    // not a definition (`fn lock`).
    let mut from = 0;
    while let Some(p) = code[from..].find("lock(") {
        let pos = from + p;
        from = pos + 5;
        let before = &code[..pos];
        let prev = before.chars().next_back();
        if prev.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.') {
            continue; // method call or longer identifier
        }
        if before.trim_end().ends_with("fn") {
            continue; // the helper's own definition
        }
        let arg: String = code[pos + 5..]
            .trim_start()
            .trim_start_matches('&')
            .trim_start_matches("mut ")
            .chars()
            .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':' | '[' | ']'))
            .collect();
        if arg.is_empty() {
            continue;
        }
        sites.push(Site {
            pos,
            kind: AcqKind::Lock,
            receiver: arg,
        });
    }
    sites.sort_by_key(|s| s.pos);
    sites
}

/// Extracts the receiver path ending just before the `.` at `pos`.
/// Returns `None` for call-result receivers (`io::stdout().lock()`).
fn receiver_before(code: &str, pos: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = pos;
    while j > 0 {
        let c = bytes[j - 1] as char;
        if c.is_alphanumeric() || matches!(c, '_' | '.' | ':') {
            j -= 1;
        } else if c == ']' {
            // Skip a balanced index expression.
            let mut depth = 0usize;
            let mut k = j;
            loop {
                if k == 0 {
                    return None;
                }
                k -= 1;
                match bytes[k] as char {
                    ']' => depth += 1,
                    '[' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            j = k;
        } else {
            break;
        }
    }
    let recv = code[j..pos].trim_start_matches('.');
    if recv.is_empty() || recv.ends_with(')') {
        return None;
    }
    if j > 0 && bytes[j - 1] as char == ')' {
        return None; // result of a call: `io::stdout().lock()`
    }
    Some(recv.to_string())
}

/// Records reference aliases introduced on this line:
/// `let x = &path;`, `for x in &path {`, and `let x = self.method(…)`.
fn record_aliases(code: &str, aliases: &mut Vec<(String, String)>) {
    let push = |aliases: &mut Vec<(String, String)>, name: String, target: String| {
        if name.is_empty() || target.is_empty() || name == target {
            return;
        }
        aliases.retain(|(n, _)| *n != name);
        aliases.push((name, target));
    };
    if let Some(p) = token_position(code, "for ") {
        let rest = &code[p + 4..];
        if let Some(inpos) = rest.find(" in ") {
            let name = rest[..inpos].trim();
            if name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                let iterated = rest[inpos + 4..]
                    .trim_start()
                    .trim_start_matches('&')
                    .trim_start_matches("mut ");
                let target = path_prefix(iterated);
                push(aliases, name.to_string(), target);
            }
        }
        return;
    }
    let Some(p) = token_position(code, "let ") else {
        return;
    };
    let rest = code[p + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return;
    }
    let Some(eq) = rest.find('=') else {
        return;
    };
    if rest[..eq].contains('(') || rest[..eq].contains(':') {
        return; // destructuring pattern or type ascription — not an alias
    }
    let rhs = rest[eq + 1..].trim_start();
    if let Some(referenced) = rhs.strip_prefix('&') {
        let target = path_prefix(referenced.trim_start_matches("mut ").trim_start());
        push(aliases, name, target);
    } else if rhs.starts_with("self.") {
        // `let shard = self.shard(name);` — treat the accessor result as
        // the path `self.shard` so the lock it returns gets a real name.
        let target = path_prefix(rhs);
        push(aliases, name, target);
    }
}

/// Leading path of an expression: identifiers, `.`, `::`, with index
/// brackets and trailing `.iter()`-style calls stripped.
fn path_prefix(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() || matches!(c, '_' | '.' | ':') {
            out.push(c);
        } else {
            break;
        }
    }
    // `self.shards.iter` → `self.shards`; a trailing call segment is not
    // part of the lock path.
    for call in [".iter", ".iter_mut", ".as_ref", ".as_mut"] {
        if let Some(stripped) = out.strip_suffix(call) {
            out = stripped.to_string();
        }
    }
    out.trim_end_matches('.').to_string()
}

/// Resolves a receiver path to a canonical lock name, or `None` when the
/// receiver is not a lock we track (stdio handles, `&Mutex` parameters).
fn lock_name(
    receiver: &str,
    impl_ty: Option<&str>,
    aliases: &[(String, String)],
    fn_sig: &str,
    file_stem: &str,
) -> Option<String> {
    // Drop index expressions wholesale: `self.shards[shard]` names the
    // `shards` field, not a `shardsshard` mashup.
    let mut cleaned = String::new();
    let mut bracket = 0usize;
    for c in receiver.chars() {
        match c {
            '[' => bracket += 1,
            ']' => bracket = bracket.saturating_sub(1),
            _ if bracket == 0 => cleaned.push(c),
            _ => {}
        }
    }
    let mut comps: Vec<String> = cleaned
        .split('.')
        .map(|c| c.rsplit("::").next().unwrap_or(c).to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if comps.is_empty() {
        return None;
    }
    // Resolve the head through the alias map (bounded, cycle-safe).
    for _ in 0..4 {
        let head = comps[0].clone();
        let Some((_, target)) = aliases.iter().rev().find(|(n, _)| *n == head) else {
            break;
        };
        let mut head_comps: Vec<String> = target
            .split('.')
            .map(|c| c.rsplit("::").next().unwrap_or(c).to_string())
            .filter(|c| !c.is_empty())
            .collect();
        if head_comps.is_empty() || head_comps[0] == head {
            break;
        }
        head_comps.extend(comps.drain(1..));
        comps = head_comps;
    }
    let self_rooted = comps[0] == "self";
    if self_rooted {
        comps.remove(0);
    }
    if comps.is_empty() {
        return None;
    }
    if comps.len() == 1 {
        let c = &comps[0];
        if matches!(c.as_str(), "stdout" | "stderr" | "stdin") {
            return None;
        }
        if !self_rooted && is_lock_param(fn_sig, c) {
            return None; // generic forwarding helper: `fn lock<T>(m: &Mutex<T>)`
        }
        // `self.field` is owned by the impl type; an unresolvable local
        // falls back to the file stem so distinct files never collide.
        let owner = if self_rooted {
            impl_ty.unwrap_or(file_stem)
        } else {
            file_stem
        };
        return Some(format!("{owner}.{c}"));
    }
    let n = comps.len();
    Some(format!("{}.{}", comps[n - 2], comps[n - 1]))
}

/// True when `fn_sig` declares `name` as a `&Mutex`/`&RwLock` parameter.
fn is_lock_param(fn_sig: &str, name: &str) -> bool {
    for pat in [
        format!("{name}: &Mutex"),
        format!("{name}: &std::sync::Mutex"),
        format!("{name}: &RwLock"),
        format!("{name}: &std::sync::RwLock"),
    ] {
        if fn_sig.contains(&pat) {
            return true;
        }
    }
    false
}

/// Extracts the guard binding name for an acquisition at `pos`, walking
/// back to the nearest `let` on the same line. Handles `let [mut] g`,
/// `let Ok(g)` / `let Some(mut g)` (incl. `if let` / `while let`), and
/// treats a bare `_` as a temporary (the guard drops immediately).
fn guard_binding(code: &str, pos: usize) -> Option<String> {
    let before = &code[..pos];
    let let_pos = find_last_token(before, "let ")?;
    let pat = before[let_pos + 4..].split('=').next()?.trim();
    if pat.is_empty() {
        return None;
    }
    let inner = match pat.find('(') {
        Some(open) => {
            let close = pat.rfind(')')?;
            if close <= open {
                return None;
            }
            pat[open + 1..close].trim()
        }
        None => pat,
    };
    if inner.contains(',') {
        return None; // tuple pattern — not a simple guard binding
    }
    let inner = inner.strip_prefix("mut ").unwrap_or(inner).trim();
    let name: String = inner
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" || name.chars().next().is_some_and(char::is_uppercase) {
        return None;
    }
    Some(name)
}

/// Last token-boundary occurrence of `pat` in `code`.
fn find_last_token(code: &str, pat: &str) -> Option<usize> {
    let mut found = None;
    let mut from = 0;
    while let Some(p) = token_position(&code[from..], pat) {
        found = Some(from + p);
        from = from + p + 1;
    }
    found
}

/// Condvar wait calls: exempt when the wait's argument mentions the guard
/// itself (the protocol releases that lock while waiting).
const WAIT_CALLS: &[&str] = &[
    ".wait(",
    ".wait_while(",
    ".wait_for(",
    ".wait_timeout(",
    ".wait_timeout_while(",
    ".wait_timeout_ms(",
];

/// Blocking operations that must not run under a live guard. Acquiring
/// *another* lock is deliberately absent: nested acquisition is the
/// lock-order graph's domain, not this lint's.
const BLOCKING_CALLS: &[&str] = &[
    ".join()",
    ".recv()",
    ".recv_timeout(",
    ".recv_deadline(",
    "thread::sleep(",
    ".accept()",
    "TcpStream::connect(",
    ".read_line(",
    ".read_to_string(",
    ".read_to_end(",
    ".read_exact(",
    ".write_all(",
    ".flush()",
    ".sync_all(",
    "File::open(",
    "File::create(",
    "fs::read(",
    "fs::read_to_string(",
    "fs::write(",
    "fs::copy(",
    "fs::rename(",
];

/// `guard-blocking`: a blocking operation while a Mutex/RwLock guard is
/// live stalls every other user of that lock. Deliberate sites (a sink
/// serializing writes under its own lock) carry
/// `// LINT-ALLOW: guard-blocking <why>`.
pub fn guard_blocking(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind == FileKind::TestOnly {
        return;
    }
    for acq in scan(file) {
        // Stdio handle "locks" serialize console output; holding one
        // across a write is the point. Everything else — including
        // generic `&Mutex` parameters the lock graph cannot name — is a
        // real lock.
        let stdio = acq
            .receiver
            .split('.')
            .any(|c| matches!(c, "stdout" | "stderr" | "stdin"));
        if acq.is_test || stdio {
            continue;
        }
        let Some(guard) = acq.guard.as_deref() else {
            continue;
        };
        'lines: for j in acq.line + 1..=acq.end.min(file.lines.len() - 1) {
            let code = &file.lines[j].code;
            for pat in WAIT_CALLS {
                if let Some(p) = token_position(code, pat) {
                    let args = &code[p + pat.len()..];
                    if token_position(args, guard).is_some() {
                        continue; // condvar waiting on this very guard
                    }
                    report(file, &acq, guard, pat, j, out);
                    break 'lines;
                }
            }
            for pat in BLOCKING_CALLS {
                if contains_blocking(code, pat) {
                    report(file, &acq, guard, pat, j, out);
                    break 'lines;
                }
            }
        }
    }
}

/// Token-boundary blocking-call match.
fn contains_blocking(code: &str, pat: &str) -> bool {
    token_position(code, pat).is_some()
}

fn report(
    file: &SourceFile,
    acq: &Acquisition,
    guard: &str,
    call: &str,
    at: usize,
    out: &mut Vec<Finding>,
) {
    if inline_allowed(file, acq.line, GUARD_BLOCKING) || inline_allowed(file, at, GUARD_BLOCKING) {
        return;
    }
    let lock = acq.lock.as_deref().unwrap_or(&acq.receiver);
    out.push(finding(
        GUARD_BLOCKING,
        file,
        acq.line,
        format!(
            "guard `{guard}` (lock `{lock}`) held across blocking call `{}` on line {}; drop the guard first or annotate `// LINT-ALLOW: guard-blocking <why>`",
            call.trim_end_matches('(').trim_end_matches("()"),
            at + 1
        ),
        Severity::Deny,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn scan_src(src: &str) -> Vec<Acquisition> {
        scan(&SourceFile::lex("crates/demo/src/lib.rs", src))
    }

    fn blocking_on(src: &str) -> Vec<Finding> {
        let file = SourceFile::lex("crates/demo/src/lib.rs", src);
        let mut out = Vec::new();
        guard_blocking(&file, &mut out);
        out
    }

    #[test]
    fn names_self_field_by_impl_type() {
        let src = "struct Pool { submit: Mutex<()> }\nimpl Pool {\n    fn run(&self) {\n        let g = self.submit.lock();\n    }\n}";
        let acqs = scan_src(src);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].lock.as_deref(), Some("Pool.submit"));
        assert_eq!(acqs[0].guard.as_deref(), Some("g"));
    }

    #[test]
    fn unifies_self_and_alias_paths() {
        let src = "impl P {\n    fn a(&self) { let g = self.shared.state.lock(); }\n}\nfn worker(shared: &Shared) {\n    let g = shared.state.lock();\n}";
        let acqs = scan_src(src);
        assert_eq!(acqs.len(), 2);
        assert_eq!(acqs[0].lock, acqs[1].lock);
        assert_eq!(acqs[0].lock.as_deref(), Some("shared.state"));
    }

    #[test]
    fn helper_form_and_alias_resolution() {
        let src = "impl Ring {\n    fn snapshot(&self) {\n        for shard in &self.shards {\n            let g = lock(shard);\n        }\n    }\n}";
        let acqs = scan_src(src);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].lock.as_deref(), Some("Ring.shards"));
    }

    #[test]
    fn mutex_param_and_stdio_are_not_locks() {
        let src = "fn lock<T>(m: &Mutex<T>) -> MutexGuard<T> {\n    m.lock().unwrap_or_else(PoisonError::into_inner)\n}\nfn p() { let mut o = std::io::stdout().lock(); }\nfn q(stdout: S) { let g = stdout.lock(); }";
        let acqs = scan_src(src);
        assert!(acqs.iter().all(|a| a.lock.is_none()), "{acqs:?}");
    }

    #[test]
    fn let_else_does_not_close_guard_early() {
        let src = "impl P {\n    fn run(&self) {\n        let Ok(_submit) = self.submit.try_lock() else {\n            return;\n        };\n        work();\n        more();\n    }\n}";
        let acqs = scan_src(src);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].guard.as_deref(), Some("_submit"));
        assert_eq!(acqs[0].kind, AcqKind::TryLock);
        // Live until the closing brace of `run`, line 8 (0-based 7).
        assert!(acqs[0].end >= 6, "{acqs:?}");
    }

    #[test]
    fn drop_ends_the_live_range() {
        let src =
            "fn f(m: M) {\n    let g = m.q.lock();\n    g.push(1);\n    drop(g);\n    slow();\n}";
        let acqs = scan_src(src);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].end, 3);
    }

    #[test]
    fn blocking_under_guard_is_flagged() {
        let src = "fn f(s: &S) {\n    let g = s.inner.lock();\n    rx.recv();\n}";
        let hits = blocking_on(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lint, GUARD_BLOCKING);
        assert_eq!(hits[0].line, 2);
        assert!(hits[0].message.contains("inner"), "{}", hits[0].message);
    }

    #[test]
    fn drop_before_blocking_is_clean() {
        let src = "fn f(s: &S) {\n    let g = s.inner.lock();\n    drop(g);\n    rx.recv();\n}";
        assert!(blocking_on(src).is_empty());
    }

    #[test]
    fn condvar_wait_on_same_guard_is_exempt() {
        let src = "fn f(s: &S) {\n    let mut g = s.state.lock();\n    while !g.done {\n        g = s.cv.wait(g);\n    }\n}";
        assert!(blocking_on(src).is_empty());
        let other = "fn f(s: &S) {\n    let mut g = s.state.lock();\n    let mut h = s.other.lock();\n    h = s.cv.wait(h);\n}";
        // `g` is held across a wait on a *different* lock's guard `h`.
        let hits = blocking_on(other);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn lint_allow_suppresses_at_either_end() {
        let src = "fn f(s: &S) {\n    // LINT-ALLOW: guard-blocking sink serializes writes by design\n    let g = s.out.lock();\n    w.flush();\n}";
        assert!(blocking_on(src).is_empty());
    }
}
