//! The repo-specific lints.
//!
//! Each lint is a function from a lexed [`SourceFile`] to findings. All of
//! them work on the *code* channel (comments stripped, literals blanked),
//! skip `#[cfg(test)]` regions and test-only files, and honour inline
//! justification annotations:
//!
//! * `// ORD: <why>` — justifies a relaxed atomic ordering on that line
//!   (or the comment block directly above it),
//! * `// DET: <why>` — justifies wall-clock use inside a deterministic
//!   module (telemetry timing, deadlines),
//! * `// LINT-ALLOW: <lint-name> <why>` — suppresses any lint by name.
//!
//! Sites that predate the lint and are not worth annotating live in the
//! allowlist file instead (`analysis/allowlist.txt`).

use crate::lexer::{has_annotation, FileKind, SourceFile};

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported, but only fails the run under `--deny-all`.
    Warn,
    /// Fails the run.
    Deny,
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint identifier (e.g. `no-unwrap-in-lib`).
    pub lint: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// The offending source line, trimmed (also the allowlist match key).
    pub snippet: String,
    /// Default severity of the lint that produced this.
    pub severity: Severity,
}

/// Names of every lexical lint, in reporting order.
pub const LINT_NAMES: &[&str] = &[
    "no-unwrap-in-lib",
    "no-stdout-in-lib",
    "ordering-discipline",
    "determinism",
    "guard-blocking",
    "lock-order-cycle",
    "lock-order",
    "atomic-pairing",
    "atomic-signal",
];

/// Modules whose output must be a pure function of their inputs: the
/// D&C-GEN task tree (non-overlap guarantee), the generation schedulers
/// and their shared worker pool (byte-identical output at any worker
/// count; SOPG's exact emission order), the trainer (bit-exact resume),
/// both persistence formats, and the GEMM worker pool plus its kernels
/// (thread-count-invariant results).
const DETERMINISTIC_MODULES: &[&str] = &[
    "crates/core/src/dcgen.rs",
    "crates/core/src/sched/mod.rs",
    "crates/core/src/sched/pool.rs",
    "crates/core/src/sched/dcgen.rs",
    "crates/core/src/sched/sample.rs",
    "crates/core/src/sched/sopg.rs",
    "crates/core/src/inference.rs",
    "crates/core/src/trainer.rs",
    "crates/core/src/journal.rs",
    "crates/core/src/checkpoint.rs",
    "crates/nn/src/pool.rs",
    "crates/nn/src/fast.rs",
];

/// Files allowed to write to stdout/stderr directly: the CLI binary, the
/// telemetry sink (the one sanctioned stderr writer), and the bench crate
/// (its entire purpose is rendering reports to stdout).
fn stdout_exempt(path: &str) -> bool {
    path == "src/main.rs"
        || path == "crates/telemetry/src/trace.rs"
        || path.starts_with("crates/bench/")
}

pub(crate) fn finding(
    lint: &'static str,
    file: &SourceFile,
    idx: usize,
    message: String,
    severity: Severity,
) -> Finding {
    Finding {
        lint,
        path: file.path.clone(),
        line: idx + 1,
        message,
        snippet: file.lines[idx].raw.trim().to_string(),
        severity,
    }
}

/// True when line `idx` carries a `LINT-ALLOW: <lint>` annotation (same
/// line or the comment block above).
pub(crate) fn inline_allowed(file: &SourceFile, idx: usize, lint: &str) -> bool {
    let lines = &file.lines;
    let tagged = |comment: &str| {
        comment
            .split("LINT-ALLOW:")
            .nth(1)
            .is_some_and(|rest| rest.trim_start().starts_with(lint))
    };
    if tagged(&lines[idx].comment) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if !l.code.trim().is_empty() || l.comment.trim().is_empty() {
            return false;
        }
        if tagged(&l.comment) {
            return true;
        }
    }
    false
}

/// Does `code` contain `pat` starting at a non-identifier boundary?
fn contains_token(code: &str, pat: &str) -> bool {
    token_position(code, pat).is_some()
}

pub(crate) fn token_position(code: &str, pat: &str) -> Option<usize> {
    // Patterns starting with `.` (method calls) legitimately follow an
    // identifier; only ident-initial patterns need a left boundary.
    let needs_boundary = pat
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(p) = code[from..].find(pat) {
        let pos = from + p;
        let boundary = !needs_boundary
            || pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return Some(pos);
        }
        from = pos + 1;
    }
    None
}

/// Runs every lexical lint over `file`.
#[must_use]
pub fn run_lints(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    no_unwrap_in_lib(file, &mut out);
    no_stdout_in_lib(file, &mut out);
    ordering_discipline(file, &mut out);
    determinism(file, &mut out);
    crate::guards::guard_blocking(file, &mut out);
    out
}

/// `no-unwrap-in-lib`: library code must surface errors as `Result`, not
/// panic. `.unwrap()` / `.expect(` outside test regions are findings.
fn no_unwrap_in_lib(file: &SourceFile, out: &mut Vec<Finding>) {
    const LINT: &str = "no-unwrap-in-lib";
    if file.kind != FileKind::Library {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let hit = contains_token(&line.code, ".unwrap()") || contains_token(&line.code, ".expect(");
        if hit && !inline_allowed(file, idx, LINT) {
            out.push(finding(
                LINT,
                file,
                idx,
                "`.unwrap()`/`.expect()` in library code; return a Result (CoreError has variants for this) or annotate `// LINT-ALLOW: no-unwrap-in-lib <why>`".into(),
                Severity::Deny,
            ));
        }
    }
}

/// `no-stdout-in-lib`: all user-facing output goes through the telemetry
/// sink (PR 2's routing); only the CLI binary, the sink itself, and the
/// bench report renderers may print directly.
fn no_stdout_in_lib(file: &SourceFile, out: &mut Vec<Finding>) {
    const LINT: &str = "no-stdout-in-lib";
    if file.kind != FileKind::Library || stdout_exempt(&file.path) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let hit = ["println!", "eprintln!", "print!", "eprint!"]
            .iter()
            .any(|m| contains_token(&line.code, m));
        if hit && !inline_allowed(file, idx, LINT) {
            out.push(finding(
                LINT,
                file,
                idx,
                "direct stdout/stderr write in library code; route through the telemetry sink"
                    .into(),
                Severity::Deny,
            ));
        }
    }
}

/// `ordering-discipline`: every atomic ordering — `SeqCst` included —
/// must carry an adjacent `// ORD:` comment saying what the ordering
/// buys. Relaxations need a soundness argument; `SeqCst` needs a reason
/// it isn't hiding one. (`cmp::Ordering` variants like `Equal` never
/// match.) The [`crate::atomics`] audit then cross-checks what the
/// annotations claim: release/acquire pairing per field and no `Relaxed`
/// on signal-pattern fields.
fn ordering_discipline(file: &SourceFile, out: &mut Vec<Finding>) {
    const LINT: &str = "ordering-discipline";
    if file.kind == FileKind::TestOnly {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let hit = [
            "Ordering::Relaxed",
            "Ordering::Acquire",
            "Ordering::Release",
            "Ordering::AcqRel",
            "Ordering::SeqCst",
        ]
        .iter()
        .any(|m| contains_token(&line.code, m));
        if hit && !has_annotation(&file.lines, idx, "ORD:") && !inline_allowed(file, idx, LINT) {
            out.push(finding(
                LINT,
                file,
                idx,
                "atomic ordering without an adjacent `// ORD:` justification".into(),
                Severity::Deny,
            ));
        }
    }
}

/// `determinism`: the deterministic modules must not consult wall clocks,
/// OS randomness, or hash-order iteration. Telemetry timing is fine when
/// annotated `// DET: <why>`.
fn determinism(file: &SourceFile, out: &mut Vec<Finding>) {
    const LINT: &str = "determinism";
    if !DETERMINISTIC_MODULES.contains(&file.path.as_str()) {
        return;
    }
    // Pass 1: names of bindings constructed from HashMap/HashSet.
    let mut hash_vars: Vec<String> = Vec::new();
    for line in &file.lines {
        if line.is_test {
            continue;
        }
        let code = &line.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        if let Some(name) = let_binding_name(code) {
            hash_vars.push(name);
        }
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let code = &line.code;
        let clock = [
            "Instant::now",
            "SystemTime::now",
            "thread_rng",
            "rand::random",
        ]
        .iter()
        .find(|m| contains_token(code, m));
        if let Some(m) = clock {
            if !has_annotation(&file.lines, idx, "DET:") && !inline_allowed(file, idx, LINT) {
                out.push(finding(
                    LINT,
                    file,
                    idx,
                    format!("`{m}` in a deterministic module without a `// DET:` justification"),
                    Severity::Deny,
                ));
                continue;
            }
        }
        for var in &hash_vars {
            let iterated = [".iter()", ".keys()", ".values()", ".into_iter()", ".drain("]
                .iter()
                .any(|suffix| contains_token(code, &format!("{var}{suffix}")))
                || contains_token(code, &format!("in &{var}"))
                || contains_token(code, &format!("in &mut {var}"))
                || (code.contains(" for ") || code.trim_start().starts_with("for "))
                    && contains_token(code, &format!("in {var}"));
            if iterated
                && !has_annotation(&file.lines, idx, "DET:")
                && !inline_allowed(file, idx, LINT)
            {
                out.push(finding(
                    LINT,
                    file,
                    idx,
                    format!("iteration over hash-ordered collection `{var}` in a deterministic module; use BTreeMap/BTreeSet or sort first"),
                    Severity::Deny,
                ));
                break;
            }
        }
    }
}

/// Extracts the bound name from `let [mut] name ... = ...`, if any.
fn let_binding_name(code: &str) -> Option<String> {
    let pos = token_position(code, "let ")?;
    let rest = code[pos + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn lints_on(path: &str, src: &str) -> Vec<Finding> {
        run_lints(&SourceFile::lex(path, src))
    }

    #[test]
    fn unwrap_in_lib_is_flagged_but_not_in_tests_or_strings() {
        let src = "fn f() { x.unwrap(); }\nfn g() { let s = \".unwrap()\"; }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let f: Vec<_> = lints_on("crates/x/src/lib.rs", src)
            .into_iter()
            .filter(|f| f.lint == "no-unwrap-in-lib")
            .collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }";
        assert!(lints_on("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn lint_allow_suppresses() {
        let src =
            "// LINT-ALLOW: no-unwrap-in-lib invariant: len checked above\nfn f() { x.unwrap(); }";
        assert!(lints_on("crates/x/src/lib.rs", src)
            .iter()
            .all(|f| f.lint != "no-unwrap-in-lib"));
    }

    #[test]
    fn stdout_flagged_outside_exempt_files() {
        let src = "fn f() { println!(\"hi\"); }";
        assert_eq!(lints_on("crates/core/src/x.rs", src).len(), 1);
        assert!(lints_on("src/main.rs", src).is_empty());
        assert!(lints_on("crates/bench/src/runs.rs", src).is_empty());
        assert!(lints_on("crates/telemetry/src/trace.rs", src).is_empty());
    }

    #[test]
    fn ordering_needs_ord_comment_and_ignores_cmp() {
        let bad = "fn f() { a.load(Ordering::Relaxed); }";
        assert_eq!(lints_on("crates/x/src/lib.rs", bad).len(), 1);
        let good = "// ORD: counter, no cross-thread happens-before needed\nfn f() { a.load(Ordering::Relaxed); }";
        assert!(lints_on("crates/x/src/lib.rs", good).is_empty());
        // SeqCst needs a justification too — it is often a relaxation
        // postponed, and the pairing audit needs the intent on record.
        let seqcst = "fn f() { a.load(Ordering::SeqCst); }";
        assert_eq!(lints_on("crates/x/src/lib.rs", seqcst).len(), 1);
        let seqcst_ok =
            "// ORD: SeqCst, rare control-path flag; not worth relaxing\nfn f() { a.load(Ordering::SeqCst); }";
        assert!(lints_on("crates/x/src/lib.rs", seqcst_ok).is_empty());
        let cmp = "fn f() -> Ordering { Ordering::Equal }";
        assert!(lints_on("crates/x/src/lib.rs", cmp).is_empty());
    }

    #[test]
    fn determinism_only_guards_listed_modules() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(lints_on("crates/core/src/dcgen.rs", src).len(), 1);
        assert!(lints_on("crates/core/src/model.rs", src).is_empty());
        let annotated = "// DET: telemetry timing only; never feeds generation\nfn f() { let t = Instant::now(); }";
        assert!(lints_on("crates/core/src/dcgen.rs", annotated).is_empty());
    }

    #[test]
    fn determinism_catches_hash_iteration_but_not_membership() {
        let iter = "fn f() { let mut seen = HashSet::new(); for x in &seen { use_(x); } }";
        let hits = lints_on("crates/core/src/journal.rs", iter);
        assert_eq!(hits.len(), 1, "{hits:?}");
        let member =
            "fn f() { let mut seen = HashSet::new(); seen.insert(1); if seen.contains(&1) {} }";
        assert!(lints_on("crates/core/src/journal.rs", member).is_empty());
    }

    #[test]
    fn guard_blocking_runs_as_part_of_run_lints() {
        // The full dataflow lint lives in crate::guards; run_lints wires
        // it in. Condvar wait on the guard itself is the sanctioned
        // protocol and stays clean.
        let src = "fn f(s: &S) {\n    let mut g = s.state.lock();\n    rx.recv();\n}";
        let hits = lints_on("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lint, "guard-blocking");
        assert_eq!(hits[0].severity, Severity::Deny);
        let handoff = "fn f(s: &S) {\n    let mut g = s.state.lock();\n    g = cv.wait(g);\n}";
        assert!(lints_on("crates/x/src/lib.rs", handoff).is_empty());
    }
}
