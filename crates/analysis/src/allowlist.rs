//! The per-lint allowlist: grandfathered findings that predate a lint.
//!
//! Format (`analysis/allowlist.txt`, one entry per line):
//!
//! ```text
//! # comment
//! <lint-name>\t<path>\t<trimmed source line>
//! ```
//!
//! Entries match on the *content* of the offending line, not its number,
//! so unrelated edits above a site don't invalidate the allowlist. Two
//! identical offending lines in the same file share one entry.
//!
//! Discipline: entries that no longer match anything are *stale* and fail
//! the run — the allowlist only ever shrinks (or is regenerated wholesale
//! with `pagpass analyze --update-allowlist` when a new lint lands).

use std::cell::Cell;
use std::fmt::Write as _;
use std::path::Path;

use crate::lints::Finding;

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Lint this entry silences.
    pub lint: String,
    /// Workspace-relative path.
    pub path: String,
    /// Trimmed text of the allowed line.
    pub text: String,
}

/// A parsed allowlist plus per-entry hit tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<Entry>,
    hits: Vec<Cell<u64>>,
}

impl Allowlist {
    /// Parses allowlist text. Malformed lines are reported as errors so a
    /// typo cannot silently allow nothing.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and content of the first malformed
    /// line.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(lint), Some(path), Some(text)) if !lint.is_empty() && !path.is_empty() => {
                    entries.push(Entry {
                        lint: lint.to_string(),
                        path: path.to_string(),
                        text: text.trim().to_string(),
                    });
                }
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected `<lint>\\t<path>\\t<line text>`, got {line:?}",
                        i + 1
                    ))
                }
            }
        }
        let hits = entries.iter().map(|_| Cell::new(0)).collect();
        Ok(Allowlist { entries, hits })
    }

    /// Loads the allowlist at `path`; a missing file is an empty list.
    ///
    /// # Errors
    ///
    /// Returns I/O failures (other than not-found) and parse errors.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        }
    }

    /// Is `f` covered? Records the hit for staleness accounting.
    #[must_use]
    pub fn covers(&self, f: &Finding) -> bool {
        let mut covered = false;
        for (entry, hit) in self.entries.iter().zip(&self.hits) {
            if entry.lint == f.lint && entry.path == f.path && entry.text == f.snippet {
                hit.set(hit.get() + 1);
                covered = true;
            }
        }
        covered
    }

    /// Entries that matched nothing during this run.
    #[must_use]
    pub fn stale(&self) -> Vec<&Entry> {
        self.entries
            .iter()
            .zip(&self.hits)
            .filter(|(_, hit)| hit.get() == 0)
            .map(|(e, _)| e)
            .collect()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders findings as a fresh allowlist (for `--update-allowlist`).
    #[must_use]
    pub fn render(findings: &[Finding]) -> String {
        let mut entries: Vec<Entry> = findings
            .iter()
            .map(|f| Entry {
                lint: f.lint.to_string(),
                path: f.path.clone(),
                text: f.snippet.clone(),
            })
            .collect();
        entries.sort();
        entries.dedup();
        let mut out = String::from(
            "# pagpass static-analysis allowlist.\n\
             # One grandfathered finding per line: <lint>\\t<path>\\t<trimmed line text>.\n\
             # Matches by line content, so edits elsewhere in the file don't break it.\n\
             # Entries that stop matching are STALE and fail `pagpass analyze`:\n\
             # delete them (or regenerate with `pagpass analyze --update-allowlist`).\n\
             # Prefer fixing the site or annotating it (see README \"Static analysis\")\n\
             # over adding entries here.\n",
        );
        for e in entries {
            let _ = writeln!(out, "{}\t{}\t{}", e.lint, e.path, e.text);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Severity;

    fn f(lint: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            lint,
            path: path.into(),
            line: 1,
            message: String::new(),
            snippet: snippet.into(),
            severity: Severity::Deny,
        }
    }

    #[test]
    fn roundtrip_and_matching() {
        let finding = f(
            "no-unwrap-in-lib",
            "crates/x/src/lib.rs",
            "let y = x.unwrap();",
        );
        let text = Allowlist::render(std::slice::from_ref(&finding));
        let list = Allowlist::parse(&text).unwrap();
        assert_eq!(list.len(), 1);
        assert!(list.covers(&finding));
        assert!(list.stale().is_empty());
        // Different snippet: not covered, entry goes stale.
        let list = Allowlist::parse(&text).unwrap();
        assert!(!list.covers(&f("no-unwrap-in-lib", "crates/x/src/lib.rs", "other();")));
        assert_eq!(list.stale().len(), 1);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Allowlist::parse("no-tabs-here at all\n").is_err());
        assert!(Allowlist::parse("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn one_entry_covers_duplicate_lines() {
        let finding = f("no-unwrap-in-lib", "a.rs", "x.unwrap();");
        let text = Allowlist::render(&[finding.clone(), finding.clone()]);
        let list = Allowlist::parse(&text).unwrap();
        assert_eq!(list.len(), 1);
        assert!(list.covers(&finding));
        assert!(list.covers(&finding));
    }
}
