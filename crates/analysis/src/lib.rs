//! # pagpass-analysis — static analysis for the pagpass workspace
//!
//! PRs 1 and 2 bought hard guarantees — byte-identical resume,
//! non-overlapping D&C-GEN subtasks, CRC'd journals, telemetry-routed
//! output — but nothing *enforced* them: one stray `Instant::now()` in a
//! generation path silently breaks determinism. This crate is the
//! machine-checked discipline: a comment- and string-aware lexer
//! ([`lexer`]), the per-line repo-specific lints ([`lints`]), a
//! concurrency-correctness layer — guard-scope dataflow ([`guards`]),
//! a cross-file lock acquisition-order graph ([`lockgraph`]), and an
//! acquire/release pairing audit ([`atomics`]) — cross-file domain
//! invariant checks ([`invariants`]), and a content-keyed allowlist
//! ([`allowlist`]), wired into `pagpass analyze` and CI.
//!
//! Std-only by design, like `pagpass-telemetry`: the analysis gate must
//! not depend on anything it polices.
//!
//! ```
//! use pagpass_analysis::{analyze_sources, Allowlist, AnalysisInputs};
//!
//! let files = vec![(
//!     "crates/demo/src/lib.rs".to_string(),
//!     "fn f(x: Option<u32>) -> u32 { x.unwrap() }".to_string(),
//! )];
//! let report = analyze_sources(files, &AnalysisInputs::default(), &Allowlist::default());
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].finding.lint, "no-unwrap-in-lib");
//! ```

pub mod allowlist;
pub mod atomics;
pub mod guards;
pub mod invariants;
pub mod lexer;
pub mod lints;
pub mod lockgraph;

use std::path::{Path, PathBuf};

pub use allowlist::{Allowlist, Entry};
pub use lexer::{FileKind, SourceFile};
pub use lints::{Finding, Severity};
pub use lockgraph::LockOrderFile;

/// Non-source inputs to an analysis run. All optional: absent inputs
/// skip the checks that need them.
#[derive(Debug, Default)]
pub struct AnalysisInputs {
    /// README.md text, for the `cli-flags-documented` invariant.
    pub readme: Option<String>,
    /// CI workflow text, for the `telemetry-schema-version` validators.
    pub ci_yaml: Option<String>,
    /// Committed canonical lock order, for the `lock-order` invariant.
    pub lock_order: Option<LockOrderFile>,
}

/// A finding plus its allowlist disposition.
#[derive(Debug, Clone)]
pub struct Disposition {
    /// The underlying finding.
    pub finding: Finding,
    /// True when an allowlist entry covers it (inline-annotated sites
    /// never reach this point — the lints drop them at the source).
    pub allowed: bool,
}

/// The result of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, allowlisted or not, ordered by path then line.
    pub findings: Vec<Disposition>,
    /// Allowlist entries that matched nothing (these fail the run).
    pub stale: Vec<Entry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Canonical lock acquisition order computed from the tree (empty
    /// when the acquisition graph has a cycle).
    pub lock_order: Vec<String>,
}

impl Report {
    /// Findings not covered by the allowlist, at the given strictness.
    #[must_use]
    pub fn active(&self, deny_all: bool) -> Vec<&Disposition> {
        self.findings
            .iter()
            .filter(|d| !d.allowed && (deny_all || d.finding.severity == Severity::Deny))
            .collect()
    }

    /// Count of allowlisted findings.
    #[must_use]
    pub fn allowed_count(&self) -> usize {
        self.findings.iter().filter(|d| d.allowed).count()
    }

    /// True when the run should exit non-zero.
    #[must_use]
    pub fn failed(&self, deny_all: bool) -> bool {
        !self.active(deny_all).is_empty() || !self.stale.is_empty()
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render(&self, deny_all: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.findings {
            if d.allowed {
                continue;
            }
            let f = &d.finding;
            let tag = match f.severity {
                Severity::Deny => "deny",
                Severity::Warn if deny_all => "deny",
                Severity::Warn => "warn",
            };
            let _ = writeln!(
                out,
                "{}:{}: [{}] {} ({})",
                f.path, f.line, f.lint, f.message, tag
            );
            let _ = writeln!(out, "    {}", f.snippet);
        }
        for e in &self.stale {
            let _ = writeln!(
                out,
                "{}: [stale-allowlist] entry for `{}` no longer matches anything — delete it: {}",
                e.path, e.lint, e.text
            );
        }
        let warns = self
            .findings
            .iter()
            .filter(|d| !d.allowed && d.finding.severity == Severity::Warn)
            .count();
        let denied = self.active(deny_all).len();
        let _ = writeln!(
            out,
            "analyze: {} files scanned, {} finding(s) denied, {} warning(s), {} allowlisted site(s), {} stale allowlist entr(ies)",
            self.files_scanned,
            denied,
            if deny_all { 0 } else { warns },
            self.allowed_count(),
            self.stale.len()
        );
        out
    }
}

/// Analyzes in-memory sources: `(workspace-relative path, contents)`.
/// See [`AnalysisInputs`] for the optional non-source inputs.
#[must_use]
pub fn analyze_sources(
    files: Vec<(String, String)>,
    inputs: &AnalysisInputs,
    allowlist: &Allowlist,
) -> Report {
    let lexed: Vec<SourceFile> = files
        .iter()
        .map(|(path, text)| SourceFile::lex(path, text))
        .collect();
    let mut findings: Vec<Finding> = Vec::new();
    for file in &lexed {
        findings.extend(lints::run_lints(file));
    }
    findings.extend(invariants::run_invariants(
        &lexed,
        inputs.readme.as_deref(),
        inputs.ci_yaml.as_deref(),
    ));
    findings.extend(atomics::run(&lexed));
    let (graph_findings, lock_order) = lockgraph::run(&lexed, inputs.lock_order.as_ref());
    findings.extend(graph_findings);
    findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    let findings = findings
        .into_iter()
        .map(|f| Disposition {
            allowed: allowlist.covers(&f),
            finding: f,
        })
        .collect();
    Report {
        findings,
        stale: allowlist.stale().into_iter().cloned().collect(),
        files_scanned: lexed.len(),
        lock_order,
    }
}

/// Analyzes the workspace rooted at `root`: every `.rs` file under `src/`
/// and `crates/*/src/`, plus README.md (flag documentation), the CI
/// workflow (schema-version validators), and — when `lock_order_path` is
/// given — the committed canonical lock order, which must exist.
///
/// Test fixtures (any path containing a `fixtures` component) are skipped
/// — they exist to *contain* violations.
///
/// # Errors
///
/// Returns a message for unreadable files or a missing workspace layout.
pub fn analyze_repo(
    root: &Path,
    lock_order_path: Option<&Path>,
    allowlist: &Allowlist,
) -> Result<Report, String> {
    if !root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut paths)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
            collect_rs(&entry.path().join("src"), &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel, text));
    }
    let readme = std::fs::read_to_string(root.join("README.md")).ok();
    let ci_yaml = std::fs::read_to_string(root.join(".github/workflows/ci.yml")).ok();
    let lock_order = match lock_order_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("read lock-order file {}: {e}", p.display()))?;
            Some(LockOrderFile {
                path: p
                    .strip_prefix(root)
                    .unwrap_or(p)
                    .to_string_lossy()
                    .into_owned(),
                text,
            })
        }
        None => None,
    };
    let inputs = AnalysisInputs {
        readme,
        ci_yaml,
        lock_order,
    };
    Ok(analyze_sources(files, &inputs, allowlist))
}

/// Recursively collects `.rs` files under `dir`, skipping `fixtures` and
/// `target` components.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "fixtures" && name != "target" {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_with_allowlist() {
        let files = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                "fn f() { x.unwrap(); }\nfn g() { println!(\"no\"); }".to_string(),
            ),
            (
                "crates/a/tests/t.rs".to_string(),
                "fn t() { x.unwrap(); }".to_string(),
            ),
        ];
        let report = analyze_sources(
            files.clone(),
            &AnalysisInputs::default(),
            &Allowlist::default(),
        );
        assert_eq!(report.findings.len(), 2);
        assert!(report.failed(false));

        // Allowlist the unwrap: only the println remains active.
        let text = "no-unwrap-in-lib\tcrates/a/src/lib.rs\tfn f() { x.unwrap(); }\n";
        let allow = Allowlist::parse(text).unwrap();
        let report = analyze_sources(files, &AnalysisInputs::default(), &allow);
        assert_eq!(report.allowed_count(), 1);
        assert_eq!(report.active(false).len(), 1);
        assert!(report.stale.is_empty());
    }

    #[test]
    fn stale_entries_fail_the_run() {
        let allow = Allowlist::parse("no-unwrap-in-lib\tcrates/a/src/lib.rs\tgone();\n").unwrap();
        let report = analyze_sources(
            vec![("crates/a/src/lib.rs".to_string(), "fn ok() {}".to_string())],
            &AnalysisInputs::default(),
            &allow,
        );
        assert!(report.findings.is_empty());
        assert_eq!(report.stale.len(), 1);
        assert!(report.failed(false));
        assert!(report.render(false).contains("stale-allowlist"));
    }

    #[test]
    fn lock_order_and_graph_flow_through_the_report() {
        let src = "impl Pool {\n    fn run(&self) {\n        let g = self.submit.lock();\n        let s = self.state.lock();\n    }\n}";
        let files = vec![("crates/nn/src/pool.rs".to_string(), src.to_string())];
        let report = analyze_sources(
            files.clone(),
            &AnalysisInputs::default(),
            &Allowlist::default(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.lock_order, vec!["nn:Pool.submit", "nn:Pool.state"]);

        // Feeding the canonical order back in is clean; contradicting it
        // is a deny-level `lock-order` finding.
        let inputs = AnalysisInputs {
            lock_order: Some(LockOrderFile {
                path: "analysis/lock_order.txt".into(),
                text: lockgraph::render_order(&report.lock_order),
            }),
            ..AnalysisInputs::default()
        };
        let clean = analyze_sources(files.clone(), &inputs, &Allowlist::default());
        assert!(!clean.failed(true), "{}", clean.render(true));

        let inputs = AnalysisInputs {
            lock_order: Some(LockOrderFile {
                path: "analysis/lock_order.txt".into(),
                text: "nn:Pool.state\nnn:Pool.submit\n".into(),
            }),
            ..AnalysisInputs::default()
        };
        let contradicted = analyze_sources(files, &inputs, &Allowlist::default());
        assert!(contradicted.failed(false));
        assert!(contradicted
            .findings
            .iter()
            .any(|d| d.finding.lint == "lock-order"));
    }
}
