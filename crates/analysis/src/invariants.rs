//! Cross-file *domain* invariant checks.
//!
//! Unlike the per-line lints, these inspect relationships the compiler
//! cannot see:
//!
//! 1. **`format-versions`** — every on-disk format family (PAGNN weights,
//!    PAGCKPT training checkpoints, the D&C-GEN journal header) declares
//!    its version in a magic constant. CHANGES.md promises that old files
//!    keep loading (v1 still loads after v2 shipped), so (a) declared
//!    versions must be contiguous from 1 — bumping a constant to v3 while
//!    deleting the v2 arm silently breaks resume — and (b) each version
//!    constant must actually be consulted somewhere beyond its own
//!    declaration (a declared-but-never-matched version means the parser
//!    cannot accept it).
//!
//! 2. **`cli-flags-documented`** — every `--flag` the CLI parses out of
//!    `src/main.rs` must appear in README.md. Flags have shipped in PRs 1
//!    and 2 faster than the docs kept up; this makes the drift a build
//!    failure.
//!
//! 3. **`telemetry-schema-version`** — the JSONL schema version is a
//!    cross-file contract: the `JSONL_SCHEMA_VERSION` constant, the
//!    `record_schema_version` parser, and every CI validator asserting
//!    `schema_version == N` must agree. PR 7 pinned the CI validators to
//!    a literal `2`; this check makes the next bump a one-place edit that
//!    fails loudly everywhere else.

use std::collections::BTreeMap;

use crate::lexer::{FileKind, SourceFile};
use crate::lints::{Finding, Severity};

/// Names of the invariant checks (reported like lints).
pub const INVARIANT_NAMES: &[&str] = &[
    "format-versions",
    "cli-flags-documented",
    "telemetry-schema-version",
];

/// Runs the invariant checks. `readme` is the text of README.md when
/// available (without it the flag check is skipped); `ci_yaml` is the CI
/// workflow text (without it the schema-version validators are not
/// cross-checked).
#[must_use]
pub fn run_invariants(
    files: &[SourceFile],
    readme: Option<&str>,
    ci_yaml: Option<&str>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    format_versions(files, &mut out);
    if let Some(readme) = readme {
        cli_flags_documented(files, readme, &mut out);
    }
    telemetry_schema_version(files, ci_yaml, &mut out);
    out
}

/// A version-carrying format constant.
#[derive(Debug)]
struct VersionConst {
    ident: String,
    version: u32,
    line: usize,
}

fn format_versions(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        if file.kind != FileKind::Library {
            continue;
        }
        // family name -> constants declaring a version of that format.
        let mut families: BTreeMap<String, Vec<VersionConst>> = BTreeMap::new();
        for (idx, line) in file.lines.iter().enumerate() {
            if line.is_test || !line.code.contains("const ") {
                continue;
            }
            let Some(ident) = const_ident(&line.code) else {
                continue;
            };
            // Literals live in the *raw* line (the code channel blanks
            // string contents).
            if let Some((family, version)) = version_literal(&line.raw) {
                families.entry(family).or_default().push(VersionConst {
                    ident,
                    version,
                    line: idx,
                });
            }
        }
        for (family, consts) in &families {
            let Some(newest) = consts.iter().max_by_key(|c| c.version) else {
                continue;
            };
            let max = newest.version;
            for v in 1..=max {
                if !consts.iter().any(|c| c.version == v) {
                    out.push(Finding {
                        lint: "format-versions",
                        path: file.path.clone(),
                        line: newest.line + 1,
                        message: format!(
                            "format `{family}` declares v{max} but no v{v} constant — the back-compat parser arm promised in CHANGES.md is gone"
                        ),
                        snippet: file.lines[newest.line].raw.trim().to_string(),
                        severity: Severity::Deny,
                    });
                }
            }
            for c in consts {
                let referenced = file
                    .lines
                    .iter()
                    .enumerate()
                    .any(|(i, l)| i != c.line && !l.is_test && token_occurs(&l.code, &c.ident));
                if !referenced {
                    out.push(Finding {
                        lint: "format-versions",
                        path: file.path.clone(),
                        line: c.line + 1,
                        message: format!(
                            "format `{family}` v{}: constant `{}` is declared but never consulted by a writer or parser",
                            c.version, c.ident
                        ),
                        snippet: file.lines[c.line].raw.trim().to_string(),
                        severity: Severity::Deny,
                    });
                }
            }
        }
    }
}

/// Extracts the identifier from `const NAME: ...` in code text.
fn const_ident(code: &str) -> Option<String> {
    let pos = code.find("const ")?;
    let rest = code[pos + 6..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Parses a version-carrying literal out of a raw const-declaration line.
///
/// Two shapes count:
/// * byte magics — `b"PAGNN\0\0\x02"` / `b"PAGCKPT\x01"`: the family is
///   the leading ASCII-alpha run, the version the final `\xNN` escape
///   (which must be a small control byte, i.e. an intentional version tag);
/// * text headers — `"PAGPASS-DCGEN-JOURNAL v1"`: family before ` v`,
///   version digits after.
fn version_literal(raw: &str) -> Option<(String, u32)> {
    if let Some(start) = raw.find("b\"") {
        let body = &raw[start + 2..raw[start + 2..].find('"')? + start + 2];
        let family: String = body
            .chars()
            .take_while(|c| c.is_ascii_alphabetic() || *c == '-')
            .collect();
        if family.len() >= 3 {
            if let Some(hex) = body.rfind("\\x") {
                let version = u32::from_str_radix(body.get(hex + 2..hex + 4)?, 16).ok()?;
                if (1..=15).contains(&version) && body.len() == hex + 4 {
                    return Some((family, version));
                }
            }
        }
        return None;
    }
    let start = raw.find('"')?;
    let body = &raw[start + 1..raw[start + 1..].find('"')? + start + 1];
    let (family, tail) = body.rsplit_once(" v")?;
    let version: u32 = tail.parse().ok()?;
    let family_ok = family.len() >= 3
        && family
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '-');
    (family_ok && version >= 1).then(|| (family.to_string(), version))
}

/// True when `ident` occurs in `code` at identifier boundaries.
fn token_occurs(code: &str, ident: &str) -> bool {
    let mut from = 0;
    while let Some(p) = code[from..].find(ident) {
        let pos = from + p;
        let pre_ok = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let post = code[pos + ident.len()..].chars().next();
        let post_ok = !post.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            return true;
        }
        from = pos + 1;
    }
    false
}

fn cli_flags_documented(files: &[SourceFile], readme: &str, out: &mut Vec<Finding>) {
    let Some(main) = files.iter().find(|f| f.path == "src/main.rs") else {
        return;
    };
    // flag name -> first line it is parsed on.
    let mut flags: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, line) in main.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        for accessor in ["required(", ".num(", ".get(", "contains_key(", "name == "] {
            let mut from = 0;
            while let Some(p) = line.code[from..].find(accessor) {
                let at = from + p + accessor.len();
                // The literal itself is blanked in code; read it from raw
                // at the matching position's quote.
                if let Some(name) = quoted_at(&line.raw, &line.code, at) {
                    let plausible = !name.is_empty()
                        && name
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
                    if plausible {
                        flags.entry(name).or_insert(idx);
                    }
                }
                from = at;
            }
        }
    }
    for (flag, idx) in flags {
        if !readme.contains(&format!("--{flag}")) {
            out.push(Finding {
                lint: "cli-flags-documented",
                path: main.path.clone(),
                line: idx + 1,
                message: format!(
                    "CLI flag `--{flag}` is parsed here but never mentioned in README.md"
                ),
                snippet: main.lines[idx].raw.trim().to_string(),
                severity: Severity::Deny,
            });
        }
    }
}

/// Cross-checks the telemetry JSONL schema version: the declaring
/// constant must be consulted by `record_schema_version`, and every CI
/// validator asserting a literal `schema_version == N` must use the same
/// `N`. At least two validators are required (the telemetry-smoke and
/// http-smoke jobs both parse JSONL) — fewer means a validator was
/// dropped and the schema can drift unnoticed.
fn telemetry_schema_version(files: &[SourceFile], ci_yaml: Option<&str>, out: &mut Vec<Finding>) {
    // Find the declaring constant (raw channel: the value is a plain
    // integer literal, not a string, but stay consistent with the other
    // raw-line parses).
    let mut decl: Option<(&SourceFile, usize, u32)> = None;
    for file in files {
        if file.kind != FileKind::Library {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.is_test || !line.code.contains("const JSONL_SCHEMA_VERSION") {
                continue;
            }
            let Some(eq) = line.raw.find('=') else {
                continue;
            };
            let digits: String = line.raw[eq + 1..]
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(v) = digits.parse::<u32>() {
                decl = Some((file, idx, v));
            }
        }
    }
    let Some((file, idx, version)) = decl else {
        return; // no telemetry crate in this source set (fixtures)
    };
    let mk = |line: usize, message: String| Finding {
        lint: "telemetry-schema-version",
        path: file.path.clone(),
        line: line + 1,
        message,
        snippet: file.lines[line].raw.trim().to_string(),
        severity: Severity::Deny,
    };
    let has_parser = file
        .lines
        .iter()
        .any(|l| token_occurs(&l.code, "fn record_schema_version"));
    if !has_parser {
        out.push(mk(
            idx,
            "JSONL_SCHEMA_VERSION is declared but `record_schema_version` (the tolerant reader) is gone — v1 files would stop loading".into(),
        ));
    }
    // A consultation may live inside a format string (`{JSONL_SCHEMA_VERSION}`
    // interpolation when stamping records), which the lexer blanks from the
    // code channel — so also accept raw-line hits that are not comments.
    let consulted = file.lines.iter().enumerate().any(|(i, l)| {
        i != idx
            && !l.is_test
            && (token_occurs(&l.code, "JSONL_SCHEMA_VERSION")
                || (token_occurs(&l.raw, "JSONL_SCHEMA_VERSION")
                    && !l.comment.contains("JSONL_SCHEMA_VERSION")))
    });
    if !consulted {
        out.push(mk(
            idx,
            "JSONL_SCHEMA_VERSION is declared but never stamped onto a record or checked by a parser".into(),
        ));
    }
    let Some(ci) = ci_yaml else {
        return;
    };
    let mut validators = 0usize;
    for (ci_idx, ci_line) in ci.lines().enumerate() {
        if !ci_line.contains("schema_version") {
            continue;
        }
        let Some(eq) = ci_line.find("==") else {
            continue;
        };
        let digits: String = ci_line[eq + 2..]
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let Ok(asserted) = digits.parse::<u32>() else {
            continue; // `==` against a non-literal (set comparison etc.)
        };
        validators += 1;
        if asserted != version {
            out.push(mk(
                idx,
                format!(
                    "CI validator (ci.yml line {}) asserts schema_version == {asserted} but JSONL_SCHEMA_VERSION is {version}",
                    ci_idx + 1
                ),
            ));
        }
    }
    if validators < 2 {
        out.push(mk(
            idx,
            format!(
                "only {validators} CI validator(s) assert the JSONL schema_version literal — the telemetry-smoke and http-smoke jobs must both pin it"
            ),
        ));
    }
}

/// If a string literal opens at/after byte `at` (per the code channel, so
/// the quote is real), returns its contents read from `raw`.
fn quoted_at(raw: &str, code: &str, at: usize) -> Option<String> {
    let open_rel = code.get(at..)?.find('"')?;
    let open = at + open_rel;
    // Only accept a literal that starts right at the accessor (allowing
    // an optional `&` or whitespace), not somewhere later on the line.
    if code[at..open].trim() != "" && code[at..open].trim() != "&" {
        return None;
    }
    let close_rel = raw.get(open + 1..)?.find('"')?;
    Some(raw[open + 1..open + 1 + close_rel].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn check(files: &[(&str, &str)], readme: Option<&str>) -> Vec<Finding> {
        let lexed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::lex(p, s)).collect();
        run_invariants(&lexed, readme, None)
    }

    fn check_ci(files: &[(&str, &str)], ci: &str) -> Vec<Finding> {
        let lexed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::lex(p, s)).collect();
        run_invariants(&lexed, None, Some(ci))
    }

    const SCHEMA_SRC: &str = "pub const JSONL_SCHEMA_VERSION: u64 = 2;\npub fn record_schema_version(r: &R) -> u64 { r.get(JSONL_SCHEMA_VERSION) }\nfn stamp(w: &mut W) { w.field(JSONL_SCHEMA_VERSION); }";

    #[test]
    fn contiguous_referenced_versions_pass() {
        let src = "const MAGIC_V1: &[u8; 8] = b\"PAGNN\\0\\0\\x01\";\nconst MAGIC_V2: &[u8; 8] = b\"PAGNN\\0\\0\\x02\";\nfn parse(m: &[u8]) { if m == MAGIC_V1 || m == MAGIC_V2 {} }";
        assert!(check(&[("crates/nn/src/serialize.rs", src)], None).is_empty());
    }

    #[test]
    fn missing_back_compat_version_is_flagged() {
        let src = "const MAGIC_V2: &[u8; 8] = b\"PAGNN\\0\\0\\x02\";\nfn parse(m: &[u8]) { if m == MAGIC_V2 {} }";
        let f = check(&[("crates/nn/src/serialize.rs", src)], None);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no v1 constant"));
    }

    #[test]
    fn unreferenced_version_constant_is_flagged() {
        let src = "const HEADER: &str = \"PAGPASS-DCGEN-JOURNAL v1\";\nconst OLD: &str = \"PAGPASS-DCGEN-JOURNAL v2\";\nfn write(out: &mut String) { out.push_str(HEADER); }\nfn parse(l: &str) -> bool { l == HEADER }";
        let f = check(&[("crates/core/src/journal.rs", src)], None);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never consulted"));
    }

    #[test]
    fn text_headers_require_header_shape() {
        // An ordinary string containing " v1" in prose must not register.
        let src = "const MSG: &str = \"see release notes v1\";\nfn f() { g(MSG); }";
        assert!(check(&[("crates/x/src/lib.rs", src)], None).is_empty());
    }

    #[test]
    fn undocumented_cli_flag_is_flagged() {
        let main =
            "fn f(p: &Parsed) { let x = p.required(\"site\")?; let n: usize = p.num(\"n\", 10)?; }";
        let readme = "Usage: pass --site NAME to pick a site.";
        let f = check(&[("src/main.rs", main)], Some(readme));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("--n"));
    }

    #[test]
    fn schema_version_agreeing_validators_pass() {
        let ci = "      - run: |\n          assert rec[\"schema_version\"] == 2, rec\n      - run: |\n          assert first[\"schema_version\"] == 2\n";
        let f = check_ci(&[("crates/telemetry/src/trace.rs", SCHEMA_SRC)], ci);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn schema_version_mismatched_validator_is_flagged() {
        let ci = "assert rec[\"schema_version\"] == 2\nassert first[\"schema_version\"] == 3\n";
        let f = check_ci(&[("crates/telemetry/src/trace.rs", SCHEMA_SRC)], ci);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("== 3"));
        assert!(f[0].message.contains("line 2"));
    }

    #[test]
    fn schema_version_needs_two_validators() {
        let ci = "assert rec[\"schema_version\"] == 2\n";
        let f = check_ci(&[("crates/telemetry/src/trace.rs", SCHEMA_SRC)], ci);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("1 CI validator"));
    }

    #[test]
    fn schema_version_set_comparison_is_not_a_validator() {
        // `assert set(rec) == {"schema_version", ...}` has `==` against a
        // non-literal and must be ignored, not miscounted.
        let ci = "assert set(rec) == {\"schema_version\", \"ts_ms\"}\nassert rec[\"schema_version\"] == 2\nassert first[\"schema_version\"] == 2\n";
        let f = check_ci(&[("crates/telemetry/src/trace.rs", SCHEMA_SRC)], ci);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn schema_version_missing_parser_is_flagged() {
        let src = "pub const JSONL_SCHEMA_VERSION: u64 = 2;\nfn stamp(w: &mut W) { w.field(JSONL_SCHEMA_VERSION); }";
        let f = check(&[("crates/telemetry/src/trace.rs", src)], None);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("record_schema_version"));
    }

    #[test]
    fn documented_flags_pass() {
        let main = "fn f(p: &Parsed) { let x = p.flags.get(\"out\"); let b = p.flags.contains_key(\"resume\"); }";
        let readme = "Write with --out FILE and continue with --resume.";
        assert!(check(&[("src/main.rs", main)], Some(readme)).is_empty());
    }
}
