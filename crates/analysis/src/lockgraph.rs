//! Cross-file lock acquisition-order graph.
//!
//! Every lock acquisition that happens while another guard is live adds a
//! directed edge `held → acquired`. A cycle in that graph is a potential
//! deadlock (`lock-order-cycle`); an acyclic graph has a canonical
//! acquisition order — the deterministic topological sort committed to
//! `analysis/lock_order.txt` and checked as an invariant (`lock-order`):
//! every observed lock must be listed, no listed lock may be unobserved,
//! and no observed edge may contradict the committed order.
//!
//! Lock names come from [`crate::guards::scan`] and are qualified by the
//! owning crate (`nn:ThreadPool.submit`, `core:shared.state`) so
//! same-named fields in different crates never alias.

use std::collections::{BTreeMap, BTreeSet};

use crate::guards::{scan, Acquisition};
use crate::lexer::{FileKind, SourceFile};
use crate::lints::{inline_allowed, Finding, Severity};

/// Lint name for cycles in the acquisition graph.
pub const CYCLE_LINT: &str = "lock-order-cycle";
/// Lint name for disagreements with the committed canonical order.
pub const ORDER_LINT: &str = "lock-order";

/// The committed canonical-order file, when the caller supplies one.
#[derive(Debug, Clone)]
pub struct LockOrderFile {
    /// Path used in findings (e.g. `analysis/lock_order.txt`).
    pub path: String,
    /// Raw file contents.
    pub text: String,
}

/// Where a node or edge was observed, for reporting.
#[derive(Debug, Clone)]
struct Witness {
    file: usize,
    line: usize,
}

/// The assembled graph plus node/edge witnesses.
struct Graph {
    /// Every observed lock name, with its first acquisition site.
    nodes: BTreeMap<String, Witness>,
    /// `held → acquired` edges, each with the site of the *inner*
    /// acquisition.
    edges: BTreeMap<(String, String), Witness>,
}

/// Maps a workspace-relative path to its crate qualifier: `nn:` for
/// `crates/nn/src/…`, `cli:` for the root binary.
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("cli")
}

/// Collects qualified acquisitions per file (test code excluded — test
/// helpers acquire locks in patterns the production order never uses).
fn collect(files: &[SourceFile]) -> Vec<Vec<Acquisition>> {
    files
        .iter()
        .map(|file| {
            if file.kind == FileKind::TestOnly {
                return Vec::new();
            }
            let qualifier = crate_of(&file.path);
            scan(file)
                .into_iter()
                .filter(|a| !a.is_test && a.lock.is_some())
                .map(|mut a| {
                    a.lock = a.lock.map(|l| format!("{qualifier}:{l}"));
                    a
                })
                .collect()
        })
        .collect()
}

/// Builds the graph: a node per observed lock, an edge for every
/// acquisition made while another guard is live.
fn build(per_file: &[Vec<Acquisition>]) -> Graph {
    let mut nodes: BTreeMap<String, Witness> = BTreeMap::new();
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    for (fidx, acqs) in per_file.iter().enumerate() {
        for acq in acqs {
            let lock = acq.lock.clone().unwrap_or_default();
            nodes.entry(lock).or_insert(Witness {
                file: fidx,
                line: acq.line,
            });
        }
        for (i, outer) in acqs.iter().enumerate() {
            if outer.guard.is_none() {
                continue; // temporaries die within their statement
            }
            let from = outer.lock.clone().unwrap_or_default();
            for inner in acqs.iter().skip(i + 1) {
                if inner.line < outer.line || inner.line > outer.end {
                    continue;
                }
                let to = inner.lock.clone().unwrap_or_default();
                edges.entry((from.clone(), to)).or_insert(Witness {
                    file: fidx,
                    line: inner.line,
                });
            }
        }
    }
    Graph { nodes, edges }
}

/// Strongly connected components (iterative Tarjan), smallest-name-first
/// within each component for deterministic reporting.
fn sccs(nodes: &BTreeSet<&str>, edges: &BTreeMap<(String, String), Witness>) -> Vec<Vec<String>> {
    let names: Vec<&str> = nodes.iter().copied().collect();
    let index_of: BTreeMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (from, to) in edges.keys() {
        if let (Some(&f), Some(&t)) = (index_of.get(from.as_str()), index_of.get(to.as_str())) {
            adj[f].push(t);
        }
    }
    let n = names.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<String>> = Vec::new();
    // Iterative Tarjan: (node, next child position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(names[w].to_string());
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    out.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    out.sort();
    out
}

/// Deterministic canonical order: Kahn's algorithm with a smallest-name
/// tie-break. Only valid when the graph is acyclic; nodes trapped in
/// cycles are appended in name order so the output is still total.
fn canonical_order(
    nodes: &BTreeSet<&str>,
    edges: &BTreeMap<(String, String), Witness>,
) -> Vec<String> {
    let mut indegree: BTreeMap<&str, usize> = nodes.iter().map(|n| (*n, 0)).collect();
    for (from, to) in edges.keys() {
        if from != to && nodes.contains(from.as_str()) && nodes.contains(to.as_str()) {
            *indegree.entry(to.as_str()).or_insert(0) += 1;
        }
    }
    let mut ready: BTreeSet<&str> = indegree
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(n, _)| *n)
        .collect();
    let mut order: Vec<String> = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    while let Some(&next) = ready.iter().next() {
        ready.remove(next);
        done.insert(next);
        order.push(next.to_string());
        for ((from, to), _) in edges.iter() {
            if from == next && from != to && !done.contains(to.as_str()) {
                let d = indegree.entry(to.as_str()).or_insert(1);
                *d = d.saturating_sub(1);
                if *d == 0 {
                    ready.insert(to.as_str());
                }
            }
        }
    }
    for n in nodes {
        if !done.contains(n) {
            order.push((*n).to_string());
        }
    }
    order
}

/// Renders the canonical order as the committed `lock_order.txt` text.
#[must_use]
pub fn render_order(order: &[String]) -> String {
    let mut out = String::from(
        "# Canonical lock acquisition order (generated by `pagpass analyze --update-lock-order`).\n\
         # A lock earlier in this file may be held while acquiring a later one, never the\n\
         # reverse. `pagpass analyze --lock-order` fails when the tree contradicts this\n\
         # order, observes a lock missing from it, or finds a stale entry.\n",
    );
    for name in order {
        out.push_str(name);
        out.push('\n');
    }
    out
}

/// Parses a committed order file into `(1-based line, name)` entries.
fn parse_order(text: &str) -> Vec<(usize, String)> {
    text.lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let t = l.trim();
            (!t.is_empty() && !t.starts_with('#')).then(|| (i + 1, t.to_string()))
        })
        .collect()
}

/// Runs the lock-order analysis: returns findings plus the canonical
/// order computed from the tree (empty when the graph has cycles).
pub fn run(
    files: &[SourceFile],
    order_file: Option<&LockOrderFile>,
) -> (Vec<Finding>, Vec<String>) {
    let per_file = collect(files);
    let graph = build(&per_file);
    let nodes: BTreeSet<&str> = graph.nodes.keys().map(String::as_str).collect();
    let mut findings = Vec::new();

    let finding_at = |w: &Witness, lint: &'static str, message: String| -> Option<Finding> {
        let file = &files[w.file];
        if inline_allowed(file, w.line, lint) {
            return None;
        }
        Some(Finding {
            lint,
            path: file.path.clone(),
            line: w.line + 1,
            message,
            snippet: file.lines[w.line].raw.trim().to_string(),
            severity: Severity::Deny,
        })
    };

    // Cycles: every edge inside a non-trivial SCC (or a self-edge) gets a
    // finding at its witness, so each file participating in a cross-file
    // cycle reports locally.
    let mut cyclic = false;
    for comp in sccs(&nodes, &graph.edges) {
        let members: BTreeSet<&str> = comp.iter().map(String::as_str).collect();
        for ((from, to), w) in &graph.edges {
            let in_comp = members.contains(from.as_str()) && members.contains(to.as_str());
            let is_cycle_edge = (comp.len() > 1 && in_comp)
                || (from == to && members.contains(from.as_str()) && comp.len() == 1);
            if !is_cycle_edge {
                continue;
            }
            cyclic = true;
            let msg = if from == to {
                format!("lock `{from}` re-acquired while already held — self-deadlock")
            } else {
                format!(
                    "lock-order cycle: acquiring `{to}` while holding `{from}` (cycle members: {}) — potential deadlock",
                    comp.join(", ")
                )
            };
            findings.extend(finding_at(w, CYCLE_LINT, msg));
        }
    }

    let order = if cyclic {
        Vec::new()
    } else {
        canonical_order(&nodes, &graph.edges)
    };

    if let Some(of) = order_file {
        let entries = parse_order(&of.text);
        let position: BTreeMap<&str, usize> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, name))| (name.as_str(), i))
            .collect();
        for (name, w) in &graph.nodes {
            if !position.contains_key(name.as_str()) {
                findings.extend(finding_at(
                    w,
                    ORDER_LINT,
                    format!(
                        "lock `{name}` is not listed in {}; regenerate with `pagpass analyze --update-lock-order`",
                        of.path
                    ),
                ));
            }
        }
        for ((from, to), w) in &graph.edges {
            if from == to {
                continue;
            }
            if let (Some(&pf), Some(&pt)) = (position.get(from.as_str()), position.get(to.as_str()))
            {
                if pf > pt {
                    findings.extend(finding_at(
                        w,
                        ORDER_LINT,
                        format!(
                            "acquires `{to}` while holding `{from}`, but {} orders `{to}` before `{from}`",
                            of.path
                        ),
                    ));
                }
            }
        }
        for (line, name) in &entries {
            if !graph.nodes.contains_key(name) {
                findings.push(Finding {
                    lint: ORDER_LINT,
                    path: of.path.clone(),
                    line: *line,
                    message: format!(
                        "canonical order lists lock `{name}` but no acquisition of it was observed — delete the entry or regenerate with `pagpass analyze --update-lock-order`"
                    ),
                    snippet: name.clone(),
                    severity: Severity::Deny,
                });
            }
        }
    }

    (findings, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn lex(path: &str, src: &str) -> SourceFile {
        SourceFile::lex(path, src)
    }

    #[test]
    fn single_edge_yields_canonical_order() {
        let files = vec![lex(
            "crates/nn/src/pool.rs",
            "impl Pool {\n    fn run(&self) {\n        let g = self.submit.lock();\n        let s = self.state.lock();\n    }\n}",
        )];
        let (findings, order) = run(&files, None);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(order, vec!["nn:Pool.submit", "nn:Pool.state"]);
    }

    #[test]
    fn cross_file_cycle_is_reported_in_both_files() {
        let a = lex(
            "crates/core/src/a.rs",
            "fn f(s: &S) {\n    let g = s.alpha.lock();\n    let h = s.beta.lock();\n}",
        );
        let b = lex(
            "crates/core/src/b.rs",
            "fn g(s: &S) {\n    let h = s.beta.lock();\n    let g = s.alpha.lock();\n}",
        );
        let (findings, order) = run(&[a, b], None);
        let cycle: Vec<_> = findings.iter().filter(|f| f.lint == CYCLE_LINT).collect();
        assert_eq!(cycle.len(), 2, "{findings:?}");
        let paths: BTreeSet<&str> = cycle.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths.len(), 2);
        assert!(order.is_empty());
    }

    #[test]
    fn self_edge_is_a_finding() {
        let files = vec![lex(
            "crates/core/src/x.rs",
            "fn f(s: &S) {\n    let g = s.inner.lock();\n    let h = s.inner.lock();\n}",
        )];
        let (findings, _) = run(&files, None);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("self-deadlock"));
    }

    #[test]
    fn order_file_checks_missing_contradicted_and_stale() {
        let files = vec![lex(
            "crates/nn/src/pool.rs",
            "impl Pool {\n    fn run(&self) {\n        let g = self.submit.lock();\n        let s = self.state.lock();\n    }\n}",
        )];
        // Contradicts the observed submit→state edge, lists a ghost lock,
        // and omits `state`.
        let of = LockOrderFile {
            path: "analysis/lock_order.txt".into(),
            text: "# header\nnn:Pool.state_ghost\nnn:Pool.submit\n".into(),
        };
        let (findings, _) = run(&files, Some(&of));
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("not listed")), "{msgs:?}");
        assert!(
            msgs.iter()
                .any(|m| m.contains("no acquisition of it was observed")),
            "{msgs:?}"
        );
        let stale = findings
            .iter()
            .find(|f| f.message.contains("no acquisition"))
            .unwrap();
        assert_eq!(stale.path, "analysis/lock_order.txt");
        assert_eq!(stale.line, 2);
    }

    #[test]
    fn order_file_contradiction_detected() {
        let files = vec![lex(
            "crates/nn/src/pool.rs",
            "impl Pool {\n    fn run(&self) {\n        let g = self.submit.lock();\n        let s = self.state.lock();\n    }\n}",
        )];
        let of = LockOrderFile {
            path: "analysis/lock_order.txt".into(),
            text: "nn:Pool.state\nnn:Pool.submit\n".into(),
        };
        let (findings, _) = run(&files, Some(&of));
        assert!(
            findings
                .iter()
                .any(|f| f.lint == ORDER_LINT && f.message.contains("orders")),
            "{findings:?}"
        );
    }

    #[test]
    fn matching_order_file_is_clean() {
        let files = vec![lex(
            "crates/nn/src/pool.rs",
            "impl Pool {\n    fn run(&self) {\n        let g = self.submit.lock();\n        let s = self.state.lock();\n    }\n}",
        )];
        let (_, order) = run(&files, None);
        let of = LockOrderFile {
            path: "analysis/lock_order.txt".into(),
            text: render_order(&order),
        };
        let (findings, order2) = run(&files, Some(&of));
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(order, order2);
    }

    #[test]
    fn nested_guard_in_inner_scope_is_an_edge_not_a_cycle() {
        // Consistent order in two places — edge recorded once, no cycle.
        let files = vec![lex(
            "crates/core/src/x.rs",
            "fn f(s: &S) {\n    let g = s.outer.lock();\n    {\n        let h = s.inner.lock();\n    }\n}\nfn g2(s: &S) {\n    let g = s.outer.lock();\n    let h = s.inner.lock();\n}",
        )];
        let (findings, order) = run(&files, None);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(order, vec!["core:s.outer", "core:s.inner"]);
    }
}
