//! Atomics audit: acquire/release pairing and signal-field ordering.
//!
//! The ordering-discipline lint (in [`crate::lints`]) already forces an
//! `// ORD:` justification onto every atomic ordering. This module checks
//! what the justifications *claim*: a `Release` store publishes nothing
//! unless some load on the same field acquires it, and vice versa — an
//! unpaired side is a silent memory-ordering bug (`atomic-pairing`).
//! Separately, fields named like cross-thread signals
//! (`stop` / `*_stop` / `draining` / `*_draining` / `*_seq`) must not use
//! `Relaxed`: a relaxed signal can be observed arbitrarily late, which is
//! exactly the "worker never notices the drain" bug class
//! (`atomic-signal`).
//!
//! Pairing is keyed by `(crate, field name)` — a lexical approximation of
//! "the same atomic". Two distinct structs in one crate sharing a field
//! name would alias; keep atomic field names crate-unique (they already
//! are in this workspace).

use crate::lexer::{FileKind, SourceFile};
use crate::lints::{inline_allowed, token_position, Finding, Severity};

/// Lint name for unpaired release/acquire sides.
pub const PAIRING_LINT: &str = "atomic-pairing";
/// Lint name for `Relaxed` on signal-pattern fields.
pub const SIGNAL_LINT: &str = "atomic-signal";

/// Memory-ordering sides an operation participates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sides {
    /// Publishes (store side): `Release`, `AcqRel`, `SeqCst`.
    release: bool,
    /// Observes (load side): `Acquire`, `AcqRel`, `SeqCst`.
    acquire: bool,
    /// Uses `Relaxed` anywhere in the call.
    relaxed: bool,
}

/// One atomic operation site.
#[derive(Debug, Clone)]
struct Op {
    file: usize,
    line: usize,
    field: String,
    /// True for `store`/RMW ops, which can publish.
    is_store: bool,
    /// True for `load`/RMW ops, which can observe.
    is_load: bool,
    sides: Sides,
}

/// Atomic methods and whether they store / load.
const METHODS: &[(&str, bool, bool)] = &[
    (".load(", false, true),
    (".store(", true, false),
    (".swap(", true, true),
    (".fetch_add(", true, true),
    (".fetch_sub(", true, true),
    (".fetch_and(", true, true),
    (".fetch_or(", true, true),
    (".fetch_xor(", true, true),
    (".fetch_nand(", true, true),
    (".fetch_max(", true, true),
    (".fetch_min(", true, true),
    (".fetch_update(", true, true),
    (".compare_exchange(", true, true),
    (".compare_exchange_weak(", true, true),
];

/// Collects the `Ordering::` variants on `code` starting at `from`,
/// spilling onto up to two continuation lines for multi-line calls.
fn orderings_near(file: &SourceFile, idx: usize, from: usize) -> Sides {
    let mut sides = Sides {
        release: false,
        acquire: false,
        relaxed: false,
    };
    let first = &file.lines[idx].code;
    scan_orderings(&first[from.min(first.len())..], &mut sides);
    if !(sides.release || sides.acquire || sides.relaxed) {
        for next in file.lines.iter().skip(idx + 1).take(2) {
            scan_orderings(&next.code, &mut sides);
            if sides.release || sides.acquire || sides.relaxed {
                break;
            }
        }
    }
    sides
}

/// Folds every `Ordering::` variant in `code` into `sides`.
fn scan_orderings(code: &str, sides: &mut Sides) {
    let mut at = 0;
    while let Some(p) = code[at..].find("Ordering::") {
        let pos = at + p + "Ordering::".len();
        let variant: String = code[pos..]
            .chars()
            .take_while(|c| c.is_alphanumeric())
            .collect();
        match variant.as_str() {
            "Release" => sides.release = true,
            "Acquire" => sides.acquire = true,
            "AcqRel" | "SeqCst" => {
                sides.release = true;
                sides.acquire = true;
            }
            "Relaxed" => sides.relaxed = true,
            _ => {}
        }
        at = pos;
    }
}

/// Extracts the field name (last receiver path component) for a method
/// call at `pos`; `None` for call-result receivers.
fn field_before(code: &str, pos: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = pos;
    while j > 0 {
        let c = bytes[j - 1] as char;
        if c.is_alphanumeric() || matches!(c, '_' | '.' | ':') {
            j -= 1;
        } else {
            break;
        }
    }
    if j > 0 && bytes[j - 1] as char == ')' {
        return None;
    }
    let path = &code[j..pos];
    let field = path
        .rsplit('.')
        .next()
        .and_then(|last| last.rsplit("::").next())
        .unwrap_or(path);
    (!field.is_empty()
        && field
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_'))
    .then(|| field.to_string())
}

/// True for field names used as cross-thread signals, where `Relaxed`
/// provides no ordering for the data the signal is supposed to publish.
fn is_signal_field(field: &str) -> bool {
    field == "stop"
        || field == "draining"
        || field.ends_with("_stop")
        || field.ends_with("_draining")
        || field.ends_with("_seq")
}

/// Maps a workspace-relative path to its crate qualifier.
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("cli")
}

/// Runs the atomics audit over the whole source set.
#[must_use]
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut ops: Vec<Op> = Vec::new();
    for (fidx, file) in files.iter().enumerate() {
        if file.kind == FileKind::TestOnly {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.is_test {
                continue;
            }
            let code = &line.code;
            for (pat, is_store, is_load) in METHODS {
                let mut from = 0;
                while let Some(p) = token_position(&code[from..], pat) {
                    let pos = from + p;
                    from = pos + pat.len();
                    let Some(field) = field_before(code, pos) else {
                        continue;
                    };
                    let sides = orderings_near(file, idx, pos);
                    if !(sides.release || sides.acquire || sides.relaxed) {
                        continue; // not an atomic call (no Ordering argument)
                    }
                    ops.push(Op {
                        file: fidx,
                        line: idx,
                        field,
                        is_store: *is_store,
                        is_load: *is_load,
                        sides,
                    });
                }
            }
        }
    }

    let mut findings = Vec::new();

    // Signal-pattern fields must not relax.
    for op in &ops {
        if op.sides.relaxed && is_signal_field(&op.field) {
            let file = &files[op.file];
            if inline_allowed(file, op.line, SIGNAL_LINT) {
                continue;
            }
            findings.push(Finding {
                lint: SIGNAL_LINT,
                path: file.path.clone(),
                line: op.line + 1,
                message: format!(
                    "`Relaxed` on signal field `{}` — cross-thread signals need Release/Acquire (or SeqCst) so the data they publish is visible",
                    op.field
                ),
                snippet: file.lines[op.line].raw.trim().to_string(),
                severity: Severity::Deny,
            });
        }
    }

    // Pairing per (crate, field): a publishing store with no acquiring
    // load anywhere in the crate (or vice versa) orders nothing.
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        let key = (crate_of(&files[op.file].path).to_string(), op.field.clone());
        groups.entry(key).or_default().push(i);
    }
    for ((_, field), members) in &groups {
        let has_release = members
            .iter()
            .any(|&i| ops[i].is_store && ops[i].sides.release);
        let has_acquire = members
            .iter()
            .any(|&i| ops[i].is_load && ops[i].sides.acquire);
        let unpaired: Vec<usize> = if has_release && !has_acquire {
            members
                .iter()
                .copied()
                .filter(|&i| ops[i].is_store && ops[i].sides.release)
                .collect()
        } else if has_acquire && !has_release {
            members
                .iter()
                .copied()
                .filter(|&i| ops[i].is_load && ops[i].sides.acquire)
                .collect()
        } else {
            Vec::new()
        };
        for i in unpaired {
            let op = &ops[i];
            let file = &files[op.file];
            if inline_allowed(file, op.line, PAIRING_LINT) {
                continue;
            }
            let (this, missing) = if has_release {
                ("Release", "Acquire/AcqRel/SeqCst load")
            } else {
                ("Acquire", "Release/AcqRel/SeqCst store")
            };
            findings.push(Finding {
                lint: PAIRING_LINT,
                path: file.path.clone(),
                line: op.line + 1,
                message: format!(
                    "{this}-side atomic op on field `{field}` has no matching {missing} on the same field in this crate — the ordering pairs with nothing"
                ),
                snippet: file.lines[op.line].raw.trim().to_string(),
                severity: Severity::Deny,
            });
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn audit(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::lex(p, s)).collect();
        run(&files)
    }

    #[test]
    fn unpaired_release_store_is_flagged() {
        let hits = audit(&[(
            "crates/x/src/lib.rs",
            "fn f(a: &A) { a.ready.store(true, Ordering::Release); }",
        )]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lint, PAIRING_LINT);
        assert!(hits[0].message.contains("ready"));
    }

    #[test]
    fn paired_across_files_in_one_crate_is_clean() {
        let hits = audit(&[
            (
                "crates/x/src/a.rs",
                "fn f(a: &A) { a.ready.store(true, Ordering::Release); }",
            ),
            (
                "crates/x/src/b.rs",
                "fn g(a: &A) { let r = a.ready.load(Ordering::Acquire); }",
            ),
        ]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn acqrel_rmw_pairs_with_acquire_load() {
        let hits = audit(&[
            (
                "crates/x/src/a.rs",
                "fn f(a: &A) { a.count.fetch_add(1, Ordering::AcqRel); }",
            ),
            (
                "crates/x/src/b.rs",
                "fn g(a: &A) { a.count.load(Ordering::Acquire); }",
            ),
        ]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn seqcst_both_sides_is_self_pairing() {
        let hits = audit(&[(
            "crates/x/src/a.rs",
            "fn f(a: &A) { a.flag.store(true, Ordering::SeqCst); a.flag.load(Ordering::SeqCst); }",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn same_field_in_other_crate_does_not_pair() {
        let hits = audit(&[
            (
                "crates/x/src/a.rs",
                "fn f(a: &A) { a.ready.store(true, Ordering::Release); }",
            ),
            (
                "crates/y/src/b.rs",
                "fn g(a: &A) { a.ready.load(Ordering::Acquire); }",
            ),
        ]);
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn relaxed_counter_is_not_a_pairing_finding() {
        let hits = audit(&[(
            "crates/x/src/a.rs",
            "fn f(a: &A) { a.hits.fetch_add(1, Ordering::Relaxed); }",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn relaxed_signal_field_is_flagged() {
        let hits = audit(&[(
            "crates/x/src/a.rs",
            "fn f(a: &A) { a.stop.store(true, Ordering::Relaxed); a.worker_stop.load(Ordering::Relaxed); a.push_seq.fetch_add(1, Ordering::Relaxed); }",
        )]);
        let signal: Vec<_> = hits.iter().filter(|f| f.lint == SIGNAL_LINT).collect();
        assert_eq!(signal.len(), 3, "{hits:?}");
    }

    #[test]
    fn seq_suffix_requires_underscore() {
        // `seq` alone is not a signal pattern (tcp.rs uses a plain `seq`
        // counter deliberately).
        let hits = audit(&[(
            "crates/x/src/a.rs",
            "fn f(a: &A) { a.seq.fetch_add(1, Ordering::Relaxed); }",
        )]);
        assert!(hits.iter().all(|f| f.lint != SIGNAL_LINT), "{hits:?}");
    }

    #[test]
    fn multiline_call_finds_ordering_on_next_line() {
        let hits = audit(&[(
            "crates/x/src/a.rs",
            "fn f(a: &A) {\n    a.ready.store(\n        true,\n        Ordering::Release,\n    );\n}",
        )]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].lint, PAIRING_LINT);
    }

    #[test]
    fn lint_allow_suppresses_pairing() {
        let hits = audit(&[(
            "crates/x/src/a.rs",
            "// LINT-ALLOW: atomic-pairing consumer lives downstream\nfn f(a: &A) { a.ready.store(true, Ordering::Release); }",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn non_atomic_store_without_ordering_is_ignored() {
        let hits = audit(&[(
            "crates/x/src/a.rs",
            "fn f(db: &Db) { db.kv.store(key, value); }",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
