//! A small comment- and string-aware lexer for Rust sources.
//!
//! The lints in this crate are lexical: they match token patterns like
//! `.unwrap()` or `Ordering::Relaxed` per line. Matching raw text would
//! misfire on occurrences inside string literals, doc comments, and block
//! comments, so every file is first split into per-line *code* text (string
//! and char contents blanked, comments removed) and *comment* text (the
//! bodies of `//`, `///`, `//!`, and `/* .. */` comments, where lint
//! justification annotations like `// ORD: ...` live).
//!
//! A second pass tracks `#[cfg(test)]` / `#[test]` regions by brace depth
//! so lints can exempt test code without parsing Rust properly. The
//! tracking is deliberately simple — an attribute arms a pending flag that
//! latches onto the next `{` (or is disarmed by a `;`, for attributes on
//! non-block items), and the region ends when the depth returns below the
//! opening brace. Nested `#[cfg(test)]` inside an active test region is
//! absorbed by the enclosing region.

/// One source line, split into channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Original text (used for allowlist matching and reports).
    pub raw: String,
    /// Code text: comments stripped, string/char literal contents blanked
    /// with spaces (delimiters preserved so token boundaries survive).
    pub code: String,
    /// Comment text on this line (all comment bodies concatenated).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
}

/// Where a file sits in the workspace, which decides lint applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: `src/**` of any crate (and the root facade).
    Library,
    /// Binary code: `src/main.rs`, `src/bin/**`, `build.rs`.
    Binary,
    /// Test-only code: `tests/**`, `benches/**`, `examples/**`.
    TestOnly,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// File classification.
    pub kind: FileKind,
    /// Lexed lines, in file order.
    pub lines: Vec<Line>,
}

/// Classifies `rel_path` (workspace-relative, `/`-separated).
#[must_use]
pub fn classify(rel_path: &str) -> FileKind {
    let in_dir =
        |d: &str| rel_path.starts_with(&format!("{d}/")) || rel_path.contains(&format!("/{d}/"));
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        return FileKind::TestOnly;
    }
    if rel_path == "build.rs"
        || rel_path.ends_with("/build.rs")
        || rel_path == "src/main.rs"
        || rel_path.ends_with("/src/main.rs")
        || rel_path.contains("/src/bin/")
    {
        return FileKind::Binary;
    }
    FileKind::Library
}

/// Cross-line lexer state.
enum Mode {
    Code,
    /// Inside nested block comments, with the current nesting depth.
    Block(u32),
    /// Inside a normal string literal.
    Str,
    /// Inside a raw string literal closed by `"` followed by this many `#`.
    RawStr(u32),
}

impl SourceFile {
    /// Lexes `text` into a [`SourceFile`] for the given relative path.
    #[must_use]
    pub fn lex(rel_path: &str, text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut mode = Mode::Code;
        for raw in text.lines() {
            let (line, next) = lex_line(raw, mode);
            mode = next;
            lines.push(line);
        }
        mark_test_regions(&mut lines);
        SourceFile {
            path: rel_path.to_string(),
            kind: classify(rel_path),
            lines,
        }
    }
}

/// Lexes one line starting in `mode`, returning the split line and the mode
/// the next line starts in.
fn lex_line(raw: &str, mut mode: Mode) -> (Line, Mode) {
    let chars: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0usize;
    let at = |i: usize| chars.get(i).copied();
    while i < chars.len() {
        let c = chars[i];
        match mode {
            Mode::Block(depth) => {
                if c == '/' && at(i + 1) == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else if c == '*' && at(i + 1) == Some('/') {
                    mode = if depth > 1 {
                        Mode::Block(depth - 1)
                    } else {
                        Mode::Code
                    };
                    if matches!(mode, Mode::Code) {
                        // Keep a token separator where the comment was.
                        code.push(' ');
                    }
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    code.push(' ');
                    if at(i + 1).is_some() {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1; // line continuation: string spans lines
                    }
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Code => {
                if c == '/' && at(i + 1) == Some('/') {
                    // Line comment (incl. /// and //!): rest of line.
                    comment.push_str(&chars[i + 2..].iter().collect::<String>());
                    break;
                } else if c == '/' && at(i + 1) == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if let Some(hashes) = raw_string_at(&chars, i) {
                    // r"..." / r#"..."# / br#"..."# — emit the opening
                    // delimiter and switch modes.
                    while chars[i] != '"' {
                        code.push(chars[i]);
                        i += 1;
                    }
                    code.push('"');
                    i += 1;
                    mode = Mode::RawStr(hashes);
                } else if c == '\'' {
                    // Char literal vs lifetime. A literal is '\...' or 'x'
                    // followed by a closing quote; anything else ('a in
                    // generics) is a lifetime and stays plain code.
                    if let Some(end) = char_literal_end(&chars, i) {
                        code.push('\'');
                        for _ in i + 1..end {
                            code.push(' ');
                        }
                        code.push('\'');
                        i = end + 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    // A string/raw-string that continues past the line end keeps its mode;
    // block comments likewise.
    (
        Line {
            raw: raw.to_string(),
            code,
            comment,
            is_test: false,
        },
        mode,
    )
}

/// Is `chars[i]` (a `"`) followed by `hashes` `#` characters?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Detects a raw-string opener (`r`, `br`, `rb` + `#`* + `"`) starting at
/// `i`, returning the hash count. `i` must be at an identifier boundary.
fn raw_string_at(chars: &[char], i: usize) -> Option<u32> {
    let boundary = i == 0 || !is_ident_char(chars[i - 1]);
    if !boundary {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// If a char literal starts at `i` (which holds `'`), returns the index of
/// its closing quote; `None` means `i` starts a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Simple escapes ('\n', '\\', '\'') close right after the
            // escaped char; longer ones ('\x7f', '\u{1F600}') within a
            // short window.
            if chars.get(i + 3) == Some(&'\'') {
                Some(i + 3)
            } else {
                (i + 4..(i + 12).min(chars.len())).find(|&j| chars[j] == '\'')
            }
        }
        Some(_) => (chars.get(i + 2) == Some(&'\'')).then_some(i + 2),
        None => None,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` brace regions.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0usize;
    let mut pending = false;
    let mut test_stack: Vec<usize> = Vec::new();
    for line in lines.iter_mut() {
        let mut inside = !test_stack.is_empty();
        // Positions where a test attribute appears on this line; the
        // pending flag arms when the scan crosses one, so `#[cfg(test)]
        // mod tests {` works whichever order tokens come in.
        let attr_positions: Vec<usize> = ["#[cfg(test)", "#[cfg(all(test", "#[test]", "#[bench]"]
            .iter()
            .flat_map(|pat| match_positions(&line.code, pat))
            .collect();
        for (pos, c) in line.code.char_indices() {
            if attr_positions.contains(&pos) {
                pending = true;
            }
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        test_stack.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => {
                    // `#[cfg(test)] use foo;` — the attribute applied to a
                    // braceless item; disarm.
                    pending = false;
                }
                _ => {}
            }
            if !test_stack.is_empty() {
                inside = true;
            }
        }
        if pending {
            // Attribute armed and still waiting for its `{` on a later
            // line (`#[cfg(test)]` alone on its own line).
            inside = true;
        }
        line.is_test = inside;
    }
}

/// Byte positions of every occurrence of `pat` in `s`.
fn match_positions(s: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = s[from..].find(pat) {
        out.push(from + p);
        from += p + 1;
    }
    out
}

/// Per-line enclosing `impl` block target type, tracked by brace depth the
/// same way test regions are: an `impl`-initial line arms a pending type
/// name that latches onto the next `{`. The target is the *implementing*
/// type — `ThreadPool` for both `impl ThreadPool` and
/// `impl Drop for ThreadPool` — which is what the concurrency lints use to
/// qualify `self.field` lock names. Only lines that *start* with `impl`
/// count, so `-> impl Iterator` return types never open a region.
#[must_use]
pub fn impl_types(lines: &[Line]) -> Vec<Option<String>> {
    let mut out = Vec::with_capacity(lines.len());
    let mut depth = 0usize;
    let mut pending: Option<String> = None;
    let mut stack: Vec<(usize, String)> = Vec::new();
    for line in lines {
        if let Some(name) = impl_target(&line.code) {
            pending = Some(name);
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(name) = pending.take() {
                        stack.push((depth, name));
                    }
                }
                '}' => {
                    if stack.last().is_some_and(|(d, _)| *d == depth) {
                        stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => pending = None,
                _ => {}
            }
        }
        out.push(stack.last().map(|(_, n)| n.clone()));
    }
    out
}

/// Extracts the implementing type from an `impl`-initial line: the type
/// after ` for ` when present, else the first type after the (possibly
/// generic) `impl` keyword. Paths are reduced to their final segment and
/// generics are dropped (`impl<T> queue::AdmissionQueue<T>` →
/// `AdmissionQueue`).
fn impl_target(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("impl")?;
    // `impl` must be the keyword, not a prefix of an identifier.
    if rest.chars().next().is_some_and(is_ident_char) {
        return None;
    }
    let rest = skip_generics(rest.trim_start());
    let head = rest.split('{').next().unwrap_or(rest);
    let target = match head.find(" for ") {
        Some(p) => &head[p + 5..],
        None => head,
    };
    let target = target.trim_start().trim_start_matches('&');
    let path: String = target
        .chars()
        .take_while(|c| is_ident_char(*c) || *c == ':')
        .collect();
    let name = path.rsplit("::").next().unwrap_or(&path).to_string();
    (!name.is_empty() && name.chars().next().is_some_and(char::is_alphabetic)).then_some(name)
}

/// Skips a balanced leading `<...>` generics list, if any.
fn skip_generics(s: &str) -> &str {
    if !s.starts_with('<') {
        return s;
    }
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].trim_start();
                }
            }
            _ => {}
        }
    }
    s
}

/// True when `line`'s comment (or the contiguous comment-only block just
/// above it) carries the annotation `tag` (e.g. `"ORD:"`).
#[must_use]
pub fn has_annotation(lines: &[Line], idx: usize, tag: &str) -> bool {
    if lines[idx].comment.contains(tag) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let comment_only = l.code.trim().is_empty() && !l.comment.trim().is_empty();
        if !comment_only {
            return false;
        }
        if l.comment.contains(tag) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<String> {
        SourceFile::lex("crates/x/src/lib.rs", text)
            .lines
            .iter()
            .map(|l| l.code.clone())
            .collect()
    }

    #[test]
    fn strings_are_blanked_but_delimiters_survive() {
        let c = codes(r#"let s = "contains .unwrap() here"; s.len();"#);
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("let s = \""));
        assert!(c[0].contains("s.len();"));
    }

    #[test]
    fn line_comments_move_to_comment_channel() {
        let f = SourceFile::lex(
            "src/lib.rs",
            "let x = 1; // ORD: because\nx.unwrap(); /* tail */",
        );
        assert!(!f.lines[0].code.contains("ORD"));
        assert!(f.lines[0].comment.contains("ORD: because"));
        assert!(f.lines[1].code.contains(".unwrap()"));
        assert!(f.lines[1].comment.contains("tail"));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let c = codes("a /* one /* two */ still */ b\n/* open\n .unwrap() \n*/ c");
        assert!(c[0].contains('a') && c[0].contains('b'));
        assert!(!c[0].contains("still"));
        assert!(!c[2].contains(".unwrap()"));
        assert!(c[3].contains('c'));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let c = codes("let r = r#\"has .unwrap() and \"quotes\"\"#; let ch = '\\n'; let q = 'x';");
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("let ch = '"));
        // Lifetimes survive as code.
        let c2 = codes("fn f<'a>(x: &'a str) {}");
        assert!(c2[0].contains("<'a>"));
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let c = codes("let s = \"line one\n.unwrap() line two\";\nx.unwrap();");
        assert!(!c[1].contains(".unwrap()"));
        assert!(c[2].contains(".unwrap()"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}";
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].is_test);
        assert!(f.lines[1].is_test); // the attribute line itself
        assert!(f.lines[2].is_test);
        assert!(f.lines[3].is_test);
        assert!(f.lines[4].is_test);
        assert!(!f.lines[5].is_test);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_latch() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { body(); }";
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        assert!(!f.lines[2].is_test);
    }

    #[test]
    fn nested_cfg_test_is_absorbed() {
        let src = "#[cfg(test)]\nmod tests {\n    #[cfg(test)]\n    mod inner { fn t() {} }\n    fn t2() {}\n}\nfn lib() {}";
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        assert!(f.lines[3].is_test);
        assert!(f.lines[4].is_test);
        assert!(!f.lines[6].is_test);
    }

    #[test]
    fn classification() {
        assert_eq!(classify("crates/core/src/dcgen.rs"), FileKind::Library);
        assert_eq!(classify("src/lib.rs"), FileKind::Library);
        assert_eq!(classify("src/main.rs"), FileKind::Binary);
        assert_eq!(classify("crates/bench/src/bin/fig8.rs"), FileKind::Binary);
        assert_eq!(
            classify("crates/core/tests/fault_tolerance.rs"),
            FileKind::TestOnly
        );
        assert_eq!(classify("examples/quickstart.rs"), FileKind::TestOnly);
        assert_eq!(
            classify("crates/bench/benches/kernels.rs"),
            FileKind::TestOnly
        );
    }

    #[test]
    fn annotation_lookup_walks_comment_blocks() {
        let f = SourceFile::lex(
            "src/lib.rs",
            "// ORD: counters tolerate reordering\n// (second comment line)\nc.load(Ordering::Relaxed);\nd.load(Ordering::Relaxed);",
        );
        assert!(has_annotation(&f.lines, 2, "ORD:"));
        // Line 3 is separated from the comment block by a code line.
        assert!(!has_annotation(&f.lines, 3, "ORD:"));
    }
}
