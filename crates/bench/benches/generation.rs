//! Generation-path benchmarks: model sampling, D&C-GEN scheduling, PCFG
//! enumeration, and the evaluation metrics.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pagpass_datasets::{clean, SiteProfile};
use pagpass_eval::GuessCurve;
use pagpass_nn::GptConfig;
use pagpass_patterns::PatternDistribution;
use pagpass_pcfg::PcfgModel;
use pagpass_telemetry::{LogFormat, Telemetry};
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{DcGen, DcGenConfig, DcGenOptions, ModelKind, PasswordModel};

fn tiny_model() -> PasswordModel {
    PasswordModel::new(
        ModelKind::PagPassGpt,
        GptConfig {
            vocab_size: VOCAB_SIZE,
            ctx_len: 32,
            dim: 16,
            n_layers: 1,
            n_heads: 2,
        },
        1,
    )
}

fn bench_sampling(c: &mut Criterion) {
    let model = tiny_model();
    let pattern = "L6N2".parse().unwrap();
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(256));
    group.bench_function("free_256", |b| {
        b.iter(|| std::hint::black_box(model.generate_free(256, 1.0, 7)));
    });
    group.bench_function("guided_256", |b| {
        b.iter(|| std::hint::black_box(model.generate_guided(&pattern, 256, 1.0, 7)));
    });
    group.finish();
}

fn bench_dcgen(c: &mut Criterion) {
    let model = tiny_model();
    let corpus = clean(SiteProfile::rockyou().generate(2_000, 3)).retained;
    let patterns = PatternDistribution::from_passwords(corpus.iter().map(String::as_str));
    let mut group = c.benchmark_group("dcgen");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("budget_1000_threshold_64", |b| {
        b.iter(|| {
            let dc = DcGen::new(
                &model,
                DcGenConfig {
                    threshold: 64,
                    seed: 5,
                    ..DcGenConfig::new(1_000)
                },
            );
            std::hint::black_box(dc.run(&patterns).unwrap())
        });
    });
    // Same run with live telemetry attached; comparing against the run
    // above measures the instrumentation overhead (budgeted at <2%: the
    // hot path only touches relaxed atomics and a quiet sink).
    let tel = Telemetry::new(LogFormat::Text, true);
    group.bench_function("budget_1000_threshold_64_telemetry", |b| {
        b.iter(|| {
            let dc = DcGen::new(
                &model,
                DcGenConfig {
                    threshold: 64,
                    seed: 5,
                    ..DcGenConfig::new(1_000)
                },
            );
            let opts = DcGenOptions {
                telemetry: Some(&tel),
                ..DcGenOptions::default()
            };
            std::hint::black_box(dc.run_with(&patterns, &opts).unwrap())
        });
    });
    group.finish();
}

fn bench_pcfg_enumeration(c: &mut Criterion) {
    let corpus = clean(SiteProfile::rockyou().generate(5_000, 4)).retained;
    let model = PcfgModel::train(corpus.iter().map(String::as_str));
    let mut group = c.benchmark_group("pcfg");
    group.sample_size(10);
    group.throughput(Throughput::Elements(5_000));
    group.bench_function("enumerate_5000", |b| {
        b.iter(|| std::hint::black_box(model.guesses(5_000)));
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let test = clean(SiteProfile::rockyou().generate(5_000, 6)).retained;
    let guesses = clean(SiteProfile::linkedin().generate(20_000, 6)).retained;
    let budgets: Vec<usize> = vec![1_000, 5_000, guesses.len()];
    let mut group = c.benchmark_group("metrics");
    group.throughput(Throughput::Elements(guesses.len() as u64));
    group.bench_function("guess_curve", |b| {
        b.iter(|| std::hint::black_box(GuessCurve::compute(&guesses, &test, &budgets)));
    });
    group.bench_function("pattern_distance_top150", |b| {
        b.iter(|| std::hint::black_box(pagpass_eval::pattern_distance(&guesses, &test, 150)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sampling,
    bench_dcgen,
    bench_pcfg_enumeration,
    bench_metrics
);
criterion_main!(benches);
