//! Tokenizer and pattern-algebra throughput: these run once per training
//! password and once per generated guess, so they must stay cheap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pagpass_datasets::SiteProfile;
use pagpass_patterns::{Pattern, PatternDistribution};
use pagpass_tokenizer::Tokenizer;

fn bench_pattern_extraction(c: &mut Criterion) {
    let pwds = SiteProfile::rockyou().generate(2_000, 9);
    let mut group = c.benchmark_group("patterns");
    group.throughput(Throughput::Elements(pwds.len() as u64));
    group.bench_function("extract_2000", |b| {
        b.iter(|| {
            for pw in &pwds {
                let _ = std::hint::black_box(Pattern::of_password(pw));
            }
        });
    });
    group.bench_function("distribution_2000", |b| {
        b.iter(|| {
            std::hint::black_box(PatternDistribution::from_passwords(
                pwds.iter().map(String::as_str),
            ))
        });
    });
    group.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let tok = Tokenizer::new();
    let pwds = SiteProfile::rockyou().generate(2_000, 10);
    let encoded: Vec<Vec<u32>> = pwds
        .iter()
        .filter_map(|p| tok.encode_training(p).ok())
        .collect();
    let mut group = c.benchmark_group("tokenizer");
    group.throughput(Throughput::Elements(pwds.len() as u64));
    group.bench_function("encode_2000", |b| {
        b.iter(|| {
            for pw in &pwds {
                let _ = std::hint::black_box(tok.encode_training(pw));
            }
        });
    });
    group.throughput(Throughput::Elements(encoded.len() as u64));
    group.bench_function("decode_2000", |b| {
        b.iter(|| {
            for ids in &encoded {
                let _ = std::hint::black_box(tok.decode_rule(ids));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pattern_extraction, bench_tokenizer);
criterion_main!(benches);
