//! Micro-benchmarks of the nn substrate: matmul kernels, full training
//! steps, and KV-cached decode steps — the costs behind every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pagpass_nn::{AdamW, Gpt, GptConfig, Mat, Rng};
use pagpass_tokenizer::VOCAB_SIZE;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    let mut rng = Rng::seed_from(1);
    for n in [32usize, 64, 128] {
        let a = Mat::randn(n, n, 1.0, &mut rng);
        let b = Mat::randn(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
        group.bench_with_input(BenchmarkId::new("a_bt", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul_bt(&b)));
        });
    }
    group.finish();
}

fn bench_gpt_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpt_train_step");
    group.sample_size(10);
    for (name, config) in [
        (
            "tiny",
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
        ),
        ("small", GptConfig::small(VOCAB_SIZE)),
    ] {
        let mut model = Gpt::new(config, &mut Rng::seed_from(2));
        let mut opt = AdamW::new(1e-3);
        let b = 16;
        let t = 16;
        let tokens: Vec<u32> = (0..b * t).map(|i| (i % VOCAB_SIZE) as u32).collect();
        group.bench_function(BenchmarkId::new("batch16x16", name), |bench| {
            bench.iter(|| std::hint::black_box(model.train_step(&tokens, b, t, None, &mut opt)));
        });
    }
    group.finish();
}

fn bench_decode_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpt_decode_step");
    group.sample_size(20);
    let model = Gpt::new(GptConfig::small(VOCAB_SIZE), &mut Rng::seed_from(3));
    for batch in [1usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("kv_cached", batch),
            &batch,
            |bench, &batch| {
                bench.iter_batched(
                    || model.begin_decode(batch),
                    |mut state| {
                        let tokens = vec![1u32; batch];
                        for _ in 0..8 {
                            std::hint::black_box(model.decode_step(&tokens, &mut state));
                        }
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gpt_train_step,
    bench_decode_step
);
criterion_main!(benches);
