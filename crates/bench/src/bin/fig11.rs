//! Fig. 11 — PagPassGPT's length and pattern distances as the number of
//! generated passwords grows.
//!
//! Paper shape: both distances increase with the generation count (the
//! repeat rate rises, so the marginal distribution drifts from the test
//! set), with a visible jump toward the high end.

use pagpass_bench::report::pct;
use pagpass_bench::{runs, Context, Table};

fn main() {
    let ctx = Context::from_args();
    let r = runs::distribution_runs(&ctx);
    let mut table = Table::new(vec![
        "Generated".into(),
        "Length Distance".into(),
        "Pattern Distance".into(),
    ]);
    for (n, dlen, dpat) in &r.pagpass_curve {
        table.row(vec![n.to_string(), pct(*dlen), pct(*dpat)]);
    }
    println!(
        "Fig. 11 — PagPassGPT distances vs generation count ({} scale)",
        ctx.scale.name
    );
    table.print();
}
