//! Table VI — cross-site attack test: PassGPT, PagPassGPT, and
//! PagPassGPT-D&C trained on the RockYou-like and LinkedIn-like sites,
//! evaluated on the phpBB-, MySpace-, and Yahoo!-like sites.
//!
//! Paper shape: PagPassGPT generalizes better than PassGPT on every
//! (training, evaluation) pair, and D&C-GEN adds a further 3–10 points.

use pagpass_bench::report::pct;
use pagpass_bench::{save_json, Context, Table};
use pagpass_datasets::Site;
use pagpass_eval::hit_rate;
use pagpass_patterns::PatternDistribution;
use pagpassgpt::{DcGen, DcGenConfig, ModelKind};

fn main() {
    let ctx = Context::from_args();
    let n = *ctx.scale.budgets.last().expect("budgets non-empty");
    let eval_sites = [Site::PhpBb, Site::MySpace, Site::Yahoo];
    let mut json = Vec::new();
    for train_site in [Site::RockYou, Site::LinkedIn] {
        let passgpt = ctx.gpt_model(ModelKind::PassGpt, train_site);
        let pagpass = ctx.gpt_model(ModelKind::PagPassGpt, train_site);
        let split = ctx.split(train_site);
        let train_patterns =
            PatternDistribution::from_passwords(split.train.iter().map(String::as_str));

        eprintln!("[gen] PassGPT({train_site}) x{n}");
        let g_pass = passgpt.generate_free(n, 1.0, ctx.seed ^ 41);
        eprintln!("[gen] PagPassGPT({train_site}) x{n}");
        let g_pag = pagpass.generate_free(n, 1.0, ctx.seed ^ 42);
        eprintln!("[gen] PagPassGPT-D&C({train_site}) x{n}");
        let g_dc = DcGen::new(
            &pagpass,
            DcGenConfig {
                threshold: ctx.scale.dcgen_threshold,
                seed: ctx.seed ^ 43,
                ..DcGenConfig::new(n as u64)
            },
        )
        .run(&train_patterns)
        .expect("PagPassGPT kind")
        .passwords;

        let mut table = Table::new(vec![
            "Model".into(),
            "phpBB".into(),
            "MySpace".into(),
            "Yahoo!".into(),
        ]);
        for (name, guesses) in [
            ("PassGPT", &g_pass),
            ("PagPassGPT", &g_pag),
            ("PagPassGPT-D&C", &g_dc),
        ] {
            let mut row = vec![name.to_owned()];
            for site in eval_sites {
                // The paper evaluates on the *entire* cross-site dataset.
                let target = ctx.cleaned(site).retained;
                let rate = hit_rate(guesses, &target).rate();
                row.push(pct(rate));
                json.push((
                    train_site.name().to_owned(),
                    name.to_owned(),
                    site.name().to_owned(),
                    rate,
                ));
            }
            table.row(row);
        }
        println!(
            "Table VI — cross-site attack, trained on {train_site} ({} scale)",
            ctx.scale.name
        );
        table.print();
        println!();
    }
    save_json(&format!("table6-{}-s{}", ctx.scale.name, ctx.seed), &json)
        .expect("write bench result");
}
