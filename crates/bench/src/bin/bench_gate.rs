//! CI benchmark-regression gate.
//!
//! Reads the speedup ratios from a fresh bench report and the committed
//! baseline, and exits nonzero when any ratio regressed past the
//! tolerance — see [`pagpass_bench::gate`] for the comparison rules.
//!
//! ```text
//! cargo run --release -p pagpass-bench --bin gemm -- --smoke
//! cargo run --release -p pagpass-bench --bin bench_gate -- \
//!     --current crates/bench/results/gemm-smoke.json \
//!     --baseline crates/bench/bench_baseline.json
//! ```

use std::process::ExitCode;

use pagpass_bench::gate::{check, extract_speedups, DEFAULT_TOLERANCE};

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --current <report.json> --baseline <baseline.json> \
         [--tolerance <fraction>]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut current_path = None;
    let mut baseline_path = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--current" => current_path = args.next(),
            "--baseline" => baseline_path = args.next(),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let (Some(current_path), Some(baseline_path)) = (current_path, baseline_path) else {
        usage()
    };

    let load = |path: &str| -> std::collections::BTreeMap<String, f64> {
        let data = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
        extract_speedups(&data).unwrap_or_else(|e| panic!("bench_gate: cannot parse {path}: {e}"))
    };
    let current = load(&current_path);
    let baseline = load(&baseline_path);

    let violations = check(&current, &baseline, tolerance);
    if violations.is_empty() {
        for (key, value) in &current {
            let base = baseline.get(key).copied().unwrap_or(f64::NAN);
            eprintln!("[bench-gate] ok  {key}: {value:.3}x (baseline {base:.3}x)");
        }
        eprintln!(
            "[bench-gate] PASS: {} speedups within {:.0}% of baseline",
            baseline.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("[bench-gate] REGRESSION {v}");
        }
        eprintln!(
            "[bench-gate] FAIL: {} of {} gated speedups regressed",
            violations.len(),
            baseline.len()
        );
        ExitCode::FAILURE
    }
}
