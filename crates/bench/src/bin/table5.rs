//! Table V — length and pattern distances between each model's generated
//! passwords and the test set (Euclidean, Eqs. 6–7).
//!
//! Paper values: PagPassGPT 4.78% / 2.79% — the closest to the test set;
//! PassGPT 8.49% / 4.16%; PassFlow is the outlier (50.61% / 13.62%).

use pagpass_bench::report::pct;
use pagpass_bench::{runs, Context, Table};

fn main() {
    let ctx = Context::from_args();
    let r = runs::distribution_runs(&ctx);
    let mut table = Table::new(vec![
        "Model".into(),
        "Length Distance".into(),
        "Pattern Distance".into(),
    ]);
    for (model, dlen, dpat) in &r.models {
        table.row(vec![model.clone(), pct(*dlen), pct(*dpat)]);
    }
    println!(
        "Table V — distribution distances over {} generated passwords ({} scale)",
        r.generated, ctx.scale.name
    );
    table.print();
}
