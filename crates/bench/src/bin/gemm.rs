//! Paired GEMM benchmark — naive vs cache-blocked vs blocked+parallel.
//!
//! Times the matrix kernels (the order-preserving `matmul_into`,
//! `matmul_bt`, `matmul_t_accum` and the reassociating training kernels
//! `matmul_fast`, `matmul_bt_packed`, `matmul_t_accum_fast`) and a full GPT
//! train step under `KernelMode::Naive` (the pre-kernel-layer reference
//! loops) and `KernelMode::Blocked` on explicit pools of 1, 2 and 4
//! threads.
//!
//! Equality is asserted, not trusted: every blocked arm must be
//! bit-identical across thread counts, and the three order-preserving
//! kernels must be bit-identical to naive. The training kernels
//! reassociate their sums by design (that is where their speed comes
//! from), so they are checked against naive to a relative tolerance
//! instead; likewise the train-step arms assert the blocked run is bitwise
//! deterministic and within tolerance of the naive trajectory.
//!
//! The JSON report carries a flat `speedups` map of dimensionless
//! blocked-over-naive ratios — machine-relative numbers the `bench_gate`
//! binary compares against `crates/bench/bench_baseline.json` in CI.
//!
//! Run `cargo run --release -p pagpass-bench --bin gemm` for the full
//! configuration or with `-- --smoke` for the seconds-scale CI artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use pagpass_bench::save_json_str;
use pagpass_nn::{
    pool, set_force_portable, set_kernel_mode, AdamW, Gpt, GptConfig, KernelMode, Mat,
    QuantizedGpt, Rng, ThreadPool,
};
use pagpass_tokenizer::VOCAB_SIZE;

struct KernelTiming {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    naive_ms: f64,
    blocked_1t_ms: f64,
    blocked_2t_ms: f64,
    blocked_4t_ms: f64,
    /// naive / blocked on a 1-thread pool: the single-core kernel win.
    speedup_blocked: f64,
    /// naive / blocked on a 4-thread pool.
    speedup_4t: f64,
    /// All blocked arms bit-identical across thread counts.
    deterministic: bool,
    /// Blocked output bit-identical to the naive reference (false only for
    /// the reassociating packed kernel, which is tolerance-checked instead).
    bit_compat_with_naive: bool,
}

struct TrainStep {
    dim: usize,
    n_layers: usize,
    n_heads: usize,
    batch: usize,
    seq: usize,
    steps: usize,
    naive_ms: f64,
    blocked_4t_ms: f64,
    speedup: f64,
    /// Two independent blocked runs produced bit-identical loss curves.
    blocked_deterministic: bool,
    /// Max relative divergence between naive and blocked loss curves (the
    /// packed gradient kernel reassociates sums, so this is small but
    /// nonzero).
    losses_max_rel_diff: f64,
}

struct DecodeTiming {
    dim: usize,
    n_layers: usize,
    batch: usize,
    seq: usize,
    reps: usize,
    pinned_ms: f64,
    quantized_ms: f64,
    /// pinned / quantized: the `--kernel quantized` decode win.
    speedup: f64,
    /// Quantized logits bit-identical under SIMD and portable dispatch.
    dispatch_deterministic: bool,
    /// Max quantized-vs-pinned logit divergence relative to the largest
    /// logit magnitude (int8 quantization noise, bounded but nonzero).
    logits_max_rel_diff: f64,
}

struct Report {
    bench: &'static str,
    mode: &'static str,
    pool_threads: usize,
    kernels: Vec<KernelTiming>,
    train_step: TrainStep,
    decode: DecodeTiming,
    /// Dimensionless blocked-over-naive ratios, keyed for `bench_gate`.
    speedups: BTreeMap<String, f64>,
}

// The report is rendered by hand rather than through a serializer so the
// artifact is a pure function of the measurements and the binary works in
// dependency-stripped environments; `bench_gate` parses the flat
// `speedups` object back with an equally dependency-free scanner.
impl KernelTiming {
    fn json(&self) -> String {
        format!(
            "{{ \"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"reps\": {},\n      \
             \"naive_ms\": {:.3}, \"blocked_1t_ms\": {:.3}, \"blocked_2t_ms\": {:.3}, \
             \"blocked_4t_ms\": {:.3},\n      \
             \"speedup_blocked\": {:.3}, \"speedup_4t\": {:.3}, \
             \"deterministic\": {}, \"bit_compat_with_naive\": {} }}",
            self.kernel,
            self.m,
            self.k,
            self.n,
            self.reps,
            self.naive_ms,
            self.blocked_1t_ms,
            self.blocked_2t_ms,
            self.blocked_4t_ms,
            self.speedup_blocked,
            self.speedup_4t,
            self.deterministic,
            self.bit_compat_with_naive
        )
    }
}

impl TrainStep {
    fn json(&self) -> String {
        format!(
            "{{\n    \"dim\": {}, \"n_layers\": {}, \"n_heads\": {}, \"batch\": {}, \
             \"seq\": {}, \"steps\": {},\n    \
             \"naive_ms\": {:.3}, \"blocked_4t_ms\": {:.3}, \"speedup\": {:.3},\n    \
             \"blocked_deterministic\": {}, \"losses_max_rel_diff\": {:.3e}\n  }}",
            self.dim,
            self.n_layers,
            self.n_heads,
            self.batch,
            self.seq,
            self.steps,
            self.naive_ms,
            self.blocked_4t_ms,
            self.speedup,
            self.blocked_deterministic,
            self.losses_max_rel_diff
        )
    }
}

impl DecodeTiming {
    fn json(&self) -> String {
        format!(
            "{{\n    \"dim\": {}, \"n_layers\": {}, \"batch\": {}, \"seq\": {}, \"reps\": {},\n    \
             \"pinned_ms\": {:.3}, \"quantized_ms\": {:.3}, \"speedup\": {:.3},\n    \
             \"dispatch_deterministic\": {}, \"logits_max_rel_diff\": {:.3e}\n  }}",
            self.dim,
            self.n_layers,
            self.batch,
            self.seq,
            self.reps,
            self.pinned_ms,
            self.quantized_ms,
            self.speedup,
            self.dispatch_deterministic,
            self.logits_max_rel_diff
        )
    }
}

impl Report {
    fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(out, "  \"pool_threads\": {},", self.pool_threads);
        out.push_str("  \"kernels\": [\n");
        for (i, kt) in self.kernels.iter().enumerate() {
            let sep = if i + 1 < self.kernels.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{sep}", kt.json());
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"train_step\": {},", self.train_step.json());
        let _ = writeln!(out, "  \"decode\": {},", self.decode.json());
        out.push_str("  \"speedups\": {\n");
        for (i, (key, value)) in self.speedups.iter().enumerate() {
            let sep = if i + 1 < self.speedups.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{key}\": {value:.3}{sep}");
        }
        out.push_str("  }\n}\n");
        out
    }
}

struct Setup {
    mode: &'static str,
    /// (m, k, n) per kernel micro-benchmark.
    shape: (usize, usize, usize),
    kernel_reps: usize,
    config: GptConfig,
    batch: usize,
    seq: usize,
    train_steps: usize,
}

fn setup(smoke: bool) -> Setup {
    if smoke {
        Setup {
            mode: "smoke",
            shape: (64, 128, 128),
            kernel_reps: 40,
            config: GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 32,
                n_layers: 1,
                n_heads: 2,
            },
            batch: 8,
            seq: 16,
            train_steps: 3,
        }
    } else {
        Setup {
            mode: "full",
            shape: (256, 384, 384),
            kernel_reps: 60,
            config: GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 96,
                n_layers: 3,
                n_heads: 4,
            },
            batch: 32,
            seq: 24,
            train_steps: 6,
        }
    }
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn max_rel_diff(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let scale = x.abs().max(y.abs()).max(1e-12);
            f64::from((x - y).abs() / scale)
        })
        .fold(0.0, f64::max)
}

/// Times `reps` runs of one kernel arm; returns (total ms, last output).
fn time_kernel(reps: usize, mut run: impl FnMut() -> Mat) -> (f64, Mat) {
    let mut out = run(); // warmup, untimed
    let start = Instant::now();
    for _ in 0..reps {
        out = run();
    }
    (ms(start), out)
}

fn bench_kernel(
    kernel: &'static str,
    shape: (usize, usize, usize),
    reps: usize,
    rng: &mut Rng,
    pools: &[ThreadPool],
) -> KernelTiming {
    let (m, k, n) = shape;
    // matmul_bt takes an n×k rhs; the other kernels consume k-leading
    // operands.
    let a = Mat::randn(m, k, 1.0, rng);
    let b_kn = Mat::randn(k, n, 1.0, rng);
    let b_nk = Mat::randn(n, k, 1.0, rng);
    let x_mk = Mat::randn(m, k, 1.0, rng);
    let dy_mn = Mat::randn(m, n, 1.0, rng);

    let run_arm = |pool: Option<&ThreadPool>| -> (f64, Mat) {
        match kernel {
            "matmul_into" => time_kernel(reps, || {
                let mut out = Mat::zeros(m, n);
                match pool {
                    None => a.matmul_into(&b_kn, &mut out),
                    Some(p) => a.matmul_into_on(&b_kn, &mut out, p),
                }
                out
            }),
            "matmul_bt" => time_kernel(reps, || match pool {
                None => a.matmul_bt(&b_nk),
                Some(p) => a.matmul_bt_on(&b_nk, p),
            }),
            "matmul_bt_packed" => time_kernel(reps, || match pool {
                None => a.matmul_bt_packed(&b_nk),
                Some(p) => a.matmul_bt_packed_on(&b_nk, p),
            }),
            "matmul_fast" => time_kernel(reps, || match pool {
                None => a.matmul_fast(&b_kn),
                Some(p) => a.matmul_fast_on(&b_kn, p),
            }),
            "matmul_t_accum_fast" => time_kernel(reps, || {
                let mut out = Mat::zeros(k, n);
                match pool {
                    None => x_mk.matmul_t_accum_fast(&dy_mn, &mut out),
                    Some(p) => x_mk.matmul_t_accum_fast_on(&dy_mn, &mut out, p),
                }
                out
            }),
            "matmul_t_accum" => time_kernel(reps, || {
                let mut out = Mat::zeros(k, n);
                match pool {
                    None => x_mk.matmul_t_accum(&dy_mn, &mut out),
                    Some(p) => x_mk.matmul_t_accum_on(&dy_mn, &mut out, p),
                }
                out
            }),
            other => unreachable!("unknown kernel {other}"),
        }
    };

    set_kernel_mode(KernelMode::Naive);
    let (naive_ms, naive_out) = run_arm(None);
    set_kernel_mode(KernelMode::Blocked);

    let mut arm_ms = [0.0f64; 3];
    let mut arm_outs = Vec::with_capacity(3);
    for (slot, pool) in arm_ms.iter_mut().zip(pools) {
        let (t, out) = run_arm(Some(pool));
        *slot = t;
        arm_outs.push(out);
    }
    let deterministic = arm_outs.iter().all(|o| *o == arm_outs[0]);
    assert!(
        deterministic,
        "{kernel}: blocked arms diverged across thread counts"
    );
    let bit_compat_with_naive = arm_outs[0] == naive_out;
    let reassociating = matches!(
        kernel,
        "matmul_bt_packed" | "matmul_fast" | "matmul_t_accum_fast"
    );
    if reassociating {
        // Normalize by the output's magnitude: elementwise relative error is
        // meaningless where random sums cancel to near zero.
        let scale = naive_out
            .as_slice()
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()));
        let drift = naive_out
            .as_slice()
            .iter()
            .zip(arm_outs[0].as_slice())
            .map(|(&x, &y)| f64::from((x - y).abs() / scale))
            .fold(0.0, f64::max);
        assert!(
            drift < 1e-5,
            "{kernel}: reassociation drift {drift} too large"
        );
    } else {
        assert!(
            bit_compat_with_naive,
            "{kernel}: blocked output diverged from naive"
        );
    }

    eprintln!(
        "[gemm] {kernel:<16} {m}x{k}x{n}: naive {naive_ms:>8.1}ms  blocked(1t) {:>8.1}ms  \
         (2t) {:>8.1}ms  (4t) {:>8.1}ms",
        arm_ms[0], arm_ms[1], arm_ms[2]
    );
    KernelTiming {
        kernel,
        m,
        k,
        n,
        reps,
        naive_ms,
        blocked_1t_ms: arm_ms[0],
        blocked_2t_ms: arm_ms[1],
        blocked_4t_ms: arm_ms[2],
        speedup_blocked: naive_ms / arm_ms[0],
        speedup_4t: naive_ms / arm_ms[2],
        deterministic,
        bit_compat_with_naive,
    }
}

/// Runs `steps` optimizer steps from a fresh deterministic model; returns
/// (wall ms, per-step losses).
fn run_training(s: &Setup, mode: KernelMode) -> (f64, Vec<f32>) {
    set_kernel_mode(mode);
    let mut model = Gpt::new(s.config, &mut Rng::seed_from(5));
    let mut opt = AdamW::new(3e-4);
    let mut data_rng = Rng::seed_from(17);
    let batches: Vec<Vec<u32>> = (0..s.train_steps)
        .map(|_| {
            (0..s.batch * s.seq)
                .map(|_| data_rng.below(s.config.vocab_size) as u32)
                .collect()
        })
        .collect();
    // Warmup one untimed step so page faults and allocator growth are paid
    // before the clock starts.
    let mut warm = Gpt::new(s.config, &mut Rng::seed_from(5));
    let _ = warm.train_step(&batches[0], s.batch, s.seq, None, &mut AdamW::new(3e-4));

    let start = Instant::now();
    let losses = batches
        .iter()
        .map(|tokens| model.train_step(tokens, s.batch, s.seq, None, &mut opt))
        .collect();
    let wall = ms(start);
    set_kernel_mode(KernelMode::Blocked);
    (wall, losses)
}

/// Times a KV-cached decode loop under the pinned blocked f32 kernels and
/// under the packed int8 kernels (`decode_quantized_vs_pinned` in the
/// gated speedups). The pack itself (`Gpt::quantize`) runs untimed: it is
/// the once-per-session cost an `InferenceSession` pays at build, not a
/// per-token cost. The quantized arm must be bitwise identical under SIMD
/// and portable dispatch, and its logits must sit within int8 noise of the
/// pinned logits.
fn bench_decode(s: &Setup) -> DecodeTiming {
    set_kernel_mode(KernelMode::Blocked);
    let gpt = Gpt::new(s.config, &mut Rng::seed_from(5));
    let mut data_rng = Rng::seed_from(23);
    let steps: Vec<Vec<u32>> = (0..s.seq)
        .map(|_| {
            (0..s.batch)
                .map(|_| data_rng.below(s.config.vocab_size) as u32)
                .collect()
        })
        .collect();
    let q = gpt.quantize();

    let run = |quant: Option<&QuantizedGpt>| -> Mat {
        let mut state = gpt.begin_decode(s.batch);
        let mut logits = None;
        for tokens in &steps {
            logits = Some(gpt.decode_step_with(quant, tokens, &mut state));
        }
        logits.expect("at least one decode step")
    };

    let (pinned_ms, pinned_logits) = time_kernel(s.kernel_reps, || run(None));
    let (quantized_ms, quant_logits) = time_kernel(s.kernel_reps, || run(Some(&q)));

    set_force_portable(true);
    let portable_logits = run(Some(&q));
    set_force_portable(false);
    let dispatch_deterministic = portable_logits == quant_logits;
    assert!(
        dispatch_deterministic,
        "quantized decode diverged between SIMD and portable dispatch"
    );

    let scale = pinned_logits
        .as_slice()
        .iter()
        .fold(0.0f32, |m, v| m.max(v.abs()));
    let logits_max_rel_diff = pinned_logits
        .as_slice()
        .iter()
        .zip(quant_logits.as_slice())
        .map(|(&x, &y)| f64::from((x - y).abs() / scale))
        .fold(0.0, f64::max);
    assert!(
        logits_max_rel_diff < 0.05,
        "quantized logits drifted {logits_max_rel_diff} from pinned — \
         beyond int8 noise, a kernel bug"
    );

    let timing = DecodeTiming {
        dim: s.config.dim,
        n_layers: s.config.n_layers,
        batch: s.batch,
        seq: s.seq,
        reps: s.kernel_reps,
        pinned_ms,
        quantized_ms,
        speedup: pinned_ms / quantized_ms,
        dispatch_deterministic,
        logits_max_rel_diff,
    };
    eprintln!(
        "[gemm] decode dim={} batch={}x{}: pinned {pinned_ms:.1}ms  quantized \
         {quantized_ms:.1}ms  speedup {:.2}x  logit drift {logits_max_rel_diff:.2e}",
        s.config.dim, s.batch, s.seq, timing.speedup
    );
    timing
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = setup(smoke);
    let pool_threads = pool::configure(4);
    eprintln!("[gemm] mode={} global pool={pool_threads} threads", s.mode);

    let pools = [ThreadPool::new(1), ThreadPool::new(2), ThreadPool::new(4)];
    let mut rng = Rng::seed_from(9);
    let kernels: Vec<KernelTiming> = [
        "matmul_into",
        "matmul_bt",
        "matmul_bt_packed",
        "matmul_fast",
        "matmul_t_accum",
        "matmul_t_accum_fast",
    ]
    .into_iter()
    .map(|k| bench_kernel(k, s.shape, s.kernel_reps, &mut rng, &pools))
    .collect();

    eprintln!(
        "[gemm] train step: dim={} layers={} batch={}x{} steps={}",
        s.config.dim, s.config.n_layers, s.batch, s.seq, s.train_steps
    );
    let (naive_ms, naive_losses) = run_training(&s, KernelMode::Naive);
    let (blocked_ms, blocked_losses) = run_training(&s, KernelMode::Blocked);
    let (_, blocked_again) = run_training(&s, KernelMode::Blocked);
    let blocked_deterministic = blocked_losses == blocked_again;
    assert!(
        blocked_deterministic,
        "blocked training is non-deterministic: {blocked_losses:?} vs {blocked_again:?}"
    );
    let losses_max_rel_diff = max_rel_diff(&naive_losses, &blocked_losses);
    assert!(
        losses_max_rel_diff < 5e-3,
        "train-step losses drifted: naive {naive_losses:?} vs blocked {blocked_losses:?}"
    );
    let train = TrainStep {
        dim: s.config.dim,
        n_layers: s.config.n_layers,
        n_heads: s.config.n_heads,
        batch: s.batch,
        seq: s.seq,
        steps: s.train_steps,
        naive_ms,
        blocked_4t_ms: blocked_ms,
        speedup: naive_ms / blocked_ms,
        blocked_deterministic,
        losses_max_rel_diff,
    };
    eprintln!(
        "[gemm] train step: naive {naive_ms:.1}ms  blocked(4t pool) {blocked_ms:.1}ms  \
         speedup {:.2}x  loss drift {losses_max_rel_diff:.2e}",
        train.speedup
    );

    let decode = bench_decode(&s);

    let mut speedups = BTreeMap::new();
    for kt in &kernels {
        speedups.insert(kt.kernel.to_string(), kt.speedup_blocked);
    }
    speedups.insert("train_step".to_string(), train.speedup);
    speedups.insert("decode_quantized_vs_pinned".to_string(), decode.speedup);

    let report = Report {
        bench: "gemm",
        mode: s.mode,
        pool_threads,
        kernels,
        train_step: train,
        decode,
        speedups,
    };
    save_json_str(&format!("gemm-{}", s.mode), &report.json()).expect("write bench result");
}
