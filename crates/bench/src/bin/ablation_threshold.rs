//! Ablation — D&C-GEN division threshold `T` sweep (the trade-off the
//! paper discusses in §III-C2 and §V: smaller `T` → more divisions, lower
//! repeat rate, more scheduling work).
//!
//! Also includes the `--uniform` allocation ablation: splitting the budget
//! uniformly across patterns instead of by the empirical prior.

use pagpass_bench::report::pct;
use pagpass_bench::{save_json, Context, Table};
use pagpass_datasets::Site;
use pagpass_eval::{hit_rate, repeat_rate};
use pagpass_patterns::PatternDistribution;
use pagpassgpt::{DcGen, DcGenConfig, ModelKind};

fn main() {
    let ctx = Context::from_args();
    let site = Site::RockYou;
    let split = ctx.split(site);
    let model = ctx.gpt_model(ModelKind::PagPassGpt, site);
    let patterns = PatternDistribution::from_passwords(split.train.iter().map(String::as_str));
    let n = ctx.scale.budgets[ctx.scale.budgets.len().saturating_sub(2)] as u64;

    let mut table = Table::new(vec![
        "T".into(),
        "Allocation".into(),
        "Hit rate".into(),
        "Repeat rate".into(),
        "Leaves".into(),
        "Expansions".into(),
    ]);
    let mut json = Vec::new();
    let base = ctx.scale.dcgen_threshold;
    for (t, uniform) in [
        (base / 4, false),
        (base, false),
        (base * 4, false),
        (base * 16, false),
        (base, true),
    ] {
        let report = DcGen::new(
            &model,
            DcGenConfig {
                threshold: t.max(1),
                uniform_patterns: uniform,
                seed: ctx.seed ^ 51,
                ..DcGenConfig::new(n)
            },
        )
        .run(&patterns)
        .expect("PagPassGPT kind");
        let hr = hit_rate(&report.passwords, &split.test).rate();
        let rr = repeat_rate(&report.passwords);
        table.row(vec![
            t.to_string(),
            if uniform { "uniform" } else { "Pr(P)" }.into(),
            pct(hr),
            pct(rr),
            report.leaf_tasks.to_string(),
            report.expansions.to_string(),
        ]);
        json.push((t, uniform, hr, rr, report.leaf_tasks, report.expansions));
    }
    println!(
        "Ablation — D&C-GEN threshold sweep at N={n} ({} scale)",
        ctx.scale.name
    );
    table.print();
    save_json(
        &format!("ablation-threshold-{}-s{}", ctx.scale.name, ctx.seed),
        &json,
    )
    .expect("write bench result");
}
