//! Table II — key characteristics of the applied datasets: unique entries,
//! cleaned entries, and retention rate per site.
//!
//! Paper values (real leaks): RockYou 14 344 391 / 13 265 184 / 92.5%,
//! LinkedIn 60 525 521 / 49 776 665 / 82.2%, phpBB 98.4%, MySpace 98.0%,
//! Yahoo! 98.5%. The synthetic sites reproduce the retention ordering and
//! magnitudes at reduced size.

use pagpass_bench::report::pct;
use pagpass_bench::{save_json, Context, Table};
use pagpass_datasets::Site;

fn main() {
    let ctx = Context::from_args();
    let mut table = Table::new(vec![
        "Name".into(),
        "Unique".into(),
        "Cleaned".into(),
        "Retention rate".into(),
    ]);
    let mut json = Vec::new();
    for site in Site::ALL {
        let report = ctx.cleaned(site);
        table.row(vec![
            site.name().into(),
            report.unique_total.to_string(),
            report.retained.len().to_string(),
            pct(report.retention_rate()),
        ]);
        json.push((
            site.name().to_owned(),
            report.unique_total,
            report.retained.len(),
            report.retention_rate(),
        ));
    }
    println!(
        "Table II — key characteristics of applied datasets ({} scale)",
        ctx.scale.name
    );
    table.print();
    save_json(&format!("table2-{}-s{}", ctx.scale.name, ctx.seed), &json)
        .expect("write bench result");
}
