//! Closed-loop, fault-injected load test for `pagpass serve`.
//!
//! Boots an in-process server on an ephemeral loopback port and drives it
//! through a deterministic fault schedule in four sequential phases:
//!
//! 1. **Closed loop** — concurrent clients (one deliberately slow) each
//!    keep exactly one request in flight, while a `FaultPlan` injects
//!    scoring panics keyed on admission sequence numbers: two transient
//!    (panic once) and one poisoned (panics on every attempt). Every
//!    scored response is checked bit-identical against a solo
//!    `InferenceSession`.
//! 2. **Backpressure blast** — one client writes a large burst without
//!    reading, overrunning the admission queue; the server must answer
//!    reject-with-retry-after rather than queue unboundedly.
//! 3. **Deadline storm** — every request carries `deadline_ms: 0`, so all
//!    of them must be shed before scoring.
//! 4. **Mid-request disconnect** — a client sends requests and drops the
//!    connection without reading; the server sheds or drops responses but
//!    may not lose requests.
//!
//! After a drain the `ServeReport` must reconcile (`admitted == completed
//! + shed + failed`, `lost == 0`) — the binary asserts this and the
//! per-phase expectations, then measures the paired batched-vs-solo
//! scoring speedup that continuous batching buys and writes a gateable
//! report with a flat `speedups` object.
//!
//! Run with `-- --smoke` for the seconds-scale CI configuration.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use pagpass_bench::save_json;
use pagpass_nn::GptConfig;
use pagpass_telemetry::{parse_json, JsonValue, LogFormat, Telemetry};
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{
    run_with_listener, CancelToken, FaultPlan, InferenceSession, ModelKind, PasswordModel,
    ServeConfig, ServeReport,
};
use serde::Serialize;

struct Setup {
    mode: &'static str,
    config: GptConfig,
    clients: usize,
    requests_per_client: usize,
    blast: usize,
    storm: usize,
    disconnect: usize,
    paired_batch: usize,
    paired_reps: usize,
}

fn setup(smoke: bool) -> Setup {
    if smoke {
        Setup {
            mode: "smoke",
            config: GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            clients: 4,
            requests_per_client: 24,
            blast: 300,
            storm: 20,
            disconnect: 10,
            paired_batch: 16,
            paired_reps: 10,
        }
    } else {
        Setup {
            mode: "full",
            config: GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 48,
                n_layers: 2,
                n_heads: 4,
            },
            clients: 6,
            requests_per_client: 50,
            blast: 600,
            storm: 40,
            disconnect: 20,
            paired_batch: 32,
            paired_reps: 20,
        }
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        queue_cap: 8,
        // One worker so the backpressure blast reliably outruns the drain.
        sessions: 1,
        ..ServeConfig::default()
    }
}

/// A deterministic, scorable password for client `c`'s `i`-th request.
fn password(c: usize, i: usize) -> String {
    format!("pw{c}n{i:03}")
}

#[derive(Default)]
struct ClientStats {
    scored: Vec<(String, f64)>,
    failed: usize,
    rejected: usize,
    shed: usize,
    other: usize,
}

fn is_true(v: Option<&JsonValue>) -> bool {
    matches!(v, Some(JsonValue::Bool(true)))
}

/// Classifies one response line. Scored responses are paired with their
/// password via the echoed `id` (`id = client * 1000 + i`), because
/// responses on a shared connection interleave: rejections come straight
/// back from the reader while admitted requests finish later.
fn classify(line: &str, stats: &mut ClientStats) {
    let v = parse_json(line.trim()).expect("response is valid JSON");
    if is_true(v.get("ok")) {
        let id = v
            .get("id")
            .and_then(JsonValue::as_f64)
            .map(|x| x as u64)
            .expect("scored responses echo the request id");
        let lp = v
            .get("ln_prob")
            .and_then(JsonValue::as_f64)
            .expect("ok responses carry ln_prob");
        let pw = password((id / 1000) as usize, (id % 1000) as usize);
        stats.scored.push((pw, lp));
    } else if is_true(v.get("failed")) {
        stats.failed += 1;
    } else if is_true(v.get("rejected")) {
        stats.rejected += 1;
    } else if is_true(v.get("shed")) {
        stats.shed += 1;
    } else {
        stats.other += 1;
    }
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect to server");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

/// One request in flight at a time; `slow` adds think time between
/// requests to spread waves out.
fn closed_loop_client(addr: SocketAddr, c: usize, requests: usize, slow: bool) -> ClientStats {
    let (mut stream, mut reader) = connect(addr);
    let mut stats = ClientStats::default();
    for i in 0..requests {
        let pw = password(c, i);
        let line = format!("{{\"password\":\"{pw}\",\"id\":{}}}\n", c * 1000 + i);
        stream.write_all(line.as_bytes()).expect("send request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        classify(&response, &mut stats);
        if slow {
            thread::sleep(Duration::from_millis(2));
        }
    }
    stats
}

/// Writes `n` requests in one burst without reading, then collects all `n`
/// responses. With the queue capped and a single worker, a burst this size
/// must overrun admission and draw explicit rejections.
fn blast_client(addr: SocketAddr, c: usize, n: usize) -> ClientStats {
    let (mut stream, mut reader) = connect(addr);
    let mut burst = String::new();
    for i in 0..n {
        let pw = password(c, i);
        burst.push_str(&format!(
            "{{\"password\":\"{pw}\",\"id\":{}}}\n",
            c * 1000 + i
        ));
    }
    stream.write_all(burst.as_bytes()).expect("send burst");
    let mut stats = ClientStats::default();
    for _ in 0..n {
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        classify(&response, &mut stats);
    }
    stats
}

/// Closed-loop requests that are already expired on arrival; every one
/// must be shed, never scored.
fn deadline_storm_client(addr: SocketAddr, c: usize, n: usize) -> ClientStats {
    let (mut stream, mut reader) = connect(addr);
    let mut stats = ClientStats::default();
    for i in 0..n {
        let pw = password(c, i);
        let line = format!(
            "{{\"password\":\"{pw}\",\"id\":{},\"deadline_ms\":0}}\n",
            c * 1000 + i
        );
        stream.write_all(line.as_bytes()).expect("send request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        classify(&response, &mut stats);
    }
    stats
}

/// Sends `n` requests and hangs up without reading a single response.
fn disconnect_client(addr: SocketAddr, c: usize, n: usize) {
    let (mut stream, _reader) = connect(addr);
    let mut burst = String::new();
    for i in 0..n {
        burst.push_str(&format!("{{\"password\":\"{}\"}}\n", password(c, i)));
    }
    stream.write_all(burst.as_bytes()).expect("send burst");
    // Drop both halves: the server observes EOF and must shed or drop
    // whatever it has not answered yet, losing nothing silently.
}

#[derive(Serialize)]
struct ServerStats {
    admitted: u64,
    completed: u64,
    shed: u64,
    failed: u64,
    rejected: u64,
    panics: u64,
    bad_requests: u64,
    dropped_responses: u64,
    lost: u64,
    reconciles: bool,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
}

#[derive(Serialize)]
struct LoadStats {
    closed_loop_requests: usize,
    scored: usize,
    failed_seen: usize,
    rejected_seen: usize,
    storm_shed: usize,
    scores_bit_identical_to_solo: bool,
}

#[derive(Serialize)]
struct Paired {
    batch: usize,
    reps: usize,
    solo_ms: f64,
    batched_ms: f64,
    bit_identical: bool,
}

#[derive(Serialize)]
struct Speedups {
    serve_batched_scoring: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    model_dim: usize,
    model_layers: usize,
    server: ServerStats,
    load: LoadStats,
    paired: Paired,
    speedups: Speedups,
}

/// Paired measurement of the win continuous batching buys: scoring the
/// same `batch` passwords one at a time on a reused session versus one
/// batched forward. Scores must agree bitwise; only the time may differ.
fn paired_scoring(model: &PasswordModel, batch: usize, reps: usize) -> Paired {
    let passwords: Vec<String> = (0..batch).map(|i| password(9, i)).collect();
    let mut solo_ms = 0.0;
    let mut batched_ms = 0.0;
    let mut bit_identical = true;
    for _ in 0..reps {
        let mut solo_session = InferenceSession::new(model);
        let start = Instant::now();
        let solo: Vec<f64> = passwords
            .iter()
            .map(|pw| solo_session.log_probability(pw).expect("scorable"))
            .collect();
        solo_ms += start.elapsed().as_secs_f64() * 1e3;

        let mut batch_session = InferenceSession::new(model);
        let start = Instant::now();
        let batched = batch_session.score_batch(&passwords);
        batched_ms += start.elapsed().as_secs_f64() * 1e3;

        for (a, b) in solo.iter().zip(&batched) {
            match b {
                Ok(b) if a == b => {}
                _ => bit_identical = false,
            }
        }
    }
    Paired {
        batch,
        reps,
        solo_ms,
        batched_ms,
        bit_identical,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = setup(smoke);
    let model = PasswordModel::new(ModelKind::PagPassGpt, s.config, 7);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let cancel = CancelToken::new();
    let tel = Telemetry::to_writer(LogFormat::Json, Box::new(std::io::sink()));
    let cfg = serve_config();
    // Deterministic schedule: seqs 5 and 17 panic once (the wave retries
    // and recovers), seq 11 panics on every attempt (poisoned — must fail
    // without touching its co-batched neighbours). All three fall inside
    // the closed-loop phase's admissions.
    let fault = FaultPlan::new()
        .panic_task_once(5)
        .panic_task_once(17)
        .panic_task_always(11);

    let (report, closed, blast, storm) = thread::scope(|scope| {
        let server = scope.spawn(|| {
            run_with_listener(&model, &listener, &cfg, &cancel, &tel, Some(&fault))
                .expect("server run")
        });

        // Phase 1: concurrent closed-loop clients, client 0 slow.
        let clients: Vec<_> = (0..s.clients)
            .map(|c| {
                scope.spawn(move || closed_loop_client(addr, c, s.requests_per_client, c == 0))
            })
            .collect();
        let mut closed = ClientStats::default();
        for handle in clients {
            let got = handle.join().expect("client thread");
            closed.scored.extend(got.scored);
            closed.failed += got.failed;
            closed.rejected += got.rejected;
            closed.shed += got.shed;
            closed.other += got.other;
        }

        // Phase 2: backpressure blast.
        let blast = blast_client(addr, 90, s.blast);

        // Phase 3: deadline storm.
        let storm = deadline_storm_client(addr, 91, s.storm);

        // Phase 4: mid-request disconnect, then drain.
        disconnect_client(addr, 92, s.disconnect);
        thread::sleep(Duration::from_millis(150));
        cancel.cancel();
        let report = server.join().expect("server thread");
        (report, closed, blast, storm)
    });

    let scores_ok = verify_scores(&model, closed.scored.iter().chain(&blast.scored));
    let paired = paired_scoring(&model, s.paired_batch, s.paired_reps);
    let out = render(&s, &report, &closed, &blast, &storm, scores_ok, paired);

    println!(
        "serve_load[{}]: admitted {} completed {} shed {} failed {} rejected {} \
         panics {} lost {} | p50 {:.2}ms p99 {:.2}ms | batched scoring {:.2}x",
        s.mode,
        report.admitted,
        report.completed,
        report.shed,
        report.failed,
        report.rejected,
        report.panics,
        report.lost,
        report.p50_latency_ms.unwrap_or(0.0),
        report.p99_latency_ms.unwrap_or(0.0),
        out.speedups.serve_batched_scoring,
    );
    save_json(&format!("serve-load-{}", s.mode), &out).expect("write bench result");

    // Acceptance checks — a violated robustness contract fails the run.
    assert!(out.server.reconciles, "counters must reconcile: {report:?}");
    assert_eq!(report.lost, 0, "no admitted request may be lost silently");
    assert_eq!(
        closed.failed, 1,
        "exactly the poisoned request fails in the closed-loop phase"
    );
    assert!(
        report.panics >= 3,
        "all injected panics must be contained, got {}",
        report.panics
    );
    assert!(
        blast.rejected > 0,
        "the blast must draw explicit rejections, not unbounded queueing"
    );
    assert_eq!(
        storm.shed, s.storm,
        "every zero-deadline request must be shed before scoring"
    );
    assert!(scores_ok, "served scores must be bit-identical to solo");
    assert!(
        out.paired.bit_identical,
        "batched scores must match solo bitwise"
    );
}

/// Re-scores every served password on a fresh solo session and demands
/// bitwise equality — the server's batching must be invisible in the
/// output.
fn verify_scores<'a>(
    model: &PasswordModel,
    scored: impl Iterator<Item = &'a (String, f64)>,
) -> bool {
    let mut session = InferenceSession::new(model);
    let mut ok = true;
    for (pw, served) in scored {
        let solo = session.log_probability(pw).expect("scorable password");
        if solo != *served {
            eprintln!("[serve_load] MISMATCH {pw}: served {served} solo {solo}");
            ok = false;
        }
    }
    ok
}

#[allow(clippy::too_many_arguments)]
fn render(
    s: &Setup,
    report: &ServeReport,
    closed: &ClientStats,
    blast: &ClientStats,
    storm: &ClientStats,
    scores_ok: bool,
    paired: Paired,
) -> Report {
    Report {
        bench: "serve_load",
        mode: s.mode,
        model_dim: s.config.dim,
        model_layers: s.config.n_layers,
        server: ServerStats {
            admitted: report.admitted,
            completed: report.completed,
            shed: report.shed,
            failed: report.failed,
            rejected: report.rejected,
            panics: report.panics,
            bad_requests: report.bad_requests,
            dropped_responses: report.dropped_responses,
            lost: report.lost,
            reconciles: report.reconciles(),
            p50_latency_ms: report.p50_latency_ms.unwrap_or(0.0),
            p99_latency_ms: report.p99_latency_ms.unwrap_or(0.0),
        },
        load: LoadStats {
            closed_loop_requests: s.clients * s.requests_per_client,
            scored: closed.scored.len() + blast.scored.len(),
            failed_seen: closed.failed,
            rejected_seen: blast.rejected,
            storm_shed: storm.shed,
            scores_bit_identical_to_solo: scores_ok,
        },
        speedups: Speedups {
            serve_batched_scoring: paired.solo_ms / paired.batched_ms.max(1e-9),
        },
        paired,
    }
}
