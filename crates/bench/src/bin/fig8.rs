//! Fig. 8 — category hit rate `HR_s` of PassGPT vs PagPassGPT for pattern
//! categories with s = 1..12 segments (pattern-guided guessing test).
//!
//! Paper shape: PagPassGPT ≥ PassGPT everywhere; the gap peaks mid-range
//! (paper: s = 5 with 13.00% vs 40.54%) and PassGPT collapses to ~0 for
//! s > 9 while PagPassGPT stays useful.

use pagpass_bench::report::pct;
use pagpass_bench::{runs, Context, Table};

fn main() {
    let ctx = Context::from_args();
    let r = runs::guided_runs(&ctx);
    let mut table = Table::new(vec![
        "Segments".into(),
        "HR_s PassGPT".into(),
        "HR_s PagPassGPT".into(),
    ]);
    for &(segments, hr_pass, hr_pag) in &r.categories {
        table.row(vec![segments.to_string(), pct(hr_pass), pct(hr_pag)]);
    }
    println!(
        "Fig. 8 — HR_s per pattern category ({} guesses/pattern, {} scale)",
        r.per_pattern, ctx.scale.name
    );
    table.print();
}
