//! Scheduler comparison — D&C-GEN, SOPG ordered enumeration, and plain
//! sampling driving the same worker pool at the same guess budget.
//!
//! The corpus is synthetic with a deliberately small pattern search
//! space, so even the untrained model's near-uniform guesses land hits
//! and the comparison exercises the schedulers (ordering, budget
//! division, repeats) rather than model quality. The report embeds a
//! [`SchedulerComparison`] that must pass its own `validate()` — in
//! particular SOPG must show exactly zero repeats and monotone
//! non-increasing emission log-probabilities — plus a flat `speedups`
//! object so `bench_gate` can gate the dcgen-vs-sopg throughput ratio.
//!
//! Run `cargo run --release -p pagpass-bench --bin sched_compare` for
//! the full configuration or with `-- --smoke` for the CI scale.

use std::collections::BTreeMap;
use std::time::Instant;

use pagpass_bench::save_json;
use pagpass_eval::{
    emission_is_non_increasing, repeat_rate, GuessCurve, SchedulerComparison, SchedulerCurve,
};
use pagpass_nn::GptConfig;
use pagpass_patterns::PatternDistribution;
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{DcGen, DcGenConfig, DcGenOptions, ModelKind, PasswordModel, SchedulerKind};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    model_dim: usize,
    threshold: u64,
    frontier_cap: u64,
    comparison: SchedulerComparison,
    speedups: BTreeMap<String, f64>,
}

struct Setup {
    mode: &'static str,
    config: GptConfig,
    budget: u64,
    threshold: u64,
    frontier_cap: u64,
    ladder: Vec<usize>,
}

fn setup(smoke: bool) -> Setup {
    if smoke {
        Setup {
            mode: "smoke",
            config: GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            budget: 200,
            threshold: 32,
            frontier_cap: 512,
            ladder: vec![25, 50, 100],
        }
    } else {
        Setup {
            mode: "full",
            config: GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 64,
                n_layers: 2,
                n_heads: 4,
            },
            budget: 1_200,
            threshold: 64,
            frontier_cap: 4_096,
            ladder: vec![100, 300, 600],
        }
    }
}

/// The synthetic corpus: every `N2` password (00–99) plus every `L1N1`
/// password (a0–z9), so the combined search space is 360 guessable
/// strings and pattern priors are fixed by construction.
fn corpus() -> Vec<String> {
    let mut out: Vec<String> = (0..100).map(|i| format!("{i:02}")).collect();
    for c in 'a'..='z' {
        for d in 0..10 {
            out.push(format!("{c}{d}"));
        }
    }
    out
}

/// The test set is every fourth password of the space — hits measure how
/// much of the space each scheduler's emission covered, not model skill.
fn test_set() -> Vec<String> {
    corpus().into_iter().step_by(4).collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = setup(smoke);
    let model = PasswordModel::new(ModelKind::PagPassGpt, s.config, 5);
    let corpus = corpus();
    let patterns = PatternDistribution::from_passwords(corpus.iter().map(String::as_str));
    let test = test_set();

    let mut entries = Vec::new();
    let mut throughput: BTreeMap<&'static str, f64> = BTreeMap::new();
    for kind in SchedulerKind::ALL {
        let config = DcGenConfig {
            threshold: s.threshold,
            seed: 9,
            workers: 1,
            scheduler: kind,
            frontier_cap: if kind == SchedulerKind::Sopg {
                s.frontier_cap
            } else {
                0
            },
            ..DcGenConfig::new(s.budget)
        };
        let started = Instant::now();
        let report = DcGen::new(&model, config)
            .run_with(&patterns, &DcGenOptions::default())
            .expect("PagPassGPT kind");
        let secs = started.elapsed().as_secs_f64();
        let max_ladder = *s.ladder.last().expect("non-empty ladder") as u64;
        assert!(
            report.emitted >= max_ladder,
            "{kind}: emitted {} below the ladder top {max_ladder}",
            report.emitted
        );
        let gps = if secs > 0.0 {
            report.emitted as f64 / secs
        } else {
            0.0
        };
        throughput.insert(kind.name(), gps);
        eprintln!(
            "[{kind}] emitted {} in {:.2}s ({gps:.0} guesses/s), repeat {:.4}, evictions {}",
            report.emitted,
            secs,
            repeat_rate(&report.passwords),
            report.frontier_evictions,
        );
        let monotone = (kind == SchedulerKind::Sopg)
            .then(|| emission_is_non_increasing(&report.emission_log_probs));
        entries.push(SchedulerCurve {
            scheduler: kind.name().to_owned(),
            budget: s.budget,
            emitted: report.emitted,
            curve: GuessCurve::compute(&report.passwords, &test, &s.ladder),
            repeat_rate: repeat_rate(&report.passwords),
            hit_rate: pagpass_eval::hit_rate(&report.passwords, &test).rate(),
            guesses_per_sec: gps,
            emission_monotone: monotone,
            frontier_evictions: report.frontier_evictions,
        });
    }

    let comparison = SchedulerComparison {
        budget: s.budget,
        test_size: test.len(),
        budgets: s.ladder.clone(),
        schedulers: entries,
    };
    let errors = comparison.validate();
    assert!(errors.is_empty(), "invalid comparison: {errors:?}");

    // Gate on relative scheduler throughput, not wall-clock: the ratio is
    // stable across machines in a way absolute guesses/sec is not.
    let mut speedups = BTreeMap::new();
    speedups.insert(
        "dcgen_vs_sopg_throughput".to_owned(),
        throughput["dcgen"] / throughput["sopg"],
    );

    let report = Report {
        bench: "sched_compare",
        mode: s.mode,
        model_dim: s.config.dim,
        threshold: s.threshold,
        frontier_cap: s.frontier_cap,
        comparison,
        speedups,
    };
    let name = if smoke {
        "sched-compare-smoke"
    } else {
        "sched-compare"
    };
    save_json(name, &report).expect("write sched_compare report");
}
