//! Fig. 9 — per-pattern hit rate `HR_P` of PassGPT vs PagPassGPT for the
//! top-5 patterns of each category with s = 1..6 segments.
//!
//! Paper shape: PagPassGPT beats PassGPT on almost every pattern and still
//! hits patterns where PassGPT scores zero.

use pagpass_bench::report::pct;
use pagpass_bench::{runs, Context, Table};

fn main() {
    let ctx = Context::from_args();
    let r = runs::guided_runs(&ctx);
    let mut table = Table::new(vec![
        "Pattern".into(),
        "Segments".into(),
        "Test pwds".into(),
        "HR_P PassGPT".into(),
        "HR_P PagPassGPT".into(),
    ]);
    let mut shown_per_cat = std::collections::HashMap::new();
    for res in &r.patterns {
        if res.segments > 6 {
            continue;
        }
        let count = shown_per_cat.entry(res.segments).or_insert(0usize);
        if *count >= 5 {
            continue;
        }
        *count += 1;
        table.row(vec![
            res.pattern.clone(),
            res.segments.to_string(),
            res.test_conforming.to_string(),
            pct(res.hr_passgpt()),
            pct(res.hr_pagpassgpt()),
        ]);
    }
    println!(
        "Fig. 9 — HR_P for top-5 patterns of categories s=1..6 ({} guesses/pattern, {} scale)",
        r.per_pattern, ctx.scale.name
    );
    table.print();
}
