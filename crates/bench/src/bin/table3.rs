//! Table III — sample passwords generated in the pattern-guided test for
//! the patterns "L5N2" and "L5S1N2".
//!
//! Paper shape: PassGPT's hard filtering truncates words ("polic#10" —
//! "police" loses its "e" because the pattern demands a special character);
//! PagPassGPT, which conditions instead of filters, keeps words intact.

use pagpass_bench::{save_json, Context, Table};
use pagpass_patterns::Pattern;
use pagpassgpt::ModelKind;

fn main() {
    let ctx = Context::from_args();
    let site = pagpass_datasets::Site::RockYou;
    let passgpt = ctx.gpt_model(ModelKind::PassGpt, site);
    let pagpass = ctx.gpt_model(ModelKind::PagPassGpt, site);
    let patterns: Vec<Pattern> = ["L5N2", "L5S1N2"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let k = 10;

    let mut columns: Vec<Vec<String>> = Vec::new();
    for model in [&passgpt, &pagpass] {
        for pattern in &patterns {
            columns.push(model.generate_guided(pattern, k, 1.0, ctx.seed ^ 31));
        }
    }
    let mut table = Table::new(vec![
        "PassGPT L5N2".into(),
        "PassGPT L5S1N2".into(),
        "PagPassGPT L5N2".into(),
        "PagPassGPT L5S1N2".into(),
    ]);
    for i in 0..k {
        table.row(columns.iter().map(|c| c[i].clone()).collect());
    }
    println!(
        "Table III — sample pattern-guided passwords ({} scale)",
        ctx.scale.name
    );
    table.print();
    save_json(
        &format!("table3-{}-s{}", ctx.scale.name, ctx.seed),
        &columns,
    )
    .expect("write bench result");
}
