//! Table IV — hit rates of all models in the trawling attack test at each
//! guess budget.
//!
//! Paper values at 10⁹ guesses: PassGAN 16.32%, VAEPass 12.23%, PassFlow
//! 14.10%, PassGPT 41.93%, PagPassGPT 48.75%, PagPassGPT-D&C 53.63%.
//! The reproduction runs the same ladder at reduced budgets; the ordering
//! (GAN/VAE/flow ≪ PassGPT < PagPassGPT < PagPassGPT-D&C) is the claim
//! under test.

use pagpass_bench::report::pct;
use pagpass_bench::{runs, Context, Table};

fn main() {
    let ctx = Context::from_args();
    let r = runs::trawling_runs(&ctx);
    let mut header = vec!["Guess Num".to_owned()];
    header.extend(r.budgets.iter().map(ToString::to_string));
    let mut table = Table::new(header);
    for m in &r.models {
        let mut row = vec![m.model.clone()];
        row.extend(m.curve.hit_rates.iter().map(|&h| pct(h)));
        table.row(row);
    }
    println!(
        "Table IV — trawling attack hit rates ({} scale, test size {})",
        ctx.scale.name, r.test_size
    );
    table.print();
}
