//! Paired benchmark — D&C-GEN split-phase and end-to-end throughput with
//! and without cross-task KV-cache prefix reuse.
//!
//! The "before" arm recomputes every task's full prompt from scratch (the
//! behaviour prior to `pagpassgpt::InferenceSession`); the "after" arm
//! threads one session through the same task sequence so each query pays
//! only the tokens past the longest cached prefix. Reuse is bit-exact, so
//! both arms must produce identical distributions and identical passwords —
//! the benchmark asserts this rather than trusting it.
//!
//! Run `cargo run --release -p pagpass-bench --bin dcgen_inference` for the
//! full configuration (depth-4 split tree over an N8 pattern) or with
//! `-- --smoke` for a seconds-scale configuration suitable for CI.

use std::collections::VecDeque;
use std::time::Instant;

use pagpass_bench::save_json;
use pagpass_nn::{set_kernel_mode, GptConfig, KernelMode};
use pagpass_patterns::{Pattern, PatternDistribution};
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{DcGen, DcGenConfig, DcGenOptions, InferenceSession, ModelKind, PasswordModel};
use serde::Serialize;

#[derive(Serialize)]
struct SplitPhase {
    tasks: usize,
    max_prefix_depth: usize,
    stateless_ms: f64,
    session_ms: f64,
    speedup: f64,
    session_reused_tokens: u64,
    session_computed_tokens: u64,
    distributions_identical: bool,
    /// Same task sequence through a `--kernel quantized` session.
    quantized_ms: f64,
    /// Pinned session over quantized session: the int8 decode win.
    quantized_speedup_vs_pinned: f64,
    /// Max elementwise probability divergence, quantized vs pinned — int8
    /// quantization noise, bounded by the accuracy budget in `crates/eval`.
    quantized_max_prob_diff: f64,
}

#[derive(Serialize)]
struct EndToEnd {
    total: u64,
    threshold: u64,
    emitted: u64,
    uncached_ms: f64,
    cached_ms: f64,
    speedup: f64,
    prefix_cache_hits: u64,
    outputs_identical: bool,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    model_dim: usize,
    model_layers: usize,
    pattern: String,
    split_phase: SplitPhase,
    end_to_end: EndToEnd,
}

struct Setup {
    mode: &'static str,
    config: GptConfig,
    pattern: &'static str,
    /// Budget/threshold for the split-phase tree expansion.
    split_total: f64,
    split_threshold: f64,
    /// Budget/threshold for the end-to-end paired dcgen run.
    e2e_total: u64,
    e2e_threshold: u64,
}

fn setup(smoke: bool) -> Setup {
    if smoke {
        Setup {
            mode: "smoke",
            config: GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            pattern: "N5",
            split_total: 20_000.0,
            split_threshold: 30.0,
            e2e_total: 800,
            e2e_threshold: 4,
        }
    } else {
        Setup {
            mode: "full",
            config: GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 96,
                n_layers: 3,
                n_heads: 4,
            },
            pattern: "N8",
            split_total: 400_000.0,
            split_threshold: 50.0,
            e2e_total: 4_000,
            e2e_threshold: 5,
        }
    }
}

/// Expands the D&C-GEN split tree for `pattern` in the same FIFO order the
/// worker pool uses, returning every prefix that gets split (quota above
/// threshold). Expansion itself runs untimed through the stateless API so
/// both timed arms below replay an identical task sequence.
fn split_tasks(
    model: &PasswordModel,
    pattern: &Pattern,
    total: f64,
    threshold: f64,
) -> Vec<String> {
    let mut order = Vec::new();
    let mut queue: VecDeque<(String, f64)> = VecDeque::from([(String::new(), total)]);
    while let Some((prefix, quota)) = queue.pop_front() {
        if quota <= threshold || prefix.chars().count() >= pattern.char_len() {
            continue;
        }
        let (ids, probs) = model
            .next_char_distribution(pattern, &prefix)
            .expect("prefix fits the pattern");
        order.push(prefix.clone());
        let vocab = model.tokenizer().vocab();
        for (&id, &p) in ids.iter().zip(&probs) {
            let child_quota = quota * p;
            if child_quota < 1.0 {
                continue;
            }
            if let Some(pagpass_tokenizer::Token::Char(c)) = vocab.token_of(id) {
                let mut child = prefix.clone();
                child.push(c);
                queue.push_back((child, child_quota));
            }
        }
    }
    order
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = setup(smoke);
    let model = PasswordModel::new(ModelKind::PagPassGpt, s.config, 5);
    let pattern: Pattern = s.pattern.parse().expect("valid pattern literal");

    // ---- split phase: the same task sequence, stateless vs. session.
    let tasks = split_tasks(&model, &pattern, s.split_total, s.split_threshold);
    let depth = tasks.iter().map(|p| p.chars().count()).max().unwrap_or(0);
    eprintln!(
        "[split] {} tasks, max prefix depth {depth} ({} mode)",
        tasks.len(),
        s.mode
    );

    let started = Instant::now();
    let mut stateless = Vec::with_capacity(tasks.len());
    for prefix in &tasks {
        stateless.push(
            model
                .next_char_distribution(&pattern, prefix)
                .expect("prefix fits the pattern"),
        );
    }
    let stateless_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut session = InferenceSession::new(&model);
    let started = Instant::now();
    let mut cached = Vec::with_capacity(tasks.len());
    for prefix in &tasks {
        cached.push(
            session
                .next_char_distribution(&pattern, prefix)
                .expect("prefix fits the pattern"),
        );
    }
    let session_ms = started.elapsed().as_secs_f64() * 1e3;
    let distributions_identical = stateless == cached;
    assert!(
        distributions_identical,
        "cached split distributions diverged from stateless ones"
    );

    // Quantized arm: the identical task sequence through a session built
    // under `KernelMode::Quantized` (which packs the weights once at
    // construction — untimed, like a `--kernel quantized` run). Not
    // bit-compatible with f32, so the check is a divergence bound rather
    // than equality.
    set_kernel_mode(KernelMode::Quantized);
    let mut qsession = InferenceSession::new(&model);
    let started = Instant::now();
    let mut quantized = Vec::with_capacity(tasks.len());
    for prefix in &tasks {
        quantized.push(
            qsession
                .next_char_distribution(&pattern, prefix)
                .expect("prefix fits the pattern"),
        );
    }
    let quantized_ms = started.elapsed().as_secs_f64() * 1e3;
    set_kernel_mode(KernelMode::Blocked);
    let quantized_max_prob_diff = cached
        .iter()
        .zip(&quantized)
        .flat_map(|((_, p), (_, q))| p.iter().zip(q).map(|(&a, &b)| f64::from((a - b).abs())))
        .fold(0.0, f64::max);
    assert!(
        quantized_max_prob_diff < 0.05,
        "quantized split distributions drifted {quantized_max_prob_diff} from pinned"
    );

    let split_phase = SplitPhase {
        tasks: tasks.len(),
        max_prefix_depth: depth,
        stateless_ms,
        session_ms,
        speedup: stateless_ms / session_ms,
        session_reused_tokens: session.reused_tokens(),
        session_computed_tokens: session.computed_tokens(),
        distributions_identical,
        quantized_ms,
        quantized_speedup_vs_pinned: session_ms / quantized_ms,
        quantized_max_prob_diff,
    };
    eprintln!(
        "[split] stateless {stateless_ms:.1} ms, session {:.1} ms ({:.2}x), reused {} / computed {} tokens",
        session_ms, split_phase.speedup, split_phase.session_reused_tokens,
        split_phase.session_computed_tokens
    );
    eprintln!(
        "[split] quantized session {quantized_ms:.1} ms ({:.2}x vs pinned session), max prob diff {quantized_max_prob_diff:.2e}",
        split_phase.quantized_speedup_vs_pinned
    );

    // ---- end to end: a full dcgen run with the session disabled vs. on.
    let mut patterns = PatternDistribution::new();
    patterns.observe(pattern.clone());
    let dc_config = DcGenConfig {
        threshold: s.e2e_threshold,
        seed: 9,
        workers: 1,
        ..DcGenConfig::new(s.e2e_total)
    };
    let started = Instant::now();
    let uncached_run = DcGen::new(&model, dc_config.clone())
        .run_with(
            &patterns,
            &DcGenOptions {
                no_prefix_reuse: true,
                ..DcGenOptions::default()
            },
        )
        .expect("PagPassGPT kind");
    let uncached_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let cached_run = DcGen::new(&model, dc_config)
        .run(&patterns)
        .expect("PagPassGPT kind");
    let cached_ms = started.elapsed().as_secs_f64() * 1e3;

    let outputs_identical = uncached_run.passwords == cached_run.passwords;
    assert!(
        outputs_identical,
        "prefix reuse changed the generated passwords"
    );
    let end_to_end = EndToEnd {
        total: s.e2e_total,
        threshold: s.e2e_threshold,
        emitted: cached_run.emitted,
        uncached_ms,
        cached_ms,
        speedup: uncached_ms / cached_ms,
        prefix_cache_hits: cached_run.prefix_cache_hits,
        outputs_identical,
    };
    eprintln!(
        "[e2e] uncached {uncached_ms:.1} ms, cached {cached_ms:.1} ms ({:.2}x), {} emitted, {} cache hits",
        end_to_end.speedup, end_to_end.emitted, end_to_end.prefix_cache_hits
    );

    let report = Report {
        bench: "dcgen_inference",
        mode: s.mode,
        model_dim: s.config.dim,
        model_layers: s.config.n_layers,
        pattern: s.pattern.to_string(),
        split_phase,
        end_to_end,
    };
    save_json(&format!("dcgen-inference-{}", s.mode), &report).expect("write bench result");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("serialize report")
    );
}
