//! Shared expensive computations, cached as JSON under `results/` so the
//! table/figure binaries that present the same run (Table IV + Fig. 10,
//! Fig. 8 + Fig. 9, Table V + Fig. 11) do not recompute it.

use pagpass_datasets::Site;
use pagpass_eval::{GuessCurve, PatternGuidedEval};
use pagpass_patterns::PatternDistribution;
use pagpass_telemetry::{LogFormat, Telemetry};
use pagpassgpt::{DcGen, DcGenConfig, DcGenOptions, ModelKind};
use serde::{Deserialize, Serialize};

use crate::report::{load_json, save_json};
use crate::Context;

/// A quiet [`Telemetry`] for one expensive run: phase timers record into
/// it, and the final snapshot rides along on the saved JSON report so a
/// cached result still says where its wall-clock went.
fn run_telemetry() -> Telemetry {
    Telemetry::new(LogFormat::Text, true)
}

/// The registry frozen as a JSON document, for embedding in a report.
/// Stored as a string so the report types stay independent of any JSON
/// value representation; parse it with `pagpass_telemetry::parse_json`.
fn snapshot_value(tel: &Telemetry) -> String {
    tel.snapshot().to_json()
}

/// One model's guess-stream evaluation in the trawling test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCurve {
    /// Model name as the paper prints it.
    pub model: String,
    /// Hit/repeat rates at each budget.
    pub curve: GuessCurve,
}

/// Results of the trawling attack test (Table IV + Fig. 10): every model
/// generates up to the largest budget on the RockYou-like site; curves are
/// evaluated on the held-out test split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrawlingRuns {
    /// Scale name the run was produced under.
    pub scale: String,
    /// Guess budgets (the paper's 10⁶..10⁹ ladder, scaled).
    pub budgets: Vec<usize>,
    /// Test-split size.
    pub test_size: usize,
    /// Per-model curves.
    pub models: Vec<ModelCurve>,
    /// Metrics snapshot of the run that produced this result, as a JSON
    /// document (per-phase wall-clock, D&C-GEN counters). Empty on reports
    /// cached before the field existed.
    #[serde(default)]
    pub telemetry: String,
}

/// Computes (or loads) the trawling runs.
#[must_use]
pub fn trawling_runs(ctx: &Context) -> TrawlingRuns {
    let key = format!("trawling-{}-s{}", ctx.scale.name, ctx.seed);
    if let Some(cached) = load_json::<TrawlingRuns>(&key) {
        if cached.scale == ctx.scale.name {
            eprintln!("[cache] loaded {key}");
            return cached;
        }
    }
    let site = Site::RockYou;
    let split = ctx.split(site);
    let budgets = ctx.scale.budgets.clone();
    // LINT-ALLOW: no-unwrap-in-lib invariant: every committed Scale
    // declares a non-empty budget ladder; an empty one is a config bug.
    let n = *budgets.last().expect("budgets are non-empty");
    let tel = run_telemetry();
    let mut models = Vec::new();

    let gan = ctx.gan_model(site);
    eprintln!("[gen] PassGAN x{n}");
    let guesses = {
        let _t = tel.timer("bench.gen.passgan");
        gan.generate(n, ctx.seed ^ 1)
    };
    models.push(curve("PassGAN", &guesses, &split.test, &budgets));

    let vae = ctx.vae_model(site);
    eprintln!("[gen] VAEPass x{n}");
    let guesses = {
        let _t = tel.timer("bench.gen.vaepass");
        vae.generate(n, ctx.seed ^ 2)
    };
    models.push(curve("VAEPass", &guesses, &split.test, &budgets));

    let flow = ctx.flow_model(site);
    eprintln!("[gen] PassFlow x{n}");
    let guesses = {
        let _t = tel.timer("bench.gen.passflow");
        flow.generate(n, ctx.seed ^ 3)
    };
    models.push(curve("PassFlow", &guesses, &split.test, &budgets));

    let passgpt = ctx.gpt_model(ModelKind::PassGpt, site);
    eprintln!("[gen] PassGPT x{n}");
    let guesses = {
        let _t = tel.timer("bench.gen.passgpt");
        passgpt.generate_free(n, 1.0, ctx.seed ^ 4)
    };
    models.push(curve("PassGPT", &guesses, &split.test, &budgets));

    let pagpass = ctx.gpt_model(ModelKind::PagPassGpt, site);
    eprintln!("[gen] PagPassGPT x{n}");
    let guesses = {
        let _t = tel.timer("bench.gen.pagpassgpt");
        pagpass.generate_free(n, 1.0, ctx.seed ^ 5)
    };
    models.push(curve("PagPassGPT", &guesses, &split.test, &budgets));

    // D&C-GEN takes the budget N as an *input* (Algorithm 1), so each
    // budget is its own run — checkpointing one stream would evaluate
    // pattern-ordered prefixes instead of the algorithm's actual output.
    let train_patterns =
        PatternDistribution::from_passwords(split.train.iter().map(String::as_str));
    let mut dc_curve = GuessCurve {
        budgets: budgets.clone(),
        hit_rates: Vec::new(),
        repeat_rates: Vec::new(),
    };
    for &budget in &budgets {
        eprintln!("[gen] PagPassGPT-D&C x{budget}");
        let _t = tel.timer("bench.gen.dcgen");
        let dc = DcGen::new(
            &pagpass,
            DcGenConfig {
                threshold: ctx.scale.dcgen_threshold,
                seed: ctx.seed ^ 6,
                ..DcGenConfig::new(budget as u64)
            },
        )
        .run_with(
            &train_patterns,
            &DcGenOptions {
                telemetry: Some(&tel),
                ..DcGenOptions::default()
            },
        )
        // LINT-ALLOW: no-unwrap-in-lib the model was trained as
        // PagPassGPT four lines up; a kind mismatch is unreachable, and a
        // bench experiment that cannot generate should fail loudly.
        .expect("PagPassGPT model kind");
        dc_curve
            .hit_rates
            .push(pagpass_eval::hit_rate(&dc.passwords, &split.test).rate());
        dc_curve
            .repeat_rates
            .push(pagpass_eval::repeat_rate(&dc.passwords));
    }
    models.push(ModelCurve {
        model: "PagPassGPT-D&C".to_owned(),
        curve: dc_curve,
    });

    // Extension baselines beyond the paper's table: the classic
    // probability-based families it surveys in §II-B2.
    let pcfg = ctx.pcfg_model(site);
    eprintln!("[gen] PCFG x{n}");
    let guesses = {
        let _t = tel.timer("bench.gen.pcfg");
        pcfg.guesses(n)
    };
    models.push(curve("PCFG (ext)", &guesses, &split.test, &budgets));
    let markov = ctx.markov_model(site);
    eprintln!("[gen] Markov x{n}");
    let guesses = {
        let _t = tel.timer("bench.gen.markov");
        markov.sample_many(n, 12, ctx.seed ^ 7)
    };
    models.push(curve("Markov-3 (ext)", &guesses, &split.test, &budgets));

    let runs = TrawlingRuns {
        scale: ctx.scale.name.clone(),
        budgets,
        test_size: split.test.len(),
        models,
        telemetry: snapshot_value(&tel),
    };
    // A failed cache write costs a re-run, not the experiment.
    if let Err(e) = save_json(&key, &runs) {
        eprintln!("[cache] failed to write {key}: {e}");
    }
    runs
}

fn curve(model: &str, guesses: &[String], test: &[String], budgets: &[usize]) -> ModelCurve {
    ModelCurve {
        model: model.to_owned(),
        curve: GuessCurve::compute(guesses, test, budgets),
    }
}

/// One pattern's result in the pattern-guided test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuidedPatternResult {
    /// The pattern (e.g. `L5N2`).
    pub pattern: String,
    /// Its segment count (category).
    pub segments: usize,
    /// Test passwords conforming to the pattern.
    pub test_conforming: usize,
    /// PassGPT hits / hit rate.
    pub passgpt_hits: usize,
    /// PagPassGPT hits.
    pub pagpassgpt_hits: usize,
}

impl GuidedPatternResult {
    /// `HR_P` of PassGPT.
    #[must_use]
    pub fn hr_passgpt(&self) -> f64 {
        if self.test_conforming == 0 {
            0.0
        } else {
            self.passgpt_hits as f64 / self.test_conforming as f64
        }
    }

    /// `HR_P` of PagPassGPT.
    #[must_use]
    pub fn hr_pagpassgpt(&self) -> f64 {
        if self.test_conforming == 0 {
            0.0
        } else {
            self.pagpassgpt_hits as f64 / self.test_conforming as f64
        }
    }
}

/// Results of the pattern-guided guessing test (Fig. 8 + Fig. 9).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuidedRuns {
    /// Scale name.
    pub scale: String,
    /// Guesses generated per target pattern.
    pub per_pattern: usize,
    /// Per-pattern results, ordered by (segments, rank).
    pub patterns: Vec<GuidedPatternResult>,
    /// `(segments, HR_s PassGPT, HR_s PagPassGPT)` per category.
    pub categories: Vec<(usize, f64, f64)>,
    /// Metrics snapshot of the producing run as a JSON document (empty on
    /// older caches).
    #[serde(default)]
    pub telemetry: String,
}

/// Computes (or loads) the pattern-guided runs.
#[must_use]
pub fn guided_runs(ctx: &Context) -> GuidedRuns {
    let key = format!("guided-{}-s{}", ctx.scale.name, ctx.seed);
    if let Some(cached) = load_json::<GuidedRuns>(&key) {
        if cached.scale == ctx.scale.name {
            eprintln!("[cache] loaded {key}");
            return cached;
        }
    }
    let site = Site::RockYou;
    let split = ctx.split(site);
    let eval = PatternGuidedEval::new(&split.test);
    let targets = eval.target_patterns(ctx.scale.per_category);
    let passgpt = ctx.gpt_model(ModelKind::PassGpt, site);
    let pagpass = ctx.gpt_model(ModelKind::PagPassGpt, site);
    let n = ctx.scale.guided_per_pattern;
    let tel = run_telemetry();

    let mut patterns = Vec::new();
    let mut categories = Vec::new();
    for (&segments, pats) in &targets {
        let mut cat_results_pass = Vec::new();
        let mut cat_results_pag = Vec::new();
        for pattern in pats {
            eprintln!("[guided] {pattern} x{n} (category {segments})");
            let g_pass = {
                let _t = tel.timer("bench.guided.passgpt");
                passgpt.generate_guided(pattern, n, 1.0, ctx.seed ^ 11)
            };
            let g_pag = {
                let _t = tel.timer("bench.guided.pagpassgpt");
                pagpass.generate_guided(pattern, n, 1.0, ctx.seed ^ 12)
            };
            let hit_pass = eval.score_pattern(pattern, &g_pass);
            let hit_pag = eval.score_pattern(pattern, &g_pag);
            patterns.push(GuidedPatternResult {
                pattern: pattern.to_string(),
                segments,
                test_conforming: hit_pass.test_conforming,
                passgpt_hits: hit_pass.hits,
                pagpassgpt_hits: hit_pag.hits,
            });
            cat_results_pass.push(hit_pass);
            cat_results_pag.push(hit_pag);
        }
        categories.push((
            segments,
            eval.category_hit_rate(segments, &cat_results_pass),
            eval.category_hit_rate(segments, &cat_results_pag),
        ));
    }
    let runs = GuidedRuns {
        scale: ctx.scale.name.clone(),
        per_pattern: n,
        patterns,
        categories,
        telemetry: snapshot_value(&tel),
    };
    // A failed cache write costs a re-run, not the experiment.
    if let Err(e) = save_json(&key, &runs) {
        eprintln!("[cache] failed to write {key}: {e}");
    }
    runs
}

/// Results of the distribution-quality test (Table V + Fig. 11).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributionRuns {
    /// Scale name.
    pub scale: String,
    /// Passwords generated per model.
    pub generated: usize,
    /// `(model, length distance, pattern distance)`.
    pub models: Vec<(String, f64, f64)>,
    /// PagPassGPT distances at growing generation counts
    /// `(n, length distance, pattern distance)` (Fig. 11).
    pub pagpass_curve: Vec<(usize, f64, f64)>,
    /// Metrics snapshot of the producing run as a JSON document (empty on
    /// older caches).
    #[serde(default)]
    pub telemetry: String,
}

/// Computes (or loads) the distribution runs.
#[must_use]
pub fn distribution_runs(ctx: &Context) -> DistributionRuns {
    let key = format!("distribution-{}-s{}", ctx.scale.name, ctx.seed);
    if let Some(cached) = load_json::<DistributionRuns>(&key) {
        if cached.scale == ctx.scale.name {
            eprintln!("[cache] loaded {key}");
            return cached;
        }
    }
    let site = Site::RockYou;
    let split = ctx.split(site);
    let n = ctx.scale.distribution_n;
    let test = &split.test;
    let tel = run_telemetry();
    let mut models = Vec::new();

    let measure = |name: &str, guesses: &[String], models: &mut Vec<(String, f64, f64)>| {
        models.push((
            name.to_owned(),
            pagpass_eval::length_distance(guesses, test),
            pagpass_eval::pattern_distance(guesses, test, 150),
        ));
    };

    eprintln!("[dist] PassGAN x{n}");
    let guesses = {
        let _t = tel.timer("bench.dist.passgan");
        ctx.gan_model(site).generate(n, ctx.seed ^ 21)
    };
    measure("PassGAN", &guesses, &mut models);
    eprintln!("[dist] VAEPass x{n}");
    let guesses = {
        let _t = tel.timer("bench.dist.vaepass");
        ctx.vae_model(site).generate(n, ctx.seed ^ 22)
    };
    measure("VAEPass", &guesses, &mut models);
    eprintln!("[dist] PassFlow x{n}");
    let guesses = {
        let _t = tel.timer("bench.dist.passflow");
        ctx.flow_model(site).generate(n, ctx.seed ^ 23)
    };
    measure("PassFlow", &guesses, &mut models);
    eprintln!("[dist] PassGPT x{n}");
    let passgpt = ctx.gpt_model(ModelKind::PassGpt, site);
    let guesses = {
        let _t = tel.timer("bench.dist.passgpt");
        passgpt.generate_free(n, 1.0, ctx.seed ^ 24)
    };
    measure("PassGPT", &guesses, &mut models);
    eprintln!("[dist] PagPassGPT x{n}");
    let pagpass = ctx.gpt_model(ModelKind::PagPassGpt, site);
    let pag_guesses = {
        let _t = tel.timer("bench.dist.pagpassgpt");
        pagpass.generate_free(n, 1.0, ctx.seed ^ 25)
    };
    measure("PagPassGPT", &pag_guesses, &mut models);

    // Fig. 11: distances over growing prefixes of the PagPassGPT stream.
    let mut pagpass_curve = Vec::new();
    let mut checkpoint = (n / 100).max(10);
    while checkpoint <= n {
        let prefix = &pag_guesses[..checkpoint];
        pagpass_curve.push((
            checkpoint,
            pagpass_eval::length_distance(prefix, test),
            pagpass_eval::pattern_distance(prefix, test, 150),
        ));
        checkpoint *= 10;
    }

    let runs = DistributionRuns {
        scale: ctx.scale.name.clone(),
        generated: n,
        models,
        pagpass_curve,
        telemetry: snapshot_value(&tel),
    };
    // A failed cache write costs a re-run, not the experiment.
    if let Err(e) = save_json(&key, &runs) {
        eprintln!("[cache] failed to write {key}: {e}");
    }
    runs
}
