//! Experiment harness reproducing every table and figure of the PagPassGPT
//! paper (see `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md`
//! for paper-vs-measured results).
//!
//! Each table/figure has a binary under `src/bin/`; all of them share:
//!
//! * [`Scale`] — scaled-down workload presets (`smoke`, `default`, `full`)
//!   with the paper's parameters documented alongside,
//! * [`Context`] — deterministic corpora (synthetic leaks), cleaning,
//!   splits, and a disk cache of trained models under `artifacts/` so
//!   binaries share training work,
//! * [`report`] — aligned text tables plus JSON dumps under
//!   `crates/bench/results/`.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run --release -p pagpass-bench --bin table4 -- --scale default
//! ```

pub mod context;
pub mod gate;
pub mod report;
pub mod runs;

pub use context::{Context, Scale, ScalePreset};
pub use report::{results_dir, save_json, save_json_str, Table};
