use std::fmt::Write as _;
use std::path::PathBuf;

use serde::Serialize;

use crate::context::workspace_root;

/// Directory experiment binaries write JSON results into.
#[must_use]
pub fn results_dir() -> PathBuf {
    workspace_root().join("crates/bench/results")
}

/// Serializes `value` to `crates/bench/results/<name>.json`, returning
/// the path written. Experiment binaries `.expect` the result (an
/// experiment that cannot record its output should fail loudly); the
/// cached-run layer logs and continues instead.
///
/// # Errors
///
/// Fails when the results directory cannot be created, the file cannot
/// be written, or `value` does not serialize.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let json =
        serde_json::to_string_pretty(value).map_err(|e| std::io::Error::other(e.to_string()))?;
    save_json_str(name, &json)
}

/// Writes a pre-rendered JSON string to `crates/bench/results/<name>.json`,
/// returning the path written.
///
/// For benchmarks that format their own reports — keeping the artifact a
/// pure function of the measurements rather than of a serializer.
///
/// # Errors
///
/// Fails when the results directory cannot be created or written.
pub fn save_json_str(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json)?;
    eprintln!("[result] wrote {}", path.display());
    Ok(path)
}

/// Loads a previously saved JSON result, if present.
#[must_use]
pub fn load_json<T: serde::de::DeserializeOwned>(name: &str) -> Option<T> {
    let path = results_dir().join(format!("{name}.json"));
    let data = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&data).ok()
}

/// A simple aligned text table, printed the way the paper's tables read.
///
/// # Examples
///
/// ```
/// use pagpass_bench::Table;
///
/// let mut t = Table::new(vec!["Model".into(), "Hit rate".into()]);
/// t.row(vec!["PassGPT".into(), "41.93%".into()]);
/// let text = t.render();
/// assert!(text.contains("PassGPT"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<String>) -> Table {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                let _ = write!(out, "| {cell:width$} ");
            }
            out.push_str("|\n");
        };
        render_row(&mut out, &self.header);
        for (i, &w) in widths.iter().enumerate() {
            let _ = write!(&mut out, "|{}", "-".repeat(w + 2));
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio as the paper prints it: `41.93%`.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["A".into(), "Longer".into()]);
        t.row(vec!["xx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Every line has the same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.4193), "41.93%");
        assert_eq!(pct(0.0), "0.00%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn json_roundtrip() {
        save_json("selftest", &vec![1u32, 2, 3]).unwrap();
        let loaded: Option<Vec<u32>> = load_json("selftest");
        assert_eq!(loaded, Some(vec![1, 2, 3]));
        std::fs::remove_file(results_dir().join("selftest.json")).ok();
    }
}
