//! Benchmark regression gate: compares a fresh bench report against the
//! committed baseline and fails when a speedup ratio regresses.
//!
//! Gating on *ratios* rather than wall-clock times is what makes this
//! viable in CI: absolute timings swing wildly across runner generations,
//! but blocked-over-naive speedups are paired measurements on the same
//! machine in the same process, so a genuine kernel regression (say, a
//! change that quietly serializes the pool or deoptimizes a micro-kernel)
//! shows up as the ratio collapsing while noise largely cancels.
//!
//! The report's `speedups` object is parsed with a purpose-built scanner
//! instead of a JSON library so the gate works — and its tests run — in
//! dependency-stripped environments; the object is flat (`string: number`
//! pairs only), which is all the scanner supports by design.

use std::collections::BTreeMap;

/// Fraction a speedup may fall below its baseline before the gate fails.
/// 25% absorbs run-to-run noise on shared CI runners while still catching
/// any change that costs a kernel a meaningful part of its win.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Extracts the flat `"speedups": { "key": number, ... }` object from a
/// bench report rendered by the `gemm` binary.
///
/// # Errors
///
/// Returns a description of the first structural problem: no `speedups`
/// key, unbalanced braces, a malformed entry, or an empty map.
pub fn extract_speedups(json: &str) -> Result<BTreeMap<String, f64>, String> {
    let key_at = json
        .find("\"speedups\"")
        .ok_or_else(|| "report has no \"speedups\" object".to_string())?;
    let open = json[key_at..]
        .find('{')
        .map(|o| key_at + o)
        .ok_or_else(|| "\"speedups\" is not followed by an object".to_string())?;
    // The object is flat by construction, so the next '}' closes it.
    let close = json[open..]
        .find('}')
        .map(|c| open + c)
        .ok_or_else(|| "\"speedups\" object is never closed".to_string())?;
    let mut out = BTreeMap::new();
    for entry in json[open + 1..close].split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed speedups entry: {entry:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("speedups[{key:?}] is not a number: {e}"))?;
        out.insert(key, value);
    }
    if out.is_empty() {
        return Err("\"speedups\" object is empty".to_string());
    }
    Ok(out)
}

/// Compares `current` against `baseline`: every baseline key must be
/// present and its current speedup must not fall below
/// `baseline · (1 − tolerance)`. Returns one human-readable violation per
/// failure, empty when the gate passes.
///
/// Direction-aware by design: a *faster* current run never fails the gate,
/// and keys present only in `current` (a newly added kernel the baseline
/// predates) are ignored rather than failed.
#[must_use]
pub fn check(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (key, &base) in baseline {
        match current.get(key) {
            None => violations.push(format!(
                "{key}: present in baseline but missing from the current report"
            )),
            Some(&cur) if cur < base * (1.0 - tolerance) => violations.push(format!(
                "{key}: speedup {cur:.3}x fell more than {:.0}% below the baseline {base:.3}x",
                tolerance * 100.0
            )),
            Some(_) => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "bench": "gemm",
  "mode": "smoke",
  "kernels": [
    { "kernel": "matmul_into", "naive_ms": 5.600, "speedup_blocked": 1.333 }
  ],
  "train_step": {
    "naive_ms": 5.500, "blocked_4t_ms": 3.900, "speedup": 1.410
  },
  "speedups": {
    "matmul_into": 1.333,
    "train_step": 1.410
  }
}
"#;

    #[test]
    fn extracts_the_flat_speedups_map() {
        let map = extract_speedups(REPORT).unwrap();
        assert_eq!(map.len(), 2);
        assert!((map["matmul_into"] - 1.333).abs() < 1e-9);
        assert!((map["train_step"] - 1.41).abs() < 1e-9);
    }

    #[test]
    fn extraction_rejects_reports_without_speedups() {
        assert!(extract_speedups("{}").is_err());
        assert!(extract_speedups("{\"speedups\": {}}").is_err());
        assert!(extract_speedups("{\"speedups\": {\"a\": \"fast\"}}").is_err());
    }

    #[test]
    fn identical_reports_pass() {
        let map = extract_speedups(REPORT).unwrap();
        assert!(check(&map, &map, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        // Doctor the report: halve the train-step speedup, the signature of
        // a change that made the blocked path twice as slow.
        let doctored = REPORT.replace("\"train_step\": 1.410", "\"train_step\": 0.705");
        let current = extract_speedups(&doctored).unwrap();
        let baseline = extract_speedups(REPORT).unwrap();
        let violations = check(&current, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].starts_with("train_step:"), "{violations:?}");
    }

    #[test]
    fn missing_baseline_key_fails_the_gate() {
        let baseline = extract_speedups(REPORT).unwrap();
        let mut current = baseline.clone();
        current.remove("matmul_into");
        let violations = check(&current, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing"));
    }

    #[test]
    fn tolerance_boundary_is_one_sided() {
        let baseline = BTreeMap::from([("k".to_string(), 2.0f64)]);
        // 24% below the baseline: inside the 25% band.
        let near = BTreeMap::from([("k".to_string(), 2.0 * 0.76)]);
        assert!(check(&near, &baseline, DEFAULT_TOLERANCE).is_empty());
        // 26% below: out.
        let out = BTreeMap::from([("k".to_string(), 2.0 * 0.74)]);
        assert_eq!(check(&out, &baseline, DEFAULT_TOLERANCE).len(), 1);
        // Faster than the baseline never fails, and extra current-only keys
        // are ignored.
        let faster = BTreeMap::from([("k".to_string(), 4.0), ("new_kernel".to_string(), 1.0)]);
        assert!(check(&faster, &baseline, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn committed_baseline_parses_and_covers_the_gated_kernels() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/bench_baseline.json");
        let data = std::fs::read_to_string(path).expect("bench_baseline.json is committed");
        let baseline = extract_speedups(&data).expect("baseline parses");
        for key in [
            "matmul_into",
            "matmul_bt",
            "matmul_bt_packed",
            "matmul_fast",
            "matmul_t_accum",
            "matmul_t_accum_fast",
            "train_step",
            "decode_quantized_vs_pinned",
        ] {
            assert!(baseline.contains_key(key), "baseline lacks {key}");
        }
    }
}
