use std::path::PathBuf;

use pagpass_baselines::{FlowConfig, GanConfig, PassFlow, PassGan, VaeConfig, VaePass};
use pagpass_datasets::{clean, split_passwords, CleanReport, Site, Split, SplitRatios};
use pagpass_markov::MarkovModel;
use pagpass_nn::GptConfig;
use pagpass_pcfg::PcfgModel;
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{ModelKind, PasswordModel, TrainConfig};
use serde::{Deserialize, Serialize};

/// Workload presets. The paper's numbers are recorded in the doc comments;
/// the presets scale guesses and corpus together so the shape of every
/// result survives (DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePreset {
    /// Seconds-scale smoke test (integration tests use this).
    Smoke,
    /// The standard single-core run used for `EXPERIMENTS.md` (~minutes
    /// per experiment).
    Default,
    /// A heavier run for machines with more time.
    Full,
}

impl ScalePreset {
    /// Parses `smoke` / `default` / `full`.
    #[must_use]
    pub fn parse(s: &str) -> Option<ScalePreset> {
        match s {
            "smoke" => Some(ScalePreset::Smoke),
            "default" => Some(ScalePreset::Default),
            "full" => Some(ScalePreset::Full),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ScalePreset::Smoke => "smoke",
            ScalePreset::Default => "default",
            ScalePreset::Full => "full",
        }
    }
}

/// Concrete workload parameters derived from a preset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Preset name (used in cache keys).
    pub name: String,
    /// Raw leak entries generated per site
    /// (paper: 14.3M RockYou / 60.5M LinkedIn).
    pub raw_entries: usize,
    /// GPT width/depth (paper: 256-dim, 12 layers, 8 heads).
    pub gpt: GptConfig,
    /// Training epochs (paper: 30).
    pub epochs: usize,
    /// Guess budgets for the trawling test (paper: 10⁶..10⁹).
    pub budgets: Vec<usize>,
    /// Guesses per target pattern in the guided test (paper: 100 000).
    pub guided_per_pattern: usize,
    /// Target patterns per category (paper: 21).
    pub per_category: usize,
    /// D&C-GEN division threshold (paper: 4 000, GPU-sized).
    pub dcgen_threshold: u64,
    /// Passwords generated for the distribution test (paper: 10⁸).
    pub distribution_n: usize,
}

impl Scale {
    /// Materializes a preset.
    #[must_use]
    pub fn preset(preset: ScalePreset) -> Scale {
        match preset {
            ScalePreset::Smoke => Scale {
                name: preset.name().to_owned(),
                raw_entries: 3_000,
                gpt: GptConfig {
                    vocab_size: VOCAB_SIZE,
                    ctx_len: 32,
                    dim: 16,
                    n_layers: 1,
                    n_heads: 2,
                },
                epochs: 2,
                budgets: vec![50, 200],
                guided_per_pattern: 40,
                per_category: 2,
                dcgen_threshold: 64,
                distribution_n: 300,
            },
            ScalePreset::Default => Scale {
                name: preset.name().to_owned(),
                raw_entries: 60_000,
                gpt: GptConfig::small(VOCAB_SIZE),
                epochs: 10,
                budgets: vec![100, 1_000, 10_000, 20_000],
                guided_per_pattern: 1_000,
                per_category: 10,
                dcgen_threshold: 256,
                distribution_n: 10_000,
            },
            ScalePreset::Full => Scale {
                name: preset.name().to_owned(),
                raw_entries: 400_000,
                gpt: GptConfig {
                    vocab_size: VOCAB_SIZE,
                    ctx_len: 32,
                    dim: 64,
                    n_layers: 4,
                    n_heads: 4,
                },
                epochs: 10,
                budgets: vec![1_000, 10_000, 100_000, 300_000],
                guided_per_pattern: 10_000,
                per_category: 21,
                dcgen_threshold: 1_024,
                distribution_n: 100_000,
            },
        }
    }
}

/// Shared experiment state: deterministic corpora plus a disk cache of
/// trained models keyed by `(model, site, scale)`.
#[derive(Debug)]
pub struct Context {
    /// The workload scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
}

impl Context {
    /// Parses `--scale`/`--seed` from CLI args, defaulting to
    /// `default`/`42`. Unknown flags abort with a usage message.
    #[must_use]
    pub fn from_args() -> Context {
        let mut preset = ScalePreset::Default;
        let mut seed = 42u64;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    preset = ScalePreset::parse(&v).unwrap_or_else(|| {
                        eprintln!("unknown scale {v:?}; use smoke|default|full");
                        std::process::exit(2);
                    });
                }
                "--seed" => {
                    seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
                }
                other => {
                    eprintln!(
                        "unknown flag {other:?}; supported: --scale smoke|default|full, --seed N"
                    );
                    std::process::exit(2);
                }
            }
        }
        Context::new(Scale::preset(preset), seed)
    }

    /// Creates a context with explicit scale and seed.
    #[must_use]
    pub fn new(scale: Scale, seed: u64) -> Context {
        Context { scale, seed }
    }

    /// The raw synthetic leak of a site (before cleaning).
    #[must_use]
    pub fn raw_leak(&self, site: Site) -> Vec<String> {
        site.profile().generate(self.scale.raw_entries, self.seed)
    }

    /// Cleaning report of a site's leak.
    #[must_use]
    pub fn cleaned(&self, site: Site) -> CleanReport {
        clean(self.raw_leak(site))
    }

    /// The paper's 7:1:2 split of a site's cleaned leak.
    #[must_use]
    pub fn split(&self, site: Site) -> Split {
        split_passwords(
            self.cleaned(site).retained,
            SplitRatios::PAPER,
            self.seed ^ 0x5eed,
        )
    }

    /// Directory for cached trained models.
    #[must_use]
    pub fn artifacts_dir() -> PathBuf {
        workspace_root().join("artifacts")
    }

    fn cache_path(&self, model: &str, site: Site) -> PathBuf {
        Context::artifacts_dir().join(format!(
            "{model}-{}-{}-s{}.bin",
            site.name().replace('!', ""),
            self.scale.name,
            self.seed
        ))
    }

    /// Trains (or loads from cache) a GPT password model on a site's
    /// training split.
    #[must_use]
    pub fn gpt_model(&self, kind: ModelKind, site: Site) -> PasswordModel {
        let path = self.cache_path(&kind.name().to_lowercase(), site);
        if let Ok(model) = PasswordModel::load(kind, &path) {
            eprintln!("[cache] loaded {kind} for {site} from {}", path.display());
            return model;
        }
        let split = self.split(site);
        eprintln!(
            "[train] {kind} on {site}: {} train / {} val passwords, {} epochs",
            split.train.len(),
            split.validation.len(),
            self.scale.epochs
        );
        let mut model = PasswordModel::new(kind, self.scale.gpt, self.seed);
        let config = TrainConfig {
            epochs: self.scale.epochs,
            log_every: 200,
            seed: self.seed,
            ..TrainConfig::default()
        };
        let report = model.train(&split.train, &split.validation, &config);
        eprintln!(
            "[train] {kind} on {site}: loss {:?} -> {:?}",
            report.epoch_losses.first(),
            report.epoch_losses.last()
        );
        std::fs::create_dir_all(Context::artifacts_dir()).ok();
        model.save(&path).ok();
        model
    }

    /// Trains a PassGAN on a site's training split. The continuous-space
    /// baselines get a short fixed budget: their role in the paper's tables
    /// is the weak lower bound, and more epochs do not change that shape.
    #[must_use]
    pub fn gan_model(&self, site: Site) -> PassGan {
        let split = self.split(site);
        let mut gan = PassGan::new(self.gan_config(), self.seed);
        eprintln!("[train] PassGAN on {site}");
        gan.train(&split.train, self.baseline_epochs());
        gan
    }

    /// Trains a VAEPass on a site's training split.
    #[must_use]
    pub fn vae_model(&self, site: Site) -> VaePass {
        let split = self.split(site);
        let mut vae = VaePass::new(self.vae_config(), self.seed);
        eprintln!("[train] VAEPass on {site}");
        vae.train(&split.train, self.baseline_epochs());
        vae
    }

    /// Trains a PassFlow on a site's training split.
    #[must_use]
    pub fn flow_model(&self, site: Site) -> PassFlow {
        let split = self.split(site);
        let mut flow = PassFlow::new(self.flow_config(), self.seed);
        eprintln!("[train] PassFlow on {site}");
        flow.train(&split.train, self.baseline_epochs());
        flow
    }

    fn baseline_epochs(&self) -> usize {
        if self.scale.name == "smoke" {
            2
        } else {
            3
        }
    }

    /// Trains the PCFG baseline.
    #[must_use]
    pub fn pcfg_model(&self, site: Site) -> PcfgModel {
        let split = self.split(site);
        PcfgModel::train(split.train.iter().map(String::as_str))
    }

    /// Trains the Markov baseline (order 3).
    #[must_use]
    pub fn markov_model(&self, site: Site) -> MarkovModel {
        let split = self.split(site);
        MarkovModel::train(split.train.iter().map(String::as_str), 3, 0.01)
    }

    fn gan_config(&self) -> GanConfig {
        if self.scale.name == "smoke" {
            GanConfig::tiny()
        } else {
            GanConfig {
                hidden: 128,
                ..GanConfig::default()
            }
        }
    }

    fn vae_config(&self) -> VaeConfig {
        if self.scale.name == "smoke" {
            VaeConfig::tiny()
        } else {
            VaeConfig {
                hidden: 128,
                ..VaeConfig::default()
            }
        }
    }

    fn flow_config(&self) -> FlowConfig {
        if self.scale.name == "smoke" {
            FlowConfig::tiny()
        } else {
            FlowConfig {
                hidden: 128,
                ..FlowConfig::default()
            }
        }
    }
}

/// Workspace root, resolved from this crate's manifest directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        // LINT-ALLOW: no-unwrap-in-lib invariant: CARGO_MANIFEST_DIR is a
        // compile-time constant with two parent components by construction.
        .expect("crates/bench sits two levels below the root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(ScalePreset::parse("smoke"), Some(ScalePreset::Smoke));
        assert_eq!(ScalePreset::parse("default"), Some(ScalePreset::Default));
        assert_eq!(ScalePreset::parse("full"), Some(ScalePreset::Full));
        assert_eq!(ScalePreset::parse("nope"), None);
    }

    #[test]
    fn context_corpora_are_deterministic() {
        let ctx = Context::new(Scale::preset(ScalePreset::Smoke), 7);
        let a = ctx.split(Site::RockYou);
        let b = ctx.split(Site::RockYou);
        assert_eq!(a, b);
        assert!(!a.train.is_empty() && !a.test.is_empty());
    }

    #[test]
    fn workspace_root_has_the_workspace_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
        assert!(workspace_root().join("DESIGN.md").exists());
    }

    #[test]
    fn budgets_are_ascending_in_every_preset() {
        for preset in [ScalePreset::Smoke, ScalePreset::Default, ScalePreset::Full] {
            let scale = Scale::preset(preset);
            assert!(scale.budgets.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(scale.gpt.vocab_size, VOCAB_SIZE);
        }
    }
}
