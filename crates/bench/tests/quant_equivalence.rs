//! End-to-end accuracy gate for the quantized decode kernels.
//!
//! Trains one tiny model, then runs the full D&C-GEN pipeline and the
//! scoring path under both `--kernel` choices, and holds the results to
//! the committed budget in `pagpass-eval`: hit-rate delta ≤ 1 point,
//! per-token log-prob MAE under [`MAX_LOG_PROB_MAE`]. CI runs this in the
//! `quantized-equivalence` job on both SIMD and forced-portable legs.
//!
//! This lives in its own test binary because the kernel mode is
//! process-wide: the test flips it between runs, which must not race
//! other tests.

use pagpass_eval::{quant_equivalence, QuantEquivalence};
use pagpass_nn::{set_kernel_mode, GptConfig, KernelMode};
use pagpass_patterns::PatternDistribution;
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{DcGen, DcGenConfig, InferenceSession, ModelKind, PasswordModel, TrainConfig};

fn corpus() -> Vec<String> {
    // Two pattern families so D&C-GEN splits budget across patterns.
    (0..60)
        .map(|i| format!("pass{i:02}"))
        .chain((0..30).map(|i| format!("ab{i:02}cd")))
        .collect()
}

fn trained_model() -> PasswordModel {
    let mut model = PasswordModel::new(
        ModelKind::PagPassGpt,
        GptConfig {
            vocab_size: VOCAB_SIZE,
            ctx_len: 32,
            dim: 16,
            n_layers: 1,
            n_heads: 2,
        },
        3,
    );
    // Triplicate the corpus and train long enough that the pinned run
    // actually cracks passwords — a 0% hit rate on both sides would make
    // the hit-rate half of the budget vacuous.
    let base = corpus();
    let train: Vec<String> = base.iter().cycle().take(base.len() * 3).cloned().collect();
    model.train(
        &train,
        &[],
        &TrainConfig {
            epochs: 10,
            ..TrainConfig::quick()
        },
    );
    model
}

/// One full pipeline pass under the installed kernel mode: generate a
/// guess stream and score the corpus per token.
fn run_pipeline(model: &PasswordModel, test_set: &[String]) -> (Vec<String>, Vec<f64>) {
    let patterns = PatternDistribution::from_passwords(test_set.iter().map(String::as_str));
    let report = DcGen::new(
        model,
        DcGenConfig {
            threshold: 32,
            seed: 11,
            workers: 1,
            // Below-1 temperature concentrates leaf sampling on what the
            // model learned, so the tiny reference model cracks enough of
            // the corpus for the hit-rate comparison to mean something.
            temperature: 0.7,
            ..DcGenConfig::new(2_000)
        },
    )
    .run(&patterns)
    .unwrap();
    let mut session = InferenceSession::new(model);
    let scores: Vec<f64> = test_set
        .iter()
        .map(|pw| {
            // Normalize by scored positions (password characters + EOS) so
            // the MAE bound is per token, independent of password length.
            let tokens = (pw.chars().count() + 1) as f64;
            session.log_probability(pw).unwrap() / tokens
        })
        .collect();
    (report.passwords, scores)
}

#[test]
fn quantized_pipeline_stays_inside_the_accuracy_budget() {
    let model = trained_model();
    let test_set = corpus();

    set_kernel_mode(KernelMode::Blocked);
    let (pinned_guesses, pinned_scores) = run_pipeline(&model, &test_set);

    set_kernel_mode(KernelMode::Quantized);
    let (quant_guesses, quant_scores) = run_pipeline(&model, &test_set);
    set_kernel_mode(KernelMode::Blocked);

    let eq: QuantEquivalence = quant_equivalence(
        &pinned_guesses,
        &quant_guesses,
        &test_set,
        &pinned_scores,
        &quant_scores,
    );
    // The trained model must actually crack something, or the hit-rate
    // side of the budget would be vacuous.
    assert!(
        eq.pinned_hit_rate > 0.0,
        "pinned run cracked nothing; the equivalence check is vacuous: {eq:?}"
    );
    assert!(
        eq.within_budget(),
        "quantized decode exceeded the accuracy budget: {eq:?} \
         (hit-rate delta {:.4}, MAE {:.6})",
        eq.hit_rate_delta(),
        eq.log_prob_mae
    );
}
