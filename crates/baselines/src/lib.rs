//! Deep-learning password-guessing baselines from the PagPassGPT
//! evaluation (Table IV): **PassGAN** (GAN), **VAEPass** (VAE), and
//! **PassFlow** (normalizing flow).
//!
//! Each model follows its family's published architecture at CPU scale
//! (see DESIGN.md §2 for the documented substitutions — e.g. the WGAN
//! critic uses weight clipping rather than a gradient penalty, because the
//! penalty needs second-order autodiff):
//!
//! * [`PassGan`] — a WGAN over per-position softmax outputs of a fixed
//!   12-slot password tensor (Hitaj et al. 2019),
//! * [`VaePass`] — an MLP variational autoencoder with per-position
//!   categorical reconstruction (Yang et al. 2022),
//! * [`PassFlow`] — a NICE flow (additive couplings + diagonal scaling)
//!   over dequantized one-hot encodings (Pagnotta et al., DSN 2022).
//!
//! All three share the [`encoding`] module: passwords of up to 12
//! characters over the 94-character alphabet, one-hot encoded with an
//! end-padding symbol — 95 symbols × 12 slots.
//!
//! # Examples
//!
//! ```
//! use pagpass_baselines::{PassGan, GanConfig};
//!
//! let corpus: Vec<String> = (0..32).map(|i| format!("pw{i:04}")).collect();
//! let mut gan = PassGan::new(GanConfig::tiny(), 1);
//! gan.train(&corpus, 3);
//! let guesses = gan.generate(10, 7);
//! assert_eq!(guesses.len(), 10);
//! ```

pub mod encoding;
mod flow;
mod gan;
mod mlp;
mod vae;

pub use flow::{FlowConfig, PassFlow};
pub use gan::{GanConfig, PassGan};
pub use mlp::MlpNet;
pub use vae::{VaeConfig, VaePass};
