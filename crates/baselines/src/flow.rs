use pagpass_nn::{AdamW, Mat, Param, Rng};
use serde::{Deserialize, Serialize};

use crate::encoding::{self, WIDTH};
use crate::mlp::MlpNet;

/// PassFlow hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Number of additive coupling layers (alternating halves).
    pub couplings: usize,
    /// Hidden width of each coupling MLP.
    pub hidden: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Dequantization noise amplitude added to one-hot inputs.
    pub dequant: f32,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            couplings: 4,
            hidden: 192,
            batch: 32,
            lr: 3e-4,
            dequant: 0.05,
        }
    }
}

impl FlowConfig {
    /// A minimal configuration for unit tests.
    #[must_use]
    pub fn tiny() -> FlowConfig {
        FlowConfig {
            couplings: 2,
            hidden: 16,
            batch: 8,
            lr: 1e-3,
            dequant: 0.05,
        }
    }
}

/// The PassFlow baseline (Pagnotta et al., DSN 2022), built on NICE
/// (Dinh et al. 2014): additive coupling layers over the dequantized
/// one-hot password tensor, a final diagonal scaling, and a standard-normal
/// prior. Training maximizes exact log-likelihood; generation inverts the
/// flow on prior samples and decodes per-slot argmax.
#[derive(Debug, Clone)]
pub struct PassFlow {
    config: FlowConfig,
    couplings: Vec<MlpNet>,
    /// Diagonal log-scaling `s`: `z = y · eˢ`, log-det = Σ s.
    log_scale: Param,
    rng: Rng,
    /// Mean negative log-likelihood per epoch.
    pub nll_history: Vec<f32>,
}

impl PassFlow {
    /// Initializes the coupling stack.
    #[must_use]
    pub fn new(config: FlowConfig, seed: u64) -> PassFlow {
        let mut rng = Rng::seed_from(seed);
        let half = WIDTH / 2;
        let couplings = (0..config.couplings)
            .map(|_| MlpNet::new(&[half, config.hidden, WIDTH - half], &mut rng))
            .collect();
        PassFlow {
            couplings,
            log_scale: Param::new(Mat::zeros(1, WIDTH), false),
            config,
            rng,
            nll_history: Vec::new(),
        }
    }

    /// Trains for `epochs` passes over the encodable subset of `corpus`.
    pub fn train(&mut self, corpus: &[String], epochs: usize) {
        let real: Vec<Vec<f32>> = corpus
            .iter()
            .filter_map(|pw| encoding::encode(pw))
            .collect();
        if real.is_empty() {
            return;
        }
        let mut opt = AdamW::new(self.config.lr);
        opt.weight_decay = 0.0;
        let b = self.config.batch.min(real.len());
        let steps = (real.len() / b).max(1);
        for _ in 0..epochs {
            let mut epoch = 0.0f32;
            for _ in 0..steps {
                epoch += self.step(&real, b, &mut opt);
            }
            self.nll_history.push(epoch / steps as f32);
        }
    }

    /// One exact-likelihood gradient step; returns the batch NLL (without
    /// the constant `D/2·ln 2π`).
    fn step(&mut self, real: &[Vec<f32>], b: usize, opt: &mut AdamW) -> f32 {
        for net in &mut self.couplings {
            net.visit_params(&mut Param::zero_grad);
        }
        self.log_scale.zero_grad();

        // Dequantized batch.
        let mut x = Mat::zeros(b, WIDTH);
        for r in 0..b {
            let idx = self.rng.below(real.len());
            let row = x.row_mut(r);
            row.copy_from_slice(&real[idx]);
            for v in row.iter_mut() {
                *v += self.config.dequant * self.rng.uniform();
            }
        }

        // Forward through couplings.
        let mut h = x;
        for (i, net) in self.couplings.iter_mut().enumerate() {
            h = coupling_forward(net, &h, i % 2 == 1);
        }
        // Diagonal scaling: z = h · eˢ.
        let s = self.log_scale.value.row(0).to_vec();
        let mut z = h.clone();
        for r in 0..b {
            for (v, &si) in z.row_mut(r).iter_mut().zip(&s) {
                *v *= si.exp();
            }
        }

        // NLL = mean_b [ 0.5‖z‖² ] − Σ s.
        let inv = 1.0 / b as f32;
        let mut nll = -s.iter().sum::<f32>();
        for r in 0..b {
            nll += 0.5 * z.row(r).iter().map(|v| v * v).sum::<f32>() * inv;
        }

        // Backward. dNLL/dz = z/b; dNLL/ds_i = mean_b[z_i·h_i·e^{s_i}] − 1
        // = mean_b[z_i²] − 1; dNLL/dh = (z/b)·eˢ.
        let mut dh = Mat::zeros(b, WIDTH);
        {
            let ds = self.log_scale.grad.row_mut(0);
            for r in 0..b {
                let zrow = z.row(r);
                let drow = dh.row_mut(r);
                for i in 0..WIDTH {
                    ds[i] += zrow[i] * zrow[i] * inv;
                    drow[i] = zrow[i] * inv * s[i].exp();
                }
            }
            for d in ds.iter_mut() {
                *d -= 1.0;
            }
        }
        for (i, net) in self.couplings.iter_mut().enumerate().rev() {
            dh = coupling_backward(net, &dh, i % 2 == 1);
        }

        opt.begin_step();
        for net in &mut self.couplings {
            net.visit_params(&mut |p| opt.update(p));
        }
        opt.update(&mut self.log_scale);
        nll
    }

    /// Generates `n` passwords by inverting the flow on prior samples.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Vec<String> {
        let mut rng = Rng::seed_from(seed);
        let s = self.log_scale.value.row(0).to_vec();
        let mut out = Vec::with_capacity(n);
        let b = self.config.batch.max(1);
        while out.len() < n {
            let take = (n - out.len()).min(b);
            let mut y = Mat::zeros(take, WIDTH);
            for r in 0..take {
                for (v, &si) in y.row_mut(r).iter_mut().zip(&s) {
                    *v = rng.normal() * (-si).exp();
                }
            }
            for (i, net) in self.couplings.iter().enumerate().rev() {
                y = coupling_inverse(net, &y, i % 2 == 1);
            }
            for r in 0..take {
                out.push(encoding::decode(y.row(r)));
            }
        }
        out
    }
}

/// Additive coupling: the passive half conditions an offset added to the
/// active half. `swap` selects which half is passive.
fn coupling_forward(net: &mut MlpNet, x: &Mat, swap: bool) -> Mat {
    let (passive, active) = split(x, swap);
    let m = net.forward(&passive);
    let mut new_active = active;
    new_active.add_assign(&m);
    join(&passive, &new_active, swap)
}

/// Backward through one coupling; accumulates the coupling MLP's gradients.
fn coupling_backward(net: &mut MlpNet, dy: &Mat, swap: bool) -> Mat {
    let (d_passive, d_active) = split(dy, swap);
    let d_from_m = net.backward(&d_active);
    let mut d_passive_total = d_passive;
    d_passive_total.add_assign(&d_from_m);
    join(&d_passive_total, &d_active, swap)
}

/// Exact inverse of [`coupling_forward`].
fn coupling_inverse(net: &MlpNet, y: &Mat, swap: bool) -> Mat {
    let (passive, active) = split(y, swap);
    let m = net.apply(&passive);
    let mut orig_active = active;
    for (a, &mm) in orig_active.as_mut_slice().iter_mut().zip(m.as_slice()) {
        *a -= mm;
    }
    join(&passive, &orig_active, swap)
}

fn split(x: &Mat, swap: bool) -> (Mat, Mat) {
    let half = WIDTH / 2;
    let (lo_cols, hi_cols) = (half, WIDTH - half);
    let mut lo = Mat::zeros(x.rows(), lo_cols);
    let mut hi = Mat::zeros(x.rows(), hi_cols);
    for r in 0..x.rows() {
        lo.row_mut(r).copy_from_slice(&x.row(r)[..half]);
        hi.row_mut(r).copy_from_slice(&x.row(r)[half..]);
    }
    if swap {
        (hi, lo)
    } else {
        (lo, hi)
    }
}

fn join(passive: &Mat, active: &Mat, swap: bool) -> Mat {
    let (lo, hi) = if swap {
        (active, passive)
    } else {
        (passive, active)
    };
    let mut out = Mat::zeros(lo.rows(), WIDTH);
    let half = WIDTH / 2;
    for r in 0..lo.rows() {
        out.row_mut(r)[..half].copy_from_slice(lo.row(r));
        out.row_mut(r)[half..].copy_from_slice(hi.row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        (0..48).map(|i| format!("flow{:02}", i % 12)).collect()
    }

    #[test]
    fn couplings_invert_exactly() {
        let mut rng = Rng::seed_from(1);
        let half = WIDTH / 2;
        let mut net = MlpNet::new(&[half, 8, WIDTH - half], &mut rng);
        let x = Mat::randn(3, WIDTH, 1.0, &mut rng);
        for swap in [false, true] {
            let y = coupling_forward(&mut net, &x, swap);
            let back = coupling_inverse(&net, &y, swap);
            for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn full_flow_forward_inverse_roundtrip() {
        let flow = PassFlow::new(FlowConfig::tiny(), 2);
        // Push a known tensor through forward (couplings only, no noise)
        // then invert; this exercises the generate() path.
        let x = encoding::encode("test99").unwrap();
        let mut h = Mat::from_rows(1, WIDTH, x.clone());
        let mut nets = flow.couplings.clone();
        for (i, net) in nets.iter_mut().enumerate() {
            h = coupling_forward(net, &h, i % 2 == 1);
        }
        let mut back = h;
        for (i, net) in flow.couplings.iter().enumerate().rev() {
            back = coupling_inverse(net, &back, i % 2 == 1);
        }
        for (a, b) in x.iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn training_reduces_nll() {
        let mut flow = PassFlow::new(FlowConfig::tiny(), 3);
        flow.train(&corpus(), 10);
        let h = &flow.nll_history;
        assert_eq!(h.len(), 10);
        assert!(
            h.last().unwrap() < h.first().unwrap(),
            "NLL should fall: {h:?}"
        );
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let flow = PassFlow::new(FlowConfig::tiny(), 4);
        let a = flow.generate(11, 6);
        assert_eq!(a.len(), 11);
        assert_eq!(a, flow.generate(11, 6));
    }

    #[test]
    fn empty_corpus_is_a_no_op() {
        let mut flow = PassFlow::new(FlowConfig::tiny(), 5);
        flow.train(&[], 2);
        assert!(flow.nll_history.is_empty());
    }
}
