use pagpass_nn::{softmax_in_place, AdamW, Mat, Rng};
use serde::{Deserialize, Serialize};

use crate::encoding::{self, SYMBOLS, WIDTH};
use crate::mlp::MlpNet;

/// PassGAN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GanConfig {
    /// Latent noise dimensionality.
    pub latent: usize,
    /// Hidden width of generator and critic.
    pub hidden: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Critic updates per generator update (WGAN uses several).
    pub critic_steps: usize,
    /// WGAN weight-clipping bound.
    pub clip: f32,
    /// Learning rate for both networks.
    pub lr: f32,
}

impl Default for GanConfig {
    fn default() -> GanConfig {
        GanConfig {
            latent: 48,
            hidden: 192,
            batch: 32,
            critic_steps: 3,
            clip: 0.05,
            lr: 1e-4,
        }
    }
}

impl GanConfig {
    /// A minimal configuration for unit tests.
    #[must_use]
    pub fn tiny() -> GanConfig {
        GanConfig {
            latent: 8,
            hidden: 24,
            batch: 8,
            critic_steps: 2,
            clip: 0.05,
            lr: 1e-3,
        }
    }
}

/// The PassGAN baseline (Hitaj et al. 2019): a Wasserstein GAN whose
/// generator maps noise to a 12×95 per-slot softmax "password tensor" and
/// whose critic scores tensors; real passwords enter as one-hot tensors.
///
/// This reproduction uses the original WGAN weight-clipping formulation
/// (the IWGAN gradient penalty needs second-order autodiff; see DESIGN.md).
/// Generation decodes per-slot argmax of the generator output, so diversity
/// comes entirely from the latent draw — which is exactly why GAN-family
/// models show high repeat rates in the paper's Fig. 10.
#[derive(Debug, Clone)]
pub struct PassGan {
    config: GanConfig,
    generator: MlpNet,
    critic: MlpNet,
    rng: Rng,
    /// Mean critic scores (real − fake) per epoch, for diagnostics.
    pub critic_gap_history: Vec<f32>,
}

impl PassGan {
    /// Initializes generator and critic.
    #[must_use]
    pub fn new(config: GanConfig, seed: u64) -> PassGan {
        let mut rng = Rng::seed_from(seed);
        PassGan {
            generator: MlpNet::new(
                &[config.latent, config.hidden, config.hidden, WIDTH],
                &mut rng,
            ),
            critic: MlpNet::new(&[WIDTH, config.hidden, config.hidden, 1], &mut rng),
            config,
            rng,
            critic_gap_history: Vec::new(),
        }
    }

    /// Trains for `epochs` passes over the encodable subset of `corpus`.
    pub fn train(&mut self, corpus: &[String], epochs: usize) {
        let real: Vec<Vec<f32>> = corpus
            .iter()
            .filter_map(|pw| encoding::encode(pw))
            .collect();
        if real.is_empty() {
            return;
        }
        let mut opt_g = AdamW::new(self.config.lr);
        let mut opt_c = AdamW::new(self.config.lr);
        opt_g.weight_decay = 0.0;
        opt_c.weight_decay = 0.0;
        let b = self.config.batch.min(real.len());
        let steps_per_epoch = (real.len() / b).max(1);
        for _ in 0..epochs {
            let mut gap_sum = 0.0f32;
            for _ in 0..steps_per_epoch {
                // Critic phase.
                let mut gap = 0.0;
                for _ in 0..self.config.critic_steps {
                    gap = self.critic_step(&real, b, &mut opt_c);
                }
                gap_sum += gap;
                // Generator phase.
                self.generator_step(b, &mut opt_g);
            }
            self.critic_gap_history
                .push(gap_sum / steps_per_epoch as f32);
        }
    }

    /// One WGAN critic update; returns the real−fake score gap.
    fn critic_step(&mut self, real: &[Vec<f32>], b: usize, opt: &mut AdamW) -> f32 {
        self.critic.visit_params(&mut pagpass_nn::Param::zero_grad);
        // Real batch.
        let mut real_batch = Mat::zeros(b, WIDTH);
        for r in 0..b {
            let idx = self.rng.below(real.len());
            real_batch.row_mut(r).copy_from_slice(&real[idx]);
        }
        let real_scores = self.critic.forward(&real_batch);
        let real_mean: f32 = real_scores.as_slice().iter().sum::<f32>() / b as f32;
        // Critic maximizes real − fake ⇒ minimizes −real + fake.
        let d_real = Mat::from_rows(b, 1, vec![-1.0 / b as f32; b]);
        let _ = self.critic.backward(&d_real);

        let fake_batch = self.sample_tensors(b);
        let fake_scores = self.critic.forward(&fake_batch);
        let fake_mean: f32 = fake_scores.as_slice().iter().sum::<f32>() / b as f32;
        let d_fake = Mat::from_rows(b, 1, vec![1.0 / b as f32; b]);
        let _ = self.critic.backward(&d_fake);

        opt.begin_step();
        self.critic.visit_params(&mut |p| opt.update(p));
        self.critic.clip_weights(self.config.clip);
        real_mean - fake_mean
    }

    /// One generator update: maximize the critic's score of fresh fakes.
    fn generator_step(&mut self, b: usize, opt: &mut AdamW) {
        self.generator
            .visit_params(&mut pagpass_nn::Param::zero_grad);
        let z = self.sample_noise(b);
        let logits = self.generator.forward(&z);
        let (probs, softmax_cache) = per_slot_softmax(&logits);
        let scores = self.critic.forward(&probs);
        let _ = scores;
        // dL/dscore = −1/b (generator maximizes the critic score).
        let d_scores = Mat::from_rows(b, 1, vec![-1.0 / b as f32; b]);
        let d_probs = self.critic.backward(&d_scores);
        let d_logits = per_slot_softmax_backward(&softmax_cache, &d_probs);
        let _ = self.generator.backward(&d_logits);
        opt.begin_step();
        self.generator.visit_params(&mut |p| opt.update(p));
    }

    /// Generates `n` passwords (argmax decode of generator outputs).
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Vec<String> {
        let mut rng = Rng::seed_from(seed);
        let mut out = Vec::with_capacity(n);
        let b = self.config.batch.max(1);
        while out.len() < n {
            let take = (n - out.len()).min(b);
            let mut z = Mat::zeros(take, self.config.latent);
            for v in z.as_mut_slice() {
                *v = rng.normal();
            }
            let logits = self.generator.apply(&z);
            for r in 0..take {
                let mut row = logits.row(r).to_vec();
                for slot in row.chunks_mut(SYMBOLS) {
                    softmax_in_place(slot);
                }
                out.push(encoding::decode(&row));
            }
        }
        out
    }

    fn sample_noise(&mut self, b: usize) -> Mat {
        let mut z = Mat::zeros(b, self.config.latent);
        for v in z.as_mut_slice() {
            *v = self.rng.normal();
        }
        z
    }

    /// Fresh fake tensors for the critic phase (no generator grads needed).
    fn sample_tensors(&mut self, b: usize) -> Mat {
        let z = self.sample_noise(b);
        let logits = self.generator.apply(&z);
        per_slot_softmax(&logits).0
    }
}

/// Applies softmax independently to every 95-wide slot of every row;
/// returns `(probs, probs_copy_for_backward)`.
fn per_slot_softmax(logits: &Mat) -> (Mat, Mat) {
    let mut probs = logits.clone();
    for r in 0..probs.rows() {
        for slot in probs.row_mut(r).chunks_mut(SYMBOLS) {
            softmax_in_place(slot);
        }
    }
    let cache = probs.clone();
    (probs, cache)
}

/// Softmax Jacobian-vector product per slot: `d = p ∘ (dy − ⟨dy, p⟩)`.
fn per_slot_softmax_backward(probs: &Mat, dy: &Mat) -> Mat {
    let mut d = Mat::zeros(dy.rows(), dy.cols());
    for r in 0..dy.rows() {
        let prow = probs.row(r);
        let dyrow = dy.row(r);
        let drow = d.row_mut(r);
        for s in 0..prow.len() / SYMBOLS {
            let lo = s * SYMBOLS;
            let hi = lo + SYMBOLS;
            let dot: f32 = prow[lo..hi]
                .iter()
                .zip(&dyrow[lo..hi])
                .map(|(p, g)| p * g)
                .sum();
            for i in lo..hi {
                drow[i] = prow[i] * (dyrow[i] - dot);
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        (0..64).map(|i| format!("pw{:02}ab", i % 20)).collect()
    }

    #[test]
    fn generates_n_decodable_passwords() {
        let gan = PassGan::new(GanConfig::tiny(), 1);
        let out = gan.generate(13, 5);
        assert_eq!(out.len(), 13);
        for pw in &out {
            assert!(pw.chars().count() <= encoding::MAX_LEN);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gan = PassGan::new(GanConfig::tiny(), 1);
        assert_eq!(gan.generate(8, 3), gan.generate(8, 3));
    }

    #[test]
    fn training_runs_and_tracks_the_critic_gap() {
        let mut gan = PassGan::new(GanConfig::tiny(), 2);
        gan.train(&corpus(), 3);
        assert_eq!(gan.critic_gap_history.len(), 3);
        assert!(gan.critic_gap_history.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn training_moves_the_generator() {
        let mut gan = PassGan::new(GanConfig::tiny(), 3);
        let before = gan.generate(20, 11);
        gan.train(&corpus(), 4);
        let after = gan.generate(20, 11);
        assert_ne!(before, after, "training must change generator outputs");
    }

    #[test]
    fn empty_corpus_is_a_no_op() {
        let mut gan = PassGan::new(GanConfig::tiny(), 4);
        gan.train(&[], 2);
        assert!(gan.critic_gap_history.is_empty());
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let mut rng = Rng::seed_from(5);
        let logits = Mat::randn(1, WIDTH, 1.0, &mut rng);
        let dy = Mat::randn(1, WIDTH, 1.0, &mut rng);
        let (probs, cache) = per_slot_softmax(&logits);
        let analytic = per_slot_softmax_backward(&cache, &dy);
        let _ = probs;
        // Finite-difference on a few coordinates of slot 0.
        for k in [0usize, 7, 94] {
            let eps = 1e-3;
            let mut plus = logits.clone();
            plus.as_mut_slice()[k] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[k] -= eps;
            let f = |m: &Mat| -> f32 {
                let (p, _) = per_slot_softmax(m);
                p.as_slice()
                    .iter()
                    .zip(dy.as_slice())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[k]).abs() < 1e-2,
                "coordinate {k}: {numeric} vs {}",
                analytic.as_slice()[k]
            );
        }
    }
}
