//! Fixed-tensor password encoding shared by the GAN, VAE, and flow
//! baselines: 12 slots × 95 symbols (94 printable non-space ASCII
//! characters plus an end-padding symbol), one-hot.

/// Maximum password length the fixed tensor can hold.
pub const MAX_LEN: usize = 12;

/// Symbols per slot: 94 characters + the pad symbol.
pub const SYMBOLS: usize = 95;

/// Index of the pad symbol.
pub const PAD: usize = 94;

/// Flattened tensor width: `12 × 95`.
pub const WIDTH: usize = MAX_LEN * SYMBOLS;

/// Symbol index of a character, or `None` outside the alphabet.
#[must_use]
pub fn char_index(c: char) -> Option<usize> {
    let b = c as u32;
    if (33..=126).contains(&b) {
        Some((b - 33) as usize)
    } else {
        None
    }
}

/// Character with symbol index `i` (< 94).
///
/// # Panics
///
/// Panics for the pad symbol or out-of-range indices.
#[must_use]
pub fn index_char(i: usize) -> char {
    assert!(i < PAD, "index {i} is not a character symbol");
    char::from(b'!' + i as u8)
}

/// One-hot encodes a password into a `WIDTH` vector; `None` when the
/// password is too long or uses characters outside the alphabet.
#[must_use]
pub fn encode(password: &str) -> Option<Vec<f32>> {
    let chars: Vec<char> = password.chars().collect();
    if chars.len() > MAX_LEN {
        return None;
    }
    let mut out = vec![0.0f32; WIDTH];
    for (slot, out_slot) in out.chunks_mut(SYMBOLS).enumerate() {
        let idx = match chars.get(slot) {
            Some(&c) => char_index(c)?,
            None => PAD,
        };
        out_slot[idx] = 1.0;
    }
    Some(out)
}

/// Decodes a tensor by per-slot argmax, stopping at the first pad symbol.
///
/// # Panics
///
/// Panics if `tensor.len() != WIDTH`.
#[must_use]
pub fn decode(tensor: &[f32]) -> String {
    assert_eq!(tensor.len(), WIDTH, "tensor must be 12x95");
    let mut out = String::new();
    for slot in tensor.chunks(SYMBOLS) {
        let mut best = 0;
        for (i, &v) in slot.iter().enumerate() {
            if v > slot[best] {
                best = i;
            }
        }
        if best == PAD {
            break;
        }
        out.push(index_char(best));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for pw in ["", "a", "Pass123$", "abcdefghijkl", "!~09Zz"] {
            let enc = encode(pw).unwrap();
            assert_eq!(decode(&enc), pw);
            // Exactly one hot per slot.
            for slot in enc.chunks(SYMBOLS) {
                assert_eq!(slot.iter().filter(|&&v| v == 1.0).count(), 1);
            }
        }
    }

    #[test]
    fn rejects_unencodable() {
        assert!(encode("thirteen chars").is_none()); // 14 chars (and a space)
        assert!(encode("with space").is_none());
        assert!(encode("caf\u{e9}").is_none());
        assert!(encode(&"a".repeat(13)).is_none());
    }

    #[test]
    fn decode_stops_at_first_pad() {
        let mut t = encode("abc").unwrap();
        // Put a char after the pad; decode must ignore it.
        t[4 * SYMBOLS..5 * SYMBOLS].fill(0.0);
        t[4 * SYMBOLS] = 1.0;
        assert_eq!(decode(&t), "abc");
    }

    #[test]
    fn char_index_bounds() {
        assert_eq!(char_index('!'), Some(0));
        assert_eq!(char_index('~'), Some(93));
        assert_eq!(index_char(0), '!');
        assert_eq!(index_char(93), '~');
    }

    #[test]
    #[should_panic(expected = "not a character")]
    fn index_char_pad_panics() {
        let _ = index_char(PAD);
    }
}
